//! The `dwcp` command-line tool: simulate workloads, forecast metric
//! series from CSV, and raise threshold advisories — the §8 monitoring
//! service in miniature, usable on any time-series CSV.
//!
//! ```text
//! dwcp simulate --scenario oltp --instance cdbm011 --metric cpu [--seed N] [--out FILE]
//! dwcp forecast --input FILE [--method sarimax|hes|tbats|auto] [--granularity hourly|daily|weekly]
//! dwcp advise   --input FILE --threshold X [--method sarimax|hes|tbats|auto]
//! ```
//!
//! CSV format: one observation per line, either `value` or
//! `timestamp,value` (epoch seconds); `#` lines and a non-numeric header
//! are skipped.

use crate::planner::{
    AlertRule, Checkpoint, Engine, EngineConfig, EstateScheduler, FleetOptions, FleetScheduler,
    GridStrategy, MethodChoice, ModelRepository, Pipeline, PipelineConfig, SeriesJob,
    ShardedRepository, SliceJobSource, ThresholdAdvisor, WaveOptions,
};
use crate::series::{Frequency, Granularity, TimeSeries};
use crate::workload::{olap_scenario, oltp_scenario, Metric, Scenario};

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a simulated metric trace.
    Simulate {
        /// `olap` or `oltp`.
        scenario: String,
        /// Instance name.
        instance: String,
        /// `cpu`, `memory` or `iops`.
        metric: String,
        /// Simulation seed.
        seed: u64,
        /// Output path (`-` = stdout).
        out: String,
    },
    /// Forecast a CSV series.
    Forecast {
        /// Input CSV path.
        input: String,
        /// Method choice.
        method: MethodChoice,
        /// Protocol granularity.
        granularity: Granularity,
        /// Auto-detect recurring shocks.
        detect_shocks: bool,
        /// SARIMAX grid strategy: the full pruned sweep, or the
        /// ACF/PACF-seeded auto-order grid with full-sweep fallback.
        grid: GridStrategy,
    },
    /// Batch-forecast many CSV series on one shared worker pool.
    Fleet {
        /// Input CSV paths (workload key = file stem).
        inputs: Vec<String>,
        /// Method choice.
        method: MethodChoice,
        /// Protocol granularity.
        granularity: Granularity,
        /// Worker threads (0 = all cores).
        threads: usize,
        /// Champion-neighbourhood radius for seeded relearning.
        radius: usize,
        /// Optional model-repository JSON for champion reuse across runs.
        repo: Option<String>,
        /// Optional sharded-repository directory; selects the estate wave
        /// scheduler instead of the all-at-once batch.
        repo_dir: Option<String>,
        /// Jobs per wave (0 = the scheduler's default wave size).
        wave: usize,
        /// Shard count when `repo_dir` is created fresh.
        shards: usize,
        /// Checkpoint file: completed jobs are recorded after each wave
        /// and skipped by the next scan using the same file.
        checkpoint: Option<String>,
        /// Cancel (delete) the checkpoint instead of scanning.
        cancel_checkpoint: bool,
    },
    /// Threshold advisory on a CSV series.
    Advise {
        /// Input CSV path.
        input: String,
        /// Capacity threshold.
        threshold: f64,
        /// Method choice.
        method: MethodChoice,
    },
    /// Run the resident ingest→score→alert daemon.
    Serve {
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// HTTP worker threads (0 = a small default pool).
        threads: usize,
        /// Method choice for fits and relearns.
        method: MethodChoice,
        /// Protocol granularity.
        granularity: Granularity,
        /// Optional capacity threshold; when set, every scored forecast is
        /// scanned and breaches fire on `GET /alerts`.
        threshold: Option<f64>,
    },
    /// Print usage.
    Help,
}

/// Errors surfaced to the terminal.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let sub = match it.next() {
        None => return Ok(Command::Help),
        Some(s) => s.as_str(),
    };
    let mut flags: std::collections::BTreeMap<String, String> = Default::default();
    let rest: Vec<&String> = it.collect();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("expected --flag, got `{}`", rest[i])))?;
        if key == "detect-shocks" || key == "cancel-checkpoint" {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| err(format!("--{key} needs a value")))?;
        flags.insert(key.to_string(), value.to_string());
        i += 2;
    }
    let get = |k: &str, default: Option<&str>| -> Result<String, CliError> {
        flags
            .get(k)
            .cloned()
            .or_else(|| default.map(str::to_string))
            .ok_or_else(|| err(format!("missing required flag --{k}")))
    };
    let method_of = |s: &str| -> Result<MethodChoice, CliError> {
        match s {
            "sarimax" => Ok(MethodChoice::Sarimax),
            "hes" => Ok(MethodChoice::Hes),
            "tbats" => Ok(MethodChoice::Tbats),
            "auto" => Ok(MethodChoice::Auto),
            other => Err(err(format!(
                "unknown method `{other}` (sarimax|hes|tbats|auto)"
            ))),
        }
    };
    let granularity_of = |s: &str| -> Result<Granularity, CliError> {
        match s {
            "hourly" => Ok(Granularity::Hourly),
            "daily" => Ok(Granularity::Daily),
            "weekly" => Ok(Granularity::Weekly),
            other => Err(err(format!(
                "unknown granularity `{other}` (hourly|daily|weekly)"
            ))),
        }
    };
    match sub {
        "simulate" => Ok(Command::Simulate {
            scenario: get("scenario", Some("oltp"))?,
            instance: get("instance", Some("cdbm011"))?,
            metric: get("metric", Some("cpu"))?,
            seed: get("seed", Some("42"))?
                .parse()
                .map_err(|_| err("--seed must be an integer"))?,
            out: get("out", Some("-"))?,
        }),
        "forecast" => Ok(Command::Forecast {
            input: get("input", None)?,
            method: method_of(&get("method", Some("sarimax"))?)?,
            granularity: granularity_of(&get("granularity", Some("hourly"))?)?,
            detect_shocks: flags.contains_key("detect-shocks"),
            grid: match get("grid", Some("full"))?.as_str() {
                "full" => GridStrategy::Full,
                "auto-order" => GridStrategy::AutoOrder,
                other => {
                    return Err(err(format!("unknown grid `{other}` (full|auto-order)")));
                }
            },
        }),
        "fleet" => {
            let cancel_checkpoint = flags.contains_key("cancel-checkpoint");
            // `--cancel-checkpoint` is an administrative action on the
            // checkpoint file alone; it needs no inputs.
            let inputs: Vec<String> = get("inputs", cancel_checkpoint.then_some(""))?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            if inputs.is_empty() && !cancel_checkpoint {
                return Err(err("--inputs needs at least one CSV path"));
            }
            Ok(Command::Fleet {
                inputs,
                method: method_of(&get("method", Some("sarimax"))?)?,
                granularity: granularity_of(&get("granularity", Some("hourly"))?)?,
                threads: get("threads", Some("0"))?
                    .parse()
                    .map_err(|_| err("--threads must be an integer"))?,
                radius: get("radius", Some("1"))?
                    .parse()
                    .map_err(|_| err("--radius must be an integer"))?,
                repo: flags.get("repo").cloned(),
                repo_dir: flags.get("repo-dir").cloned(),
                wave: get("wave", Some("0"))?
                    .parse()
                    .map_err(|_| err("--wave must be an integer"))?,
                shards: get("shards", Some("16"))?
                    .parse()
                    .map_err(|_| err("--shards must be an integer"))?,
                checkpoint: flags.get("checkpoint").cloned(),
                cancel_checkpoint,
            })
        }
        "advise" => Ok(Command::Advise {
            input: get("input", None)?,
            threshold: get("threshold", None)?
                .parse()
                .map_err(|_| err("--threshold must be a number"))?,
            method: method_of(&get("method", Some("sarimax"))?)?,
        }),
        "serve" => Ok(Command::Serve {
            addr: get("addr", Some("127.0.0.1:7878"))?,
            threads: get("threads", Some("0"))?
                .parse()
                .map_err(|_| err("--threads must be an integer"))?,
            method: method_of(&get("method", Some("sarimax"))?)?,
            granularity: granularity_of(&get("granularity", Some("hourly"))?)?,
            threshold: match flags.get("threshold") {
                None => None,
                Some(t) => Some(t.parse().map_err(|_| err("--threshold must be a number"))?),
            },
        }),
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(err(format!("unknown subcommand `{other}`"))),
    }
}

/// Usage text.
pub const USAGE: &str = "dwcp — database workload capacity planning (SIGMOD'20 reproduction)

USAGE:
  dwcp simulate [--scenario olap|oltp] [--instance NAME] [--metric cpu|memory|iops]
                [--seed N] [--out FILE]
  dwcp forecast --input FILE [--method sarimax|hes|tbats|auto]
                [--granularity hourly|daily|weekly] [--detect-shocks]
                [--grid full|auto-order]
  dwcp fleet    --inputs A.csv,B.csv,... [--method sarimax|hes|tbats|auto]
                [--granularity hourly|daily|weekly] [--threads N] [--radius N]
                [--repo FILE | --repo-dir DIR [--wave N] [--shards N]
                 [--checkpoint FILE]]
  dwcp fleet    --checkpoint FILE --cancel-checkpoint
  dwcp advise   --input FILE --threshold X [--method sarimax|hes|tbats|auto]
  dwcp serve    [--addr HOST:PORT] [--threads N] [--method sarimax|hes|tbats|auto]
                [--granularity hourly|daily|weekly] [--threshold X]

CSV input: one observation per line, `value` or `timestamp,value`.
`--method auto` races every family through one grid and keeps the best
held-out RMSE. `--grid auto-order` replaces the SARIMAX sweep with an
ACF/PACF-seeded neighbourhood grid (ADF/KPSS pick the differencing) and
falls back to the full sweep if the seeded champion cannot beat a naive
benchmark forecast. `fleet` schedules every input through one shared
worker pool; with --repo it persists champions (any family) and seeds
relearning from them on the next run. With --repo-dir it runs the
estate path instead: stalest-first waves of --wave jobs over a sharded
on-disk repository (created with --shards shards), optionally recording
finished jobs in --checkpoint so a killed scan resumes where it stopped;
--cancel-checkpoint deletes that file and exits.

`serve` runs the resident ingest→score→alert daemon (default address
127.0.0.1:7878) until `POST /shutdown`. Agents push raw points with
`POST /push?workload=K` (CSV body, `timestamp,value` per line); the
daemon folds them into hourly aggregates, re-scores the stored champion
frozen per new complete hour, and relearns only when the staleness or
RMSE-degradation rules fire. Read endpoints: `GET /series?workload=K
[&cursor=N][&limit=N]` pages the aggregated series (follow `next_cursor`
until it is null; limit caps at 4096 per page), `GET /forecast?workload=K`
returns the latest beyond-the-data forecast, `GET /alerts?workload=K` the
fired-alert log (needs --threshold), `GET /status?workload=K` the ingest
and scoring counters, `GET /health` liveness. Workload keys containing
`/` must be percent-encoded (`cdbm012%2FCPU`).
";

/// Parse a metric CSV into a [`TimeSeries`] (assumed hourly unless
/// timestamps imply otherwise; blank/NaN fields become gaps).
pub fn read_csv(content: &str) -> Result<TimeSeries, CliError> {
    let mut timestamps: Vec<Option<u64>> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    for (lineno, line) in content.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let (ts, value_field) = match fields.len() {
            1 => (None, fields[0]),
            2 => (fields[0].parse::<u64>().ok(), fields[1]),
            n => {
                return Err(err(format!(
                    "line {}: expected 1 or 2 fields, got {n}",
                    lineno + 1
                )))
            }
        };
        let value = if value_field.is_empty() || value_field.eq_ignore_ascii_case("nan") {
            f64::NAN
        } else {
            match value_field.parse::<f64>() {
                Ok(v) => v,
                Err(_) if lineno == 0 => continue, // header row
                Err(_) => {
                    return Err(err(format!(
                        "line {}: `{value_field}` is not a number",
                        lineno + 1
                    )))
                }
            }
        };
        timestamps.push(ts);
        values.push(value);
    }
    if values.is_empty() {
        return Err(err("no observations in input"));
    }
    // Infer cadence from the first two timestamps when present.
    let origin = timestamps.first().copied().flatten().unwrap_or(0);
    let frequency = match (
        timestamps.first().copied().flatten(),
        timestamps.get(1).copied().flatten(),
    ) {
        (Some(a), Some(b)) if b > a => match b - a {
            900 => Frequency::QuarterHourly,
            3_600 => Frequency::Hourly,
            86_400 => Frequency::Daily,
            604_800 => Frequency::Weekly,
            _ => Frequency::Hourly,
        },
        _ => Frequency::Hourly,
    };
    Ok(TimeSeries::new(values, frequency, origin))
}

/// Render a series as `timestamp,value` CSV.
pub fn write_csv(series: &TimeSeries) -> String {
    let mut out = String::with_capacity(series.len() * 20);
    out.push_str("timestamp,value\n");
    for (i, &v) in series.values().iter().enumerate() {
        if v.is_nan() {
            out.push_str(&format!("{},\n", series.timestamp(i)));
        } else {
            out.push_str(&format!("{},{v:.6}\n", series.timestamp(i)));
        }
    }
    out
}

/// Execute a parsed command, writing human output to `stdout`.
pub fn execute(
    command: Command,
    stdout: &mut impl std::io::Write,
) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Help => {
            write!(stdout, "{USAGE}")?;
            Ok(())
        }
        Command::Simulate {
            scenario,
            instance,
            metric,
            seed,
            out,
        } => {
            let scenario = scenario_of(&scenario)?;
            let metric = metric_of(&metric)?;
            let series = scenario.hourly(seed, &instance, metric)?;
            let csv = write_csv(&series);
            if out == "-" {
                write!(stdout, "{csv}")?;
            } else {
                std::fs::write(&out, csv)?;
                writeln!(
                    stdout,
                    "wrote {} hourly observations of {instance}/{} to {out}",
                    series.len(),
                    metric.label()
                )?;
            }
            Ok(())
        }
        Command::Forecast {
            input,
            method,
            granularity,
            detect_shocks,
            grid,
        } => {
            let content = std::fs::read_to_string(&input)?;
            let series = read_csv(&content)?;
            let mut config = PipelineConfig::hourly(method);
            config.granularity = granularity;
            config.auto_detect_shocks = detect_shocks;
            config.grid = grid;
            let pipeline = Pipeline::new(config);
            let horizon = granularity.horizon();
            let (outcome, future) = pipeline.refit_and_forecast(&series, &[], &[], horizon)?;
            let family = outcome.family.map(|f| f.label()).unwrap_or("unknown");
            writeln!(stdout, "# champion: {}", outcome.champion)?;
            writeln!(stdout, "# method: {method:?} -> chosen family: {family}")?;
            writeln!(
                stdout,
                "# summary: {{\"champion\":\"{}\",\"family\":\"{}\",\"rmse\":{:.6}}}",
                outcome.champion, family, outcome.accuracy.rmse
            )?;
            writeln!(
                stdout,
                "# held-out accuracy: RMSE {:.4}  MAPE {:.2}%  MAPA {:.2}%  ({} models evaluated)",
                outcome.accuracy.rmse,
                outcome.accuracy.mape,
                outcome.accuracy.mapa,
                outcome.evaluated
            )?;
            if outcome.stats.objective_evals > 0 {
                writeln!(
                    stdout,
                    "# search: {} objective evals, {} cache hits, {} warm starts, {:.0} ms wall",
                    outcome.stats.objective_evals,
                    outcome.stats.cache_hits,
                    outcome.stats.warm_starts,
                    outcome.stats.wall_time.as_secs_f64() * 1e3
                )?;
            }
            writeln!(stdout, "step,timestamp,forecast,lower,upper")?;
            let step_seconds = series.frequency().seconds();
            for h in 0..future.len() {
                writeln!(
                    stdout,
                    "{h},{},{:.6},{:.6},{:.6}",
                    series.next_timestamp() + h as u64 * step_seconds,
                    future.mean[h],
                    future.lower[h],
                    future.upper[h]
                )?;
            }
            Ok(())
        }
        Command::Fleet {
            inputs,
            method,
            granularity,
            threads,
            radius,
            repo,
            repo_dir,
            wave,
            shards,
            checkpoint,
            cancel_checkpoint,
        } => {
            if cancel_checkpoint {
                let path = checkpoint
                    .as_deref()
                    .ok_or_else(|| err("--cancel-checkpoint needs --checkpoint FILE"))?;
                let existed = Checkpoint::cancel(std::path::Path::new(path));
                writeln!(
                    stdout,
                    "# checkpoint {path}: {}",
                    if existed { "cancelled" } else { "not found" }
                )?;
                return Ok(());
            }
            if repo.is_some() && repo_dir.is_some() {
                return Err(err("--repo and --repo-dir are mutually exclusive").into());
            }
            if (wave > 0 || checkpoint.is_some()) && repo_dir.is_none() {
                return Err(err("--wave/--checkpoint need --repo-dir DIR").into());
            }
            let mut jobs = Vec::with_capacity(inputs.len());
            for input in &inputs {
                let content = std::fs::read_to_string(input)?;
                let series = read_csv(&content)?;
                let key = std::path::Path::new(input)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| input.clone());
                let mut config = PipelineConfig::hourly(method);
                config.granularity = granularity;
                jobs.push(SeriesJob::new(key, series, config));
            }
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let options = FleetOptions {
                threads,
                neighbourhood_radius: radius,
                now,
                ..Default::default()
            };
            if let Some(dir) = &repo_dir {
                return execute_fleet_waves(
                    stdout,
                    &jobs,
                    options,
                    dir,
                    wave,
                    shards,
                    checkpoint.as_deref(),
                );
            }
            let mut scheduler = match &repo {
                Some(path) => {
                    // Lenient by design: a corrupt or truncated repository
                    // file degrades to a full relearn of every workload
                    // (first-boot behaviour) rather than aborting the run.
                    let (repository, warning) =
                        ModelRepository::load_lenient(std::path::Path::new(path));
                    if let Some(err) = warning {
                        writeln!(
                            stdout,
                            "# warning: model repository {path} is unreadable ({err}); \
                             relearning every workload from scratch"
                        )?;
                    }
                    FleetScheduler::with_repository(options, repository)
                }
                None => FleetScheduler::new(options),
            };
            let report = scheduler.run_batch(&jobs);
            writeln!(
                stdout,
                "workload,champion,rmse,mape,reused,fell_back,family"
            )?;
            for job in &report.jobs {
                match &job.outcome {
                    Ok(outcome) => writeln!(
                        stdout,
                        "{},{},{:.4},{:.2},{},{},{}",
                        job.key,
                        outcome.champion,
                        outcome.accuracy.rmse,
                        outcome.accuracy.mape,
                        job.reused,
                        job.fell_back,
                        outcome.family.map(|f| f.label()).unwrap_or("unknown")
                    )?,
                    Err(e) => writeln!(stdout, "{},ERROR: {e},,,,,", job.key)?,
                }
            }
            writeln!(
                stdout,
                "# batch: {} jobs in {:.0} ms ({:.2} jobs/s), {} objective evals",
                report.jobs.len(),
                report.stats.wall_time.as_secs_f64() * 1e3,
                report.jobs_per_second(),
                report.stats.objective_evals
            )?;
            writeln!(
                stdout,
                "# champion reuse: {} hits, {} misses, {} fallbacks{}",
                report.stats.reuse_hits,
                report.stats.reuse_misses,
                report.stats.reuse_fallbacks,
                match report.stats.reuse_rate() {
                    Some(rate) => format!(" (hit rate {:.0}%)", rate * 100.0),
                    None => String::new(),
                }
            )?;
            if let Some(path) = &repo {
                scheduler.repository.save(std::path::Path::new(path))?;
                writeln!(
                    stdout,
                    "# repository: {} champions saved to {path}",
                    scheduler.repository.len()
                )?;
            }
            Ok(())
        }
        Command::Advise {
            input,
            threshold,
            method,
        } => {
            let content = std::fs::read_to_string(&input)?;
            let series = read_csv(&content)?;
            let pipeline = Pipeline::new(PipelineConfig::hourly(method));
            let horizon = Granularity::Hourly.horizon();
            let (outcome, future) = pipeline.refit_and_forecast(&series, &[], &[], horizon)?;
            writeln!(stdout, "champion: {}", outcome.champion)?;
            let advisor = ThresholdAdvisor::new(threshold);
            match advisor.analyze(&future, series.next_timestamp(), series.frequency().seconds())
            {
                Some(adv) => writeln!(
                    stdout,
                    "ALERT: {:?} breach of {threshold} at step +{} (ts {}): mean {:.2}, upper {:.2}",
                    adv.severity, adv.step, adv.timestamp, adv.forecast_mean, adv.forecast_upper
                )?,
                None => writeln!(
                    stdout,
                    "no breach of {threshold} within the {horizon}-step horizon"
                )?,
            }
            Ok(())
        }
        Command::Serve {
            addr,
            threads,
            method,
            granularity,
            threshold,
        } => {
            let mut pipeline = PipelineConfig::hourly(method);
            pipeline.granularity = granularity;
            let mut config = EngineConfig::new(pipeline);
            config.horizon = granularity.horizon();
            if let Some(threshold) = threshold {
                config
                    .rules
                    .push(AlertRule::new(format!("breach-{threshold}"), threshold));
            }
            let handle = crate::serve::start(Engine::new(config), &addr, threads)?;
            writeln!(
                stdout,
                "dwcp serve listening on http://{} (POST /shutdown to stop)",
                handle.addr()
            )?;
            stdout.flush()?;
            handle.wait();
            writeln!(stdout, "dwcp serve stopped")?;
            Ok(())
        }
    }
}

/// The `fleet --repo-dir` path: stream the jobs through the estate wave
/// scheduler over a sharded on-disk repository, printing per-job rows as
/// each wave retires plus `# wave i/n:` progress lines.
fn execute_fleet_waves(
    stdout: &mut impl std::io::Write,
    jobs: &[SeriesJob],
    options: FleetOptions,
    repo_dir: &str,
    wave: usize,
    shards: usize,
    checkpoint: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut repository = ShardedRepository::open_or_create(std::path::Path::new(repo_dir), shards)?;
    for warning in repository.take_warnings() {
        writeln!(stdout, "# warning: {warning}")?;
    }
    let mut scheduler = EstateScheduler::new(
        options,
        WaveOptions {
            wave_size: wave,
            checkpoint: checkpoint.map(std::path::PathBuf::from),
            max_waves: 0,
        },
        repository,
    );
    let source = SliceJobSource::new(jobs);
    writeln!(
        stdout,
        "workload,champion,rmse,mape,reused,fell_back,family"
    )?;
    let report = scheduler.run_with_progress(&source, &mut |progress, results| {
        for job in results {
            let _ = match &job.outcome {
                Ok(outcome) => writeln!(
                    stdout,
                    "{},{},{:.4},{:.2},{},{},{}",
                    job.key,
                    outcome.champion,
                    outcome.accuracy.rmse,
                    outcome.accuracy.mape,
                    job.reused,
                    job.fell_back,
                    outcome.family.map(|f| f.label()).unwrap_or("unknown")
                ),
                Err(e) => writeln!(stdout, "{},ERROR: {e},,,,,", job.key),
            };
        }
        let _ = writeln!(
            stdout,
            "# wave {}/{}: {}/{} jobs, {:.0} ms, {} series bytes resident",
            progress.wave,
            progress.total_waves,
            progress.jobs_done,
            progress.jobs_total,
            progress.wave_wall.as_secs_f64() * 1e3,
            progress.wave_bytes
        );
    })?;
    writeln!(
        stdout,
        "# scan: {} fitted, {} skipped (checkpoint), {} failed in {} wave(s), {:.2} jobs/s",
        report.completed,
        report.skipped,
        report.failed,
        report.waves,
        report.jobs_per_second()
    )?;
    writeln!(
        stdout,
        "# champion reuse: {} hits, {} misses, {} fallbacks{}",
        report.stats.reuse_hits,
        report.stats.reuse_misses,
        report.stats.reuse_fallbacks,
        match report.stats.reuse_rate() {
            Some(rate) => format!(" (hit rate {:.0}%)", rate * 100.0),
            None => String::new(),
        }
    )?;
    let champions = scheduler.repository.count_records()?;
    let io = scheduler.repository.io_stats();
    writeln!(
        stdout,
        "# repository: {champions} champions in {} shard(s) at {repo_dir} \
         ({} shard loads, {} appends, {} compactions, {} evictions)",
        scheduler.repository.n_shards(),
        io.shard_loads,
        io.entries_appended,
        io.compactions,
        io.evictions
    )?;
    for warning in scheduler.repository.take_warnings() {
        writeln!(stdout, "# warning: {warning}")?;
    }
    if let Some(path) = checkpoint {
        writeln!(
            stdout,
            "# checkpoint: {path} ({} job(s) recorded; rerun to resume, \
             --cancel-checkpoint to discard)",
            report.skipped + report.completed
        )?;
    }
    Ok(())
}

fn scenario_of(name: &str) -> Result<Scenario, CliError> {
    match name {
        "olap" => Ok(olap_scenario()),
        "oltp" => Ok(oltp_scenario()),
        other => Err(err(format!("unknown scenario `{other}` (olap|oltp)"))),
    }
}

fn metric_of(name: &str) -> Result<Metric, CliError> {
    match name {
        "cpu" => Ok(Metric::CpuPercent),
        "memory" | "mem" => Ok(Metric::MemoryMb),
        "iops" | "io" => Ok(Metric::LogicalIops),
        other => Err(err(format!("unknown metric `{other}` (cpu|memory|iops)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parse_simulate_with_defaults() {
        let cmd = parse(&args("simulate")).unwrap();
        assert_eq!(
            cmd,
            Command::Simulate {
                scenario: "oltp".into(),
                instance: "cdbm011".into(),
                metric: "cpu".into(),
                seed: 42,
                out: "-".into(),
            }
        );
    }

    #[test]
    fn parse_forecast_flags() {
        let cmd = parse(&args(
            "forecast --input series.csv --method hes --granularity daily",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Forecast {
                input: "series.csv".into(),
                method: MethodChoice::Hes,
                granularity: Granularity::Daily,
                detect_shocks: false,
                grid: GridStrategy::Full,
            }
        );
    }

    #[test]
    fn parse_grid_strategy() {
        let cmd = parse(&args("forecast --input x.csv --grid auto-order")).unwrap();
        match cmd {
            Command::Forecast { grid, .. } => assert_eq!(grid, GridStrategy::AutoOrder),
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("forecast --input x.csv --grid nope")).is_err());
    }

    #[test]
    fn parse_method_auto() {
        let cmd = parse(&args("forecast --input x.csv --method auto")).unwrap();
        match cmd {
            Command::Forecast { method, .. } => assert_eq!(method, MethodChoice::Auto),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_detect_shocks_is_a_bare_flag() {
        let cmd = parse(&args("forecast --input x.csv --detect-shocks")).unwrap();
        match cmd {
            Command::Forecast { detect_shocks, .. } => assert!(detect_shocks),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_fleet_splits_inputs_and_reads_flags() {
        let cmd = parse(&args(
            "fleet --inputs a.csv,b.csv,c.csv --threads 4 --radius 2 --repo models.json",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Fleet {
                inputs: vec!["a.csv".into(), "b.csv".into(), "c.csv".into()],
                method: MethodChoice::Sarimax,
                granularity: Granularity::Hourly,
                threads: 4,
                radius: 2,
                repo: Some("models.json".into()),
                repo_dir: None,
                wave: 0,
                shards: 16,
                checkpoint: None,
                cancel_checkpoint: false,
            }
        );
    }

    #[test]
    fn parse_fleet_defaults() {
        let cmd = parse(&args("fleet --inputs one.csv")).unwrap();
        match cmd {
            Command::Fleet {
                inputs,
                threads,
                radius,
                repo,
                repo_dir,
                wave,
                shards,
                checkpoint,
                cancel_checkpoint,
                ..
            } => {
                assert_eq!(inputs, vec!["one.csv".to_string()]);
                assert_eq!(threads, 0);
                assert_eq!(radius, 1);
                assert_eq!(repo, None);
                assert_eq!(repo_dir, None);
                assert_eq!(wave, 0);
                assert_eq!(shards, 16);
                assert_eq!(checkpoint, None);
                assert!(!cancel_checkpoint);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_fleet_rejects_empty_inputs() {
        assert!(parse(&args("fleet")).is_err());
        assert!(parse(&args("fleet --inputs ,")).is_err());
    }

    #[test]
    fn parse_fleet_wave_flags() {
        let cmd = parse(&args(
            "fleet --inputs a.csv --repo-dir estate --wave 512 --shards 32 \
             --checkpoint scan.ckpt",
        ))
        .unwrap();
        match cmd {
            Command::Fleet {
                repo_dir,
                wave,
                shards,
                checkpoint,
                cancel_checkpoint,
                ..
            } => {
                assert_eq!(repo_dir, Some("estate".to_string()));
                assert_eq!(wave, 512);
                assert_eq!(shards, 32);
                assert_eq!(checkpoint, Some("scan.ckpt".to_string()));
                assert!(!cancel_checkpoint);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("fleet --inputs a.csv --wave twelve")).is_err());
    }

    #[test]
    fn parse_cancel_checkpoint_is_bare_and_needs_no_inputs() {
        let cmd = parse(&args("fleet --checkpoint scan.ckpt --cancel-checkpoint")).unwrap();
        match cmd {
            Command::Fleet {
                inputs,
                checkpoint,
                cancel_checkpoint,
                ..
            } => {
                assert!(inputs.is_empty());
                assert_eq!(checkpoint, Some("scan.ckpt".to_string()));
                assert!(cancel_checkpoint);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn execute_fleet_flag_combinations_are_validated() {
        let fleet = |repo: Option<&str>, repo_dir: Option<&str>, wave: usize| Command::Fleet {
            inputs: vec!["x.csv".into()],
            method: MethodChoice::Hes,
            granularity: Granularity::Hourly,
            threads: 1,
            radius: 1,
            repo: repo.map(str::to_string),
            repo_dir: repo_dir.map(str::to_string),
            wave,
            shards: 4,
            checkpoint: None,
            cancel_checkpoint: false,
        };
        let mut out = Vec::new();
        assert!(execute(fleet(Some("m.json"), Some("dir"), 0), &mut out).is_err());
        assert!(execute(fleet(None, None, 8), &mut out).is_err());
    }

    #[test]
    fn execute_cancel_checkpoint_reports_missing_and_deleted() {
        let dir = std::env::temp_dir().join(format!("dwcp-cli-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.ckpt");
        let cancel = Command::Fleet {
            inputs: Vec::new(),
            method: MethodChoice::Hes,
            granularity: Granularity::Hourly,
            threads: 1,
            radius: 1,
            repo: None,
            repo_dir: None,
            wave: 0,
            shards: 16,
            checkpoint: Some(path.display().to_string()),
            cancel_checkpoint: true,
        };
        let mut out = Vec::new();
        execute(cancel.clone(), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("not found"));
        std::fs::write(&path, "{\"dwcp_checkpoint\":1,\"total\":1}\n").unwrap();
        let mut out = Vec::new();
        execute(cancel, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("cancelled"));
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_serve_defaults_and_flags() {
        assert_eq!(
            parse(&args("serve")).unwrap(),
            Command::Serve {
                addr: "127.0.0.1:7878".into(),
                threads: 0,
                method: MethodChoice::Sarimax,
                granularity: Granularity::Hourly,
                threshold: None,
            }
        );
        let cmd = parse(&args(
            "serve --addr 127.0.0.1:0 --threads 8 --method hes --threshold 85.5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                threads: 8,
                method: MethodChoice::Hes,
                granularity: Granularity::Hourly,
                threshold: Some(85.5),
            }
        );
        assert!(parse(&args("serve --threshold hot")).is_err());
        assert!(parse(&args("serve --threads none")).is_err());
    }

    #[test]
    fn usage_documents_serve_and_paged_reads() {
        assert!(USAGE.contains("dwcp serve"));
        assert!(USAGE.contains("cursor"));
        assert!(USAGE.contains("next_cursor"));
        assert!(USAGE.contains("/shutdown"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse(&args("frobnicate")).is_err());
        assert!(parse(&args("advise --input x.csv")).is_err()); // missing threshold
        assert!(parse(&args("forecast --input x.csv --method prophet")).is_err());
        assert!(parse(&args("simulate --seed twelve")).is_err());
        assert!(parse(&args("simulate notaflag")).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
    }

    #[test]
    fn csv_roundtrip() {
        let series = TimeSeries::new(vec![1.5, f64::NAN, 3.25], Frequency::Hourly, 7200);
        let csv = write_csv(&series);
        let back = read_csv(&csv).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.origin(), 7200);
        assert_eq!(back.frequency(), Frequency::Hourly);
        assert_eq!(back.values()[0], 1.5);
        assert!(back.values()[1].is_nan());
        assert_eq!(back.values()[2], 3.25);
    }

    #[test]
    fn csv_single_column_and_comments() {
        let series = read_csv("# cpu trace\n10.5\n11\n\n12.5\n").unwrap();
        assert_eq!(series.values(), &[10.5, 11.0, 12.5]);
    }

    #[test]
    fn csv_header_row_is_skipped() {
        let series = read_csv("timestamp,value\n0,1.0\n3600,2.0\n").unwrap();
        assert_eq!(series.len(), 2);
    }

    #[test]
    fn csv_daily_cadence_detected() {
        let series = read_csv("0,5\n86400,6\n172800,7\n").unwrap();
        assert_eq!(series.frequency(), Frequency::Daily);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(read_csv("").is_err());
        assert!(read_csv("1.0\nnot_a_number\n").is_err());
        assert!(read_csv("1,2,3\n").is_err());
    }

    #[test]
    fn execute_help_prints_usage() {
        let mut out = Vec::new();
        execute(Command::Help, &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    }

    #[test]
    fn execute_simulate_to_stdout() {
        let mut out = Vec::new();
        execute(
            Command::Simulate {
                scenario: "olap".into(),
                instance: "cdbm012".into(),
                metric: "cpu".into(),
                seed: 1,
                out: "-".into(),
            },
            &mut out,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("timestamp,value\n"));
        assert!(text.lines().count() > 1000);
    }
}
