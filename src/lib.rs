//! # dwcp — Database Workload Capacity Planning
//!
//! A Rust reproduction of Higginson et al., *Database Workload Capacity
//! Planning using Time Series Analysis and Machine Learning* (SIGMOD 2020).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`math`] — numerical substrate (linear algebra, optimisation, FFT,
//!   distributions),
//! * [`series`] — time-series containers, diagnostics and transforms,
//! * [`models`] — ARIMA/SARIMA/SARIMAX (+exogenous, +Fourier), exponential
//!   smoothing (HES) and TBATS forecasting models,
//! * [`workload`] — the simulated N-tier clustered database testbed
//!   (agent, repository, OLAP/OLTP scenarios, shocks),
//! * [`planner`] — the paper's contribution: automated model selection,
//!   parallel grid search, the model repository with its staleness policy,
//!   and the forecasting/advisory API,
//! * [`cli`] — the `dwcp` command-line tool (`simulate` / `forecast` /
//!   `advise` over CSV series),
//! * [`serve`] — the resident `dwcp serve` daemon: HTTP push of raw agent
//!   points into the staged ingest→score→alert engine.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.
#![forbid(unsafe_code)]

pub mod cli;
pub mod serve;

pub use dwcp_core as planner;
pub use dwcp_math as math;
pub use dwcp_models as models;
pub use dwcp_series as series;
pub use dwcp_workload as workload;
