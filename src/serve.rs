//! `dwcp serve`: the resident ingest→score→alert daemon over HTTP.
//!
//! The batch CLI answers one-shot questions; the paper's deployment story
//! (§8) is a *monitoring service*: agents push 15-minute samples, the
//! planner folds them into hourly aggregates, re-scores the stored
//! champion **frozen** as data arrives, and raises threshold alerts from
//! each fresh forecast. This module is that service — a hand-rolled
//! HTTP/1.1 front end over [`Engine`], built on `std` alone because the
//! build environment has no registry access: one acceptor thread feeds a
//! fixed worker pool through an mpsc channel, and the engine sits behind a
//! mutex (scoring is CPU-bound and already parallel inside the evaluator,
//! so serialising requests at the engine is the right concurrency
//! boundary).
//!
//! Endpoints (all responses are `application/json`):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `GET /health` | liveness plus the known workload keys |
//! | `POST /push?workload=K` | CSV body, `timestamp,value` per line; folds into hourly buckets and runs **one** engine step |
//! | `GET /series?workload=K&cursor=N&limit=N` | one cursor page of hourly aggregates (`next_cursor` is `null` at the end) |
//! | `GET /forecast?workload=K` | the latest beyond-the-data forecast |
//! | `GET /alerts?workload=K` | the fired-alert log |
//! | `GET /status?workload=K` | ingest/score counters for one workload |
//! | `POST /shutdown` | drain in-flight requests and stop the daemon |
//!
//! Workload keys may contain `/` (e.g. `cdbm012/CPU`); percent-encode
//! them in query strings (`cdbm012%2FCPU`).

use crate::planner::advisor::BreachSeverity;
use crate::planner::protocol::{accept_one, request_shutdown};
use crate::planner::repository::RelearnReason;
use crate::planner::{
    CapacityAlert, Engine, LiveForecast, ScoreAction, ScoreSummary, StepOutcome, WorkloadStatus,
};
use crate::series::SeriesPage;
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::AtomicBool;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Request headers larger than this are rejected.
const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Request bodies larger than this are rejected (a year of 15-minute
/// points is ~35k lines ≈ 700 KiB, so this is generous).
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Per-connection socket timeout: a stalled client frees its worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);
/// Worker threads when the caller passes 0.
const DEFAULT_WORKERS: usize = 4;

/// A running `dwcp serve` daemon.
///
/// Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or POST `/shutdown`) and then
/// [`ServerHandle::wait`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    signal: ShutdownSignal,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `--addr 127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop accepting connections and drain.
    pub fn shutdown(&self) {
        self.signal.trigger();
    }

    /// Block until the acceptor and every worker have exited.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// How a shutdown reaches the blocking acceptor: set the flag, then
/// self-connect once so `accept` returns and observes it. The
/// flag-before-wake ordering is the drain-gate protocol
/// ([`crate::planner::protocol::request_shutdown`]), model-checked in
/// dwcp-core's `model_check` suite.
#[derive(Debug, Clone)]
struct ShutdownSignal {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownSignal {
    fn trigger(&self) {
        request_shutdown(self.flag.as_ref(), || {
            // The connect may fail if the acceptor is already gone — fine.
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        });
    }
}

/// Bind `addr` (e.g. `127.0.0.1:8000`, or port 0 for an ephemeral port)
/// and serve `engine` on `threads` workers (0 = a small default pool).
/// Returns once the listener is bound; the daemon runs on background
/// threads until `/shutdown` is posted or [`ServerHandle::shutdown`] runs.
pub fn start(engine: Engine, addr: &str, threads: usize) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let flag = Arc::new(AtomicBool::new(false));
    let signal = ShutdownSignal {
        flag: Arc::clone(&flag),
        addr,
    };
    let engine = Arc::new(Mutex::new(engine));
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers = (0..worker_count(threads))
        .map(|_| {
            let engine = Arc::clone(&engine);
            let rx = Arc::clone(&rx);
            let signal = signal.clone();
            std::thread::spawn(move || worker_loop(&engine, &rx, &signal))
        })
        .collect();
    let acceptor = std::thread::spawn(move || acceptor_loop(&listener, &tx, &flag));
    Ok(ServerHandle {
        addr,
        signal,
        acceptor: Some(acceptor),
        workers,
    })
}

fn worker_count(threads: usize) -> usize {
    if threads == 0 {
        DEFAULT_WORKERS
    } else {
        threads.min(64)
    }
}

/// Accept connections and hand them to the workers. Exits when the
/// shutdown flag is set (the signal's self-connect unblocks `accept`) or
/// every worker is gone; dropping `tx` then drains the pool.
///
/// Every accepted stream is enqueued *before* the flag is consulted
/// ([`crate::planner::protocol::accept_one`]): a real request racing the
/// shutdown trigger is handed to the pool — which drains the channel
/// before exiting — rather than silently dropped. The wake connection the
/// trigger makes takes the same path; a worker answers its empty request
/// with a 400 and moves on.
fn acceptor_loop(listener: &TcpListener, tx: &mpsc::Sender<TcpStream>, flag: &AtomicBool) {
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        if accept_one(flag, || tx.send(stream).is_ok()) {
            break;
        }
    }
}

/// Pull connections off the shared channel until it closes.
fn worker_loop(
    engine: &Mutex<Engine>,
    rx: &Mutex<mpsc::Receiver<TcpStream>>,
    signal: &ShutdownSignal,
) {
    loop {
        // Take the receiver lock only for the handoff, not the request.
        let stream = {
            let receiver = rx.lock().unwrap_or_else(|e| e.into_inner());
            receiver.recv()
        };
        let Ok(mut stream) = stream else { break };
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        let mut reader = BufReader::new(read_half);
        let (status, body, shutdown) = match parse_request(&mut reader) {
            Ok(request) => match route(engine, &request) {
                Action::Respond(status, value) => (status, value, false),
                Action::Shutdown(value) => (200, value, true),
            },
            Err(message) => (400, error_value(&message), false),
        };
        respond(&mut stream, status, &body);
        if shutdown {
            signal.trigger();
        }
    }
}

/// A parsed HTTP request: method, path, decoded query pairs, body text.
#[derive(Debug)]
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    body: String,
}

impl Request {
    fn param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read one HTTP/1.1 request off the wire. Only the request line,
/// `Content-Length` and the body matter to this server.
fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read error: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "empty request line".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| "request line has no target".to_string())?;
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_string(), parse_query(query)),
        None => (target.to_string(), Vec::new()),
    };
    let mut content_length = 0usize;
    let mut header_bytes = line.len();
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read error in headers: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".to_string());
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".to_string());
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "invalid Content-Length".to_string())?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".to_string());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("short body: {e}"))?;
    Ok(Request {
        method,
        path,
        query,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}

/// Split `a=1&b=2` into decoded pairs.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect()
}

/// Decode `%XX` escapes and `+` (so `cdbm012%2FCPU` names `cdbm012/CPU`).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0usize;
    while let Some(&b) = bytes.get(i) {
        match b {
            b'%' => {
                let decoded = match (bytes.get(i + 1), bytes.get(i + 2)) {
                    (Some(&hi), Some(&lo)) => {
                        match ((hi as char).to_digit(16), (lo as char).to_digit(16)) {
                            (Some(hi), Some(lo)) => Some((hi * 16 + lo) as u8),
                            _ => None,
                        }
                    }
                    _ => None,
                };
                match decoded {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// What a routed request asks the worker to do.
enum Action {
    Respond(u16, Value),
    Shutdown(Value),
}

/// Dispatch one request against the shared engine.
fn route(engine: &Mutex<Engine>, request: &Request) -> Action {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
            let workloads = engine
                .workloads()
                .into_iter()
                .map(|k| Value::String(k.to_string()))
                .collect();
            Action::Respond(
                200,
                obj(vec![
                    ("status", Value::String("ok".to_string())),
                    ("workloads", Value::Array(workloads)),
                ]),
            )
        }
        ("POST", "/push") => match required_workload(request) {
            Ok(workload) => match parse_points(&request.body) {
                Ok(points) => {
                    let mut engine = engine.lock().unwrap_or_else(|e| e.into_inner());
                    match engine.push_batch(&workload, &points) {
                        Ok(outcome) => Action::Respond(
                            200,
                            obj(vec![
                                ("workload", Value::String(workload)),
                                ("accepted", Value::Number(points.len() as f64)),
                                ("outcome", step_value(&outcome)),
                            ]),
                        ),
                        Err(e) => Action::Respond(400, error_value(&e.to_string())),
                    }
                }
                Err(message) => Action::Respond(400, error_value(&message)),
            },
            Err(action) => action,
        },
        ("GET", "/series") => match required_workload(request) {
            Ok(workload) => {
                let cursor = match numeric_param(request, "cursor", 0) {
                    Ok(n) => n,
                    Err(action) => return action,
                };
                let limit = match numeric_param(request, "limit", 0) {
                    Ok(n) => n,
                    Err(action) => return action,
                };
                let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
                match engine.read_page(&workload, cursor, limit) {
                    Some(page) => Action::Respond(200, page_value(&workload, &page)),
                    None => Action::Respond(404, error_value("unknown workload")),
                }
            }
            Err(action) => action,
        },
        ("GET", "/forecast") => match required_workload(request) {
            Ok(workload) => {
                let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
                match engine.forecast(&workload) {
                    Some(forecast) => Action::Respond(200, forecast_value(&workload, forecast)),
                    None => {
                        Action::Respond(404, error_value("no forecast yet (push more data first)"))
                    }
                }
            }
            Err(action) => action,
        },
        ("GET", "/alerts") => match required_workload(request) {
            Ok(workload) => {
                let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
                let alerts = engine.alerts(&workload).iter().map(alert_value).collect();
                Action::Respond(
                    200,
                    obj(vec![
                        ("workload", Value::String(workload)),
                        ("alerts", Value::Array(alerts)),
                    ]),
                )
            }
            Err(action) => action,
        },
        ("GET", "/status") => match required_workload(request) {
            Ok(workload) => {
                let engine = engine.lock().unwrap_or_else(|e| e.into_inner());
                match engine.status(&workload) {
                    Some(status) => Action::Respond(200, status_value(&status)),
                    None => Action::Respond(404, error_value("unknown workload")),
                }
            }
            Err(action) => action,
        },
        ("POST", "/shutdown") => Action::Shutdown(obj(vec![(
            "status",
            Value::String("shutting-down".to_string()),
        )])),
        _ => Action::Respond(404, error_value("no such endpoint")),
    }
}

fn required_workload(request: &Request) -> Result<String, Action> {
    match request.param("workload") {
        Some(w) if !w.is_empty() => Ok(w.to_string()),
        _ => Err(Action::Respond(
            400,
            error_value("missing ?workload= parameter"),
        )),
    }
}

fn numeric_param(request: &Request, name: &str, default: usize) -> Result<usize, Action> {
    match request.param(name) {
        None => Ok(default),
        Some(text) => text.parse().map_err(|_| {
            Action::Respond(400, error_value(&format!("?{name}= must be an integer")))
        }),
    }
}

/// Parse a CSV push body: one `timestamp,value` pair per line; `#` lines
/// and a non-numeric header row are skipped, blank/`nan` values are gaps.
fn parse_points(body: &str) -> Result<Vec<(u64, f64)>, String> {
    let mut points = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((ts, value)) = line.split_once(',') else {
            return Err(format!("line {}: expected `timestamp,value`", lineno + 1));
        };
        let ts = match ts.trim().parse::<u64>() {
            Ok(ts) => ts,
            Err(_) if lineno == 0 => continue, // header row
            Err(_) => {
                return Err(format!(
                    "line {}: `{}` is not an epoch timestamp",
                    lineno + 1,
                    ts.trim()
                ))
            }
        };
        let value = value.trim();
        let value = if value.is_empty() || value.eq_ignore_ascii_case("nan") {
            f64::NAN
        } else {
            value
                .parse::<f64>()
                .map_err(|_| format!("line {}: `{value}` is not a number", lineno + 1))?
        };
        points.push((ts, value));
    }
    if points.is_empty() {
        return Err("no data points in request body".to_string());
    }
    Ok(points)
}

// --- JSON rendering (the vendored serde Value writes NaN/Inf as null) ---

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn error_value(message: &str) -> Value {
    obj(vec![("error", Value::String(message.to_string()))])
}

fn numbers(values: &[f64]) -> Value {
    Value::Array(values.iter().map(|&v| Value::Number(v)).collect())
}

fn step_value(outcome: &StepOutcome) -> Value {
    match outcome {
        StepOutcome::NeedData { have, need } => obj(vec![
            ("state", Value::String("need-data".to_string())),
            ("have", Value::Number(*have as f64)),
            ("need", Value::Number(*need as f64)),
        ]),
        StepOutcome::Unchanged => obj(vec![("state", Value::String("unchanged".to_string()))]),
        StepOutcome::Scored(summary) => score_value(summary),
    }
}

fn score_value(summary: &ScoreSummary) -> Value {
    let (action, reason) = match &summary.action {
        ScoreAction::Learned => ("learned", Value::Null),
        ScoreAction::Rescored => ("rescored", Value::Null),
        ScoreAction::Relearned(reason) => (
            "relearned",
            Value::String(
                match reason {
                    RelearnReason::Missing => "missing",
                    RelearnReason::Stale => "stale",
                    RelearnReason::Degraded => "degraded",
                }
                .to_string(),
            ),
        ),
    };
    obj(vec![
        ("state", Value::String("scored".to_string())),
        ("action", Value::String(action.to_string())),
        ("relearn_reason", reason),
        ("champion", Value::String(summary.champion.clone())),
        ("live_rmse", Value::Number(summary.live_rmse)),
        ("baseline_rmse", Value::Number(summary.baseline_rmse)),
        (
            "alerts",
            Value::Array(summary.alerts.iter().map(alert_value).collect()),
        ),
    ])
}

fn page_value(workload: &str, page: &SeriesPage) -> Value {
    obj(vec![
        ("workload", Value::String(workload.to_string())),
        ("cursor", Value::Number(page.cursor as f64)),
        ("total", Value::Number(page.total as f64)),
        (
            "timestamps",
            Value::Array(
                page.timestamps
                    .iter()
                    .map(|&t| Value::Number(t as f64))
                    .collect(),
            ),
        ),
        ("values", numbers(&page.values)),
        (
            "next_cursor",
            match page.next_cursor {
                Some(next) => Value::Number(next as f64),
                None => Value::Null,
            },
        ),
    ])
}

fn forecast_value(workload: &str, forecast: &LiveForecast) -> Value {
    obj(vec![
        ("workload", Value::String(workload.to_string())),
        ("start", Value::Number(forecast.start as f64)),
        ("step_seconds", Value::Number(forecast.step_seconds as f64)),
        ("level", Value::Number(forecast.forecast.level)),
        ("mean", numbers(&forecast.forecast.mean)),
        ("lower", numbers(&forecast.forecast.lower)),
        ("upper", numbers(&forecast.forecast.upper)),
    ])
}

fn alert_value(alert: &CapacityAlert) -> Value {
    obj(vec![
        ("workload", Value::String(alert.workload.clone())),
        ("rule", Value::String(alert.rule.clone())),
        ("threshold", Value::Number(alert.threshold)),
        (
            "severity",
            Value::String(
                match alert.severity {
                    BreachSeverity::Expected => "expected",
                    BreachSeverity::Possible => "possible",
                }
                .to_string(),
            ),
        ),
        ("step", Value::Number(alert.step as f64)),
        ("timestamp", Value::Number(alert.timestamp as f64)),
        ("forecast_mean", Value::Number(alert.forecast_mean)),
        ("forecast_upper", Value::Number(alert.forecast_upper)),
    ])
}

fn status_value(status: &WorkloadStatus) -> Value {
    obj(vec![
        ("workload", Value::String(status.workload.clone())),
        ("points", Value::Number(status.points as f64)),
        ("late", Value::Number(status.late as f64)),
        (
            "complete_hours",
            Value::Number(status.complete_hours as f64),
        ),
        ("scored_hours", Value::Number(status.scored_hours as f64)),
        (
            "champion",
            match &status.champion {
                Some(c) => Value::String(c.clone()),
                None => Value::Null,
            },
        ),
        (
            "live_rmse",
            status.live_rmse.map_or(Value::Null, Value::Number),
        ),
        (
            "baseline_rmse",
            status.baseline_rmse.map_or(Value::Null, Value::Number),
        ),
        ("rescores", Value::Number(status.rescores as f64)),
        ("relearns", Value::Number(status.relearns as f64)),
        ("alerts_fired", Value::Number(status.alerts_fired as f64)),
    ])
}

fn respond(stream: &mut TcpStream, status: u16, body: &Value) {
    let text = body.to_json();
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{text}",
        text.len()
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{EngineConfig, MethodChoice, PipelineConfig};
    use std::io::{Cursor, Read};

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("cdbm012%2FCPU"), "cdbm012/CPU");
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%"); // truncated escape kept
        assert_eq!(percent_decode("plain"), "plain");
    }

    #[test]
    fn query_pairs_decode() {
        let q = parse_query("workload=db%2FCPU&cursor=5&flag");
        assert_eq!(q[0], ("workload".to_string(), "db/CPU".to_string()));
        assert_eq!(q[1], ("cursor".to_string(), "5".to_string()));
        assert_eq!(q[2], ("flag".to_string(), String::new()));
    }

    #[test]
    fn request_parse_with_body() {
        let raw = "POST /push?workload=db1 HTTP/1.1\r\nHost: x\r\n\
                   Content-Length: 9\r\n\r\n0,1.5\n1,2";
        let request = parse_request(&mut Cursor::new(raw)).unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/push");
        assert_eq!(request.param("workload"), Some("db1"));
        assert_eq!(request.body, "0,1.5\n1,2");
    }

    #[test]
    fn request_parse_rejects_garbage() {
        assert!(parse_request(&mut Cursor::new("\r\n")).is_err());
        assert!(parse_request(&mut Cursor::new("GET\r\n\r\n")).is_err());
        let huge = format!("GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(parse_request(&mut Cursor::new(huge)).is_err());
    }

    #[test]
    fn push_body_parses_and_validates() {
        let points =
            parse_points("timestamp,value\n0,1.5\n# gap\n900,\n1800,nan\n2700,3\n").unwrap();
        assert_eq!(points.len(), 4);
        assert_eq!(points[0], (0, 1.5));
        assert!(points[1].1.is_nan());
        assert!(points[2].1.is_nan());
        assert_eq!(points[3], (2700, 3.0));
        assert!(parse_points("").is_err());
        assert!(parse_points("justonefield\n").is_err());
        assert!(parse_points("0,1\nnot_a_ts,2\n").is_err());
    }

    /// Raw round-trip helper: one request, full response text back.
    fn http(addr: std::net::SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn daemon_serves_health_and_shuts_down_cleanly() {
        let config = EngineConfig::new(PipelineConfig::hourly(MethodChoice::Hes));
        let handle = start(Engine::new(config), "127.0.0.1:0", 2).unwrap();
        let addr = handle.addr();

        let health = http(addr, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.contains("\"status\":\"ok\""), "{health}");

        let missing = http(
            addr,
            "GET /status?workload=nope HTTP/1.1\r\nHost: x\r\n\r\n",
        );
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let bad = http(addr, "GET /series HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        let push = http(
            addr,
            "POST /push?workload=db1 HTTP/1.1\r\nHost: x\r\nContent-Length: 6\r\n\r\n0,50.0",
        );
        assert!(push.starts_with("HTTP/1.1 200"), "{push}");
        assert!(push.contains("\"state\":\"need-data\""), "{push}");

        let bye = http(addr, "POST /shutdown HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(bye.contains("shutting-down"), "{bye}");
        handle.wait();
    }
}
