//! The `dwcp` binary: see [`dwcp::cli`] for the command grammar.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match dwcp::cli::parse(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", dwcp::cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match dwcp::cli::execute(command, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
