//! Stationarity tests: Augmented Dickey-Fuller and KPSS, plus the automatic
//! choice of the differencing order `d`.
//!
//! The paper: "*Time Domain* — ARIMA uses techniques such as Box-Jenkins and
//! Dicky-Fuller to detect if the data is stationary, trending or requires an
//! element of differencing." The ADF regression here is
//! `Δy_t = α + βt + γ·y_{t−1} + Σ δᵢ Δy_{t−i} + ε_t`, with the test
//! statistic `γ̂/se(γ̂)` compared against MacKinnon critical values.

// lint: allow-file(indexing) — ADF/KPSS design-matrix assembly; lag and row indices are bounded by the regression-length checks that gate each test

use crate::diff::difference;
use crate::{Result, SeriesError};
use dwcp_math::ols::{design, ols};

/// Deterministic terms included in the ADF regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdfRegression {
    /// No constant, no trend.
    None,
    /// Constant only (the usual default).
    Constant,
    /// Constant and linear trend.
    ConstantTrend,
}

/// Result of an augmented Dickey-Fuller test.
#[derive(Debug, Clone)]
pub struct AdfResult {
    /// The `γ̂/se(γ̂)` test statistic.
    pub statistic: f64,
    /// Number of lagged difference terms included.
    pub lags: usize,
    /// Critical values at 1 %, 5 % and 10 % for the chosen regression.
    pub critical: [f64; 3],
    /// Whether the unit-root null is rejected at 5 % (i.e. the series looks
    /// stationary).
    pub stationary: bool,
    /// Regression variant used.
    pub regression: AdfRegression,
}

/// MacKinnon (2010) asymptotic critical values `[1 %, 5 %, 10 %]`.
fn adf_critical_values(reg: AdfRegression) -> [f64; 3] {
    match reg {
        AdfRegression::None => [-2.565, -1.941, -1.617],
        AdfRegression::Constant => [-3.430, -2.862, -2.567],
        AdfRegression::ConstantTrend => [-3.958, -3.410, -3.127],
    }
}

/// Augmented Dickey-Fuller test.
///
/// `lags = None` selects the lag order with the Schwert rule
/// `⌊12·(n/100)^{1/4}⌋` truncated so the regression keeps enough degrees of
/// freedom — the common automatic default.
pub fn adf_test(
    values: &[f64],
    lags: Option<usize>,
    regression: AdfRegression,
) -> Result<AdfResult> {
    let n = values.len();
    if n < 12 {
        return Err(SeriesError::TooShort { needed: 12, got: n });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SeriesError::NonFinite);
    }
    let max_by_schwert = (12.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let lags = lags.unwrap_or(max_by_schwert).min(n.saturating_sub(8) / 2);

    let dy = difference(values, 1);
    // Rows t = lags .. dy.len(): regress dy[t] on y[t] (level at t, which is
    // values index t because dy[t] = values[t+1] − values[t]), trend and
    // lagged dy's.
    let rows = dy.len() - lags;
    if rows < 8 {
        return Err(SeriesError::TooShort {
            needed: lags + 9,
            got: n,
        });
    }

    let mut cols: Vec<Vec<f64>> = Vec::new();
    // Column 0: lagged level y_{t−1}.
    cols.push((lags..dy.len()).map(|t| values[t]).collect());
    match regression {
        AdfRegression::None => {}
        AdfRegression::Constant => cols.push(vec![1.0; rows]),
        AdfRegression::ConstantTrend => {
            cols.push(vec![1.0; rows]);
            cols.push((0..rows).map(|i| i as f64).collect());
        }
    }
    for lag in 1..=lags {
        cols.push((lags..dy.len()).map(|t| dy[t - lag]).collect());
    }
    let col_refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
    let x = design(&col_refs)?;
    let y: Vec<f64> = (lags..dy.len()).map(|t| dy[t]).collect();
    let fit = ols(&x, &y)?;
    let statistic = fit.t_stat(0);
    let critical = adf_critical_values(regression);
    Ok(AdfResult {
        statistic,
        lags,
        critical,
        stationary: statistic < critical[1],
        regression,
    })
}

/// Result of a KPSS test (null hypothesis: *stationary*).
#[derive(Debug, Clone)]
pub struct KpssResult {
    /// The KPSS LM statistic.
    pub statistic: f64,
    /// Critical values at 1 %, 5 % and 10 %.
    pub critical: [f64; 3],
    /// Whether stationarity is **rejected** at 5 % (statistic above the
    /// critical value).
    pub rejected: bool,
    /// Whether the test detrended (level+trend) or just demeaned (level).
    pub trend: bool,
}

/// KPSS test with the Newey-West long-run variance (Bartlett kernel,
/// automatic `⌊4·(n/100)^{1/4}⌋` bandwidth).
pub fn kpss_test(values: &[f64], trend: bool) -> Result<KpssResult> {
    let n = values.len();
    if n < 12 {
        return Err(SeriesError::TooShort { needed: 12, got: n });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SeriesError::NonFinite);
    }
    // Residuals from level or level+trend regression.
    let ones = vec![1.0; n];
    let residuals = if trend {
        let tcol: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let x = design(&[&ones, &tcol])?;
        ols(&x, values)?.residuals
    } else {
        let x = design(&[ones.as_slice()])?;
        ols(&x, values)?.residuals
    };
    // Partial sums.
    let mut s = 0.0;
    let mut sum_s2 = 0.0;
    for &r in &residuals {
        s += r;
        sum_s2 += s * s;
    }
    // Long-run variance.
    let bandwidth = (4.0 * (n as f64 / 100.0).powf(0.25)).floor() as usize;
    let mut lrv: f64 = residuals.iter().map(|r| r * r).sum::<f64>() / n as f64;
    for l in 1..=bandwidth {
        let w = 1.0 - l as f64 / (bandwidth as f64 + 1.0);
        let gamma: f64 = (l..n).map(|t| residuals[t] * residuals[t - l]).sum::<f64>() / n as f64;
        lrv += 2.0 * w * gamma;
    }
    if lrv <= 0.0 {
        lrv = f64::EPSILON;
    }
    let statistic = sum_s2 / (n as f64 * n as f64 * lrv);
    let critical = if trend {
        [0.216, 0.146, 0.119]
    } else {
        [0.739, 0.463, 0.347]
    };
    Ok(KpssResult {
        statistic,
        critical,
        rejected: statistic > critical[1],
        trend,
    })
}

/// Choose the regular differencing order `d ∈ 0..=max_d` by repeated ADF
/// testing: difference until the test calls the series stationary (the
/// paper's "if the data does have trend … we can reduce the effects by
/// differencing the data", and its note that `D` "usually should not be
/// greater than 2").
pub fn suggest_differencing(values: &[f64], max_d: usize) -> Result<usize> {
    let mut current = values.to_vec();
    for d in 0..=max_d {
        match adf_test(&current, None, AdfRegression::Constant) {
            Ok(res) if res.stationary => return Ok(d),
            Ok(_) => {}
            Err(SeriesError::TooShort { .. }) => return Ok(d),
            Err(e) => return Err(e),
        }
        if d < max_d {
            current = difference(&current, 1);
        }
    }
    Ok(max_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn random_walk(n: usize, seed: u64) -> Vec<f64> {
        let e = noise(n, seed);
        let mut y = vec![0.0; n];
        for t in 1..n {
            y[t] = y[t - 1] + e[t];
        }
        y
    }

    #[test]
    fn adf_calls_white_noise_stationary() {
        let y = noise(500, 5);
        let res = adf_test(&y, None, AdfRegression::Constant).unwrap();
        assert!(res.stationary, "statistic = {}", res.statistic);
    }

    #[test]
    fn adf_does_not_reject_unit_root_for_random_walk() {
        let y = random_walk(500, 7);
        let res = adf_test(&y, None, AdfRegression::Constant).unwrap();
        assert!(!res.stationary, "statistic = {}", res.statistic);
    }

    #[test]
    fn adf_stationary_ar1() {
        let e = noise(800, 11);
        let mut y = vec![0.0; 800];
        for t in 1..800 {
            y[t] = 0.5 * y[t - 1] + e[t];
        }
        let res = adf_test(&y, None, AdfRegression::Constant).unwrap();
        assert!(res.stationary, "statistic = {}", res.statistic);
    }

    #[test]
    fn adf_trend_variant_handles_trend_stationary_series() {
        let e = noise(600, 13);
        let y: Vec<f64> = e
            .iter()
            .enumerate()
            .map(|(t, &n)| 0.05 * t as f64 + n)
            .collect();
        let res = adf_test(&y, None, AdfRegression::ConstantTrend).unwrap();
        assert!(res.stationary, "statistic = {}", res.statistic);
    }

    #[test]
    fn adf_rejects_short_input() {
        assert!(adf_test(&[1.0; 5], None, AdfRegression::Constant).is_err());
    }

    #[test]
    fn adf_respects_explicit_lags() {
        let y = noise(200, 17);
        let res = adf_test(&y, Some(3), AdfRegression::Constant).unwrap();
        assert_eq!(res.lags, 3);
    }

    #[test]
    fn kpss_accepts_stationary_noise() {
        let y = noise(500, 19);
        let res = kpss_test(&y, false).unwrap();
        assert!(!res.rejected, "statistic = {}", res.statistic);
    }

    #[test]
    fn kpss_rejects_random_walk() {
        let y = random_walk(500, 23);
        let res = kpss_test(&y, false).unwrap();
        assert!(res.rejected, "statistic = {}", res.statistic);
    }

    #[test]
    fn suggest_differencing_zero_for_stationary() {
        let y = noise(400, 29);
        assert_eq!(suggest_differencing(&y, 2).unwrap(), 0);
    }

    #[test]
    fn suggest_differencing_one_for_random_walk() {
        let y = random_walk(400, 31);
        assert_eq!(suggest_differencing(&y, 2).unwrap(), 1);
    }

    #[test]
    fn suggest_differencing_capped() {
        // Doubly integrated noise wants d = 2; with max_d = 1 we settle at 1.
        let mut y = random_walk(400, 37);
        let mut acc = 0.0;
        for v in y.iter_mut() {
            acc += *v;
            *v = acc;
        }
        assert_eq!(suggest_differencing(&y, 1).unwrap(), 1);
        assert_eq!(suggest_differencing(&y, 2).unwrap(), 2);
    }
}
