//! Streaming ingestion of raw agent polls into hourly aggregates.
//!
//! §5.1/§7.2: agents poll every instance "at a frequency of 15 minutes"
//! and "aggregation then takes place over the hour between the four
//! captured metrics". The batch path does this once per CSV with
//! [`crate::timeseries::TimeSeries::aggregate_mean`]; the resident engine
//! instead folds each point into its bucket **as it arrives** — including
//! late, out-of-order and duplicate-hour deliveries — so the hourly series
//! is always current without re-aggregating history.
//!
//! Reads are cursor-paged ([`IngestBuffer::read_page`]): a page of at most
//! [`MAX_PAGE`] points plus a `next_cursor` to continue from, so there is
//! no "series too large" failure mode no matter how long the buffer grows.

use crate::timeseries::{Frequency, TimeSeries};
use crate::{Result, SeriesError};

/// Hard cap on one [`IngestBuffer::read_page`] response. Larger requests
/// are clamped, never failed — the caller keeps paging via `next_cursor`.
pub const MAX_PAGE: usize = 4096;

/// Default page size when the caller passes `limit == 0`.
pub const DEFAULT_PAGE: usize = 512;

/// Upper bound on the bucket range one buffer may span (≈45 years of
/// hours). A timestamp that would grow the range past this is rejected
/// with a typed error instead of exhausting memory — the daemon treats it
/// as a corrupt agent clock.
pub const MAX_BUCKETS: usize = 400_000;

/// One aggregation bucket: the running sum and count of the finite
/// samples that landed in it.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Bucket {
    sum: f64,
    count: u32,
}

impl Bucket {
    /// The bucket's aggregate: the mean of its samples, or NaN (a
    /// repository gap) when no finite sample has arrived.
    fn mean(self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / f64::from(self.count)
        }
    }
}

/// Where an accepted point landed relative to the live (latest) bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointOrder {
    /// The point extended the series (landed in or past the live bucket).
    Fresh,
    /// The point arrived out of order and was folded into an earlier
    /// bucket in place.
    Late,
}

/// The ingest stage's per-workload accumulator: raw timestamped samples
/// fold into fixed-width buckets (hourly by default) in place.
///
/// ```
/// use dwcp_series::ingest::IngestBuffer;
///
/// let mut buf = IngestBuffer::hourly();
/// // Three 15-minute polls of hour 0, delivered out of order, then one
/// // poll of hour 1 that makes hour 0 complete.
/// buf.push(1800, 30.0).unwrap();
/// buf.push(0, 10.0).unwrap();
/// buf.push(900, 20.0).unwrap();
/// buf.push(3600, 99.0).unwrap();
/// let hourly = buf.hourly_series();
/// assert_eq!(hourly.values(), &[20.0]); // mean of the hour-0 polls
/// ```
#[derive(Debug, Clone)]
pub struct IngestBuffer {
    /// Seconds per aggregation bucket (3600 for the paper's hourly row).
    bucket_seconds: u64,
    /// Timestamp of bucket 0, aligned down to a bucket boundary. `None`
    /// until the first point arrives.
    origin: Option<u64>,
    /// Dense bucket array from `origin`; the last element is the live
    /// bucket still accumulating samples.
    buckets: Vec<Bucket>,
    /// Total accepted points.
    accepted: u64,
    /// Accepted points that arrived out of order (before the live bucket).
    late: u64,
    /// Non-finite samples (a missed poll reported as NaN): they extend the
    /// bucket range — the hour demonstrably passed — but contribute no
    /// data, so an all-missing hour aggregates to a NaN gap.
    missing: u64,
}

impl IngestBuffer {
    /// A buffer folding samples into buckets of `bucket_seconds`.
    pub fn new(bucket_seconds: u64) -> Result<IngestBuffer> {
        if bucket_seconds == 0 {
            return Err(SeriesError::InvalidParameter {
                context: "ingest bucket width must be positive",
            });
        }
        Ok(IngestBuffer {
            bucket_seconds,
            origin: None,
            buckets: Vec::new(),
            accepted: 0,
            late: 0,
            missing: 0,
        })
    }

    /// The paper's deployment shape: 15-minute polls folded into hourly
    /// buckets.
    pub fn hourly() -> IngestBuffer {
        IngestBuffer {
            bucket_seconds: 3_600,
            origin: None,
            buckets: Vec::new(),
            accepted: 0,
            late: 0,
            missing: 0,
        }
    }

    /// Seconds per aggregation bucket.
    pub fn bucket_seconds(&self) -> u64 {
        self.bucket_seconds
    }

    /// Timestamp of bucket 0 (aligned down), or `None` before any point.
    pub fn origin(&self) -> Option<u64> {
        self.origin
    }

    /// Total accepted points.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Accepted points that arrived out of order.
    pub fn late(&self) -> u64 {
        self.late
    }

    /// Non-finite (missed-poll) samples recorded.
    pub fn missing(&self) -> u64 {
        self.missing
    }

    /// Fold one agent poll into its bucket, in place. Out-of-order points
    /// are folded into their (earlier) bucket; points before the current
    /// origin re-base the buffer. Non-finite values mark the hour as
    /// observed but contribute no data. Returns where the point landed.
    pub fn push(&mut self, timestamp: u64, value: f64) -> Result<PointOrder> {
        let aligned = timestamp - timestamp % self.bucket_seconds;
        let origin = match self.origin {
            None => {
                self.origin = Some(aligned);
                self.buckets.push(Bucket::default());
                aligned
            }
            Some(origin) => origin,
        };
        let index = if aligned < origin {
            // Re-base: prepend empty buckets so the earlier point has a
            // slot, shifting bucket 0 back to the new alignment.
            let shift =
                usize::try_from((origin - aligned) / self.bucket_seconds).map_err(|_| {
                    SeriesError::InvalidParameter {
                        context: "ingest timestamp is too far before the buffer origin",
                    }
                })?;
            if self.buckets.len().saturating_add(shift) > MAX_BUCKETS {
                return Err(SeriesError::InvalidParameter {
                    context: "ingest buffer would exceed its bucket capacity (corrupt timestamp?)",
                });
            }
            self.buckets
                .splice(0..0, std::iter::repeat_n(Bucket::default(), shift));
            self.origin = Some(aligned);
            0
        } else {
            usize::try_from((aligned - origin) / self.bucket_seconds).map_err(|_| {
                SeriesError::InvalidParameter {
                    context: "ingest timestamp is too far past the buffer origin",
                }
            })?
        };
        if index >= MAX_BUCKETS {
            return Err(SeriesError::InvalidParameter {
                context: "ingest buffer would exceed its bucket capacity (corrupt timestamp?)",
            });
        }
        let order = if index + 1 < self.buckets.len() {
            PointOrder::Late
        } else {
            PointOrder::Fresh
        };
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, Bucket::default());
        }
        let Some(bucket) = self.buckets.get_mut(index) else {
            return Err(SeriesError::InvalidParameter {
                context: "ingest bucket slot missing after resize",
            });
        };
        if value.is_finite() {
            bucket.sum += value;
            bucket.count += 1;
        } else {
            self.missing += 1;
        }
        self.accepted += 1;
        if order == PointOrder::Late {
            self.late += 1;
        }
        Ok(order)
    }

    /// Number of **complete** buckets: every bucket strictly before the
    /// live (latest) one. The live bucket may still receive polls, so it
    /// is withheld from the aggregated series until a later bucket opens.
    pub fn complete_buckets(&self) -> usize {
        self.buckets.len().saturating_sub(1)
    }

    /// The aggregate value of complete bucket `index` (NaN when every
    /// sample of that bucket was missing), or `None` past the end.
    pub fn aggregate(&self, index: usize) -> Option<f64> {
        if index < self.complete_buckets() {
            self.buckets.get(index).map(|b| b.mean())
        } else {
            None
        }
    }

    /// The aggregated series over every complete bucket: one mean per
    /// bucket, NaN gaps where no finite sample arrived (the batch
    /// pipeline's interpolation stage fills those, exactly as it does for
    /// CSV gaps).
    pub fn aggregated_series(&self) -> TimeSeries {
        let n = self.complete_buckets();
        let values: Vec<f64> = self.buckets.iter().take(n).map(|b| b.mean()).collect();
        TimeSeries::new(
            values,
            frequency_of(self.bucket_seconds),
            self.origin.unwrap_or(0),
        )
    }

    /// [`IngestBuffer::aggregated_series`] under its deployment name: the
    /// hourly repository series the forecasting engine consumes.
    pub fn hourly_series(&self) -> TimeSeries {
        self.aggregated_series()
    }

    /// One page of the aggregated series, starting at aggregate index
    /// `cursor`. `limit == 0` means [`DEFAULT_PAGE`]; any limit is clamped
    /// to [`MAX_PAGE`]. A cursor at or past the end returns an empty page
    /// with no `next_cursor` — never an error, so readers can poll the
    /// tail of a live series.
    pub fn read_page(&self, cursor: usize, limit: usize) -> SeriesPage {
        let total = self.complete_buckets();
        let limit = match limit {
            0 => DEFAULT_PAGE,
            n => n.min(MAX_PAGE),
        };
        let start = cursor.min(total);
        let end = start.saturating_add(limit).min(total);
        let origin = self.origin.unwrap_or(0);
        let mut timestamps = Vec::with_capacity(end - start);
        let mut values = Vec::with_capacity(end - start);
        for (offset, bucket) in self.buckets.iter().enumerate().take(end).skip(start) {
            timestamps.push(origin + offset as u64 * self.bucket_seconds);
            values.push(bucket.mean());
        }
        SeriesPage {
            cursor: start,
            total,
            timestamps,
            values,
            next_cursor: (end < total).then_some(end),
        }
    }
}

/// One cursor-paged read of an [`IngestBuffer`]'s aggregated series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPage {
    /// Aggregate index of the first returned point.
    pub cursor: usize,
    /// Complete aggregates available at read time.
    pub total: usize,
    /// Epoch-seconds timestamp per returned point.
    pub timestamps: Vec<u64>,
    /// Aggregate value per returned point (NaN = gap).
    pub values: Vec<f64>,
    /// Cursor for the next page, or `None` when this page reached the end.
    pub next_cursor: Option<usize>,
}

/// The [`Frequency`] matching a bucket width, for the aggregated series'
/// metadata (unknown widths report as hourly, the repository cadence).
fn frequency_of(bucket_seconds: u64) -> Frequency {
    match bucket_seconds {
        900 => Frequency::QuarterHourly,
        86_400 => Frequency::Daily,
        604_800 => Frequency::Weekly,
        2_592_000 => Frequency::Monthly,
        _ => Frequency::Hourly,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_polls_fold_into_one_hourly_mean() {
        let mut buf = IngestBuffer::hourly();
        for (i, v) in [10.0, 20.0, 30.0, 40.0].iter().enumerate() {
            buf.push(i as u64 * 900, *v).unwrap();
        }
        // Hour 0 is still live: no complete bucket yet.
        assert_eq!(buf.complete_buckets(), 0);
        buf.push(3600, 7.0).unwrap();
        assert_eq!(buf.complete_buckets(), 1);
        assert_eq!(buf.hourly_series().values(), &[25.0]);
        assert_eq!(buf.hourly_series().frequency(), Frequency::Hourly);
    }

    #[test]
    fn out_of_order_points_fold_in_place() {
        let mut buf = IngestBuffer::hourly();
        assert_eq!(buf.push(3600, 50.0).unwrap(), PointOrder::Fresh);
        // A late hour-0 poll arrives after hour 1 opened.
        assert_eq!(buf.push(900, 10.0).unwrap(), PointOrder::Late);
        assert_eq!(buf.push(1800, 30.0).unwrap(), PointOrder::Late);
        assert_eq!(buf.late(), 2);
        assert_eq!(buf.hourly_series().values(), &[20.0]);
        // A second late poll revises the aggregate in place.
        buf.push(0, 20.0).unwrap();
        assert_eq!(buf.hourly_series().values(), &[20.0]);
    }

    #[test]
    fn points_before_origin_rebase_the_buffer() {
        let mut buf = IngestBuffer::hourly();
        buf.push(7200, 3.0).unwrap();
        buf.push(7200 + 3600, 4.0).unwrap();
        // An even earlier point re-bases: buckets shift back two hours.
        buf.push(0, 1.0).unwrap();
        assert_eq!(buf.origin(), Some(0));
        let series = buf.hourly_series();
        assert_eq!(series.origin(), 0);
        assert_eq!(series.len(), 3);
        assert_eq!(series.values()[0], 1.0);
        assert!(series.values()[1].is_nan()); // hour 1 never polled
        assert_eq!(series.values()[2], 3.0);
    }

    #[test]
    fn missed_polls_leave_nan_gaps() {
        let mut buf = IngestBuffer::hourly();
        buf.push(0, 5.0).unwrap();
        buf.push(3600, f64::NAN).unwrap(); // agent reported a miss
        buf.push(7200, 9.0).unwrap();
        assert_eq!(buf.missing(), 1);
        let series = buf.hourly_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series.values()[0], 5.0);
        assert!(series.values()[1].is_nan());
    }

    #[test]
    fn unaligned_timestamps_bucket_by_alignment() {
        let mut buf = IngestBuffer::hourly();
        buf.push(3599, 1.0).unwrap(); // still hour 0
        buf.push(3601, 3.0).unwrap(); // hour 1
        assert_eq!(buf.complete_buckets(), 1);
        assert_eq!(buf.hourly_series().values(), &[1.0]);
    }

    #[test]
    fn read_page_walks_the_series_with_cursors() {
        let mut buf = IngestBuffer::hourly();
        for h in 0..10u64 {
            buf.push(h * 3600, h as f64).unwrap();
        }
        // Hours 0..9 complete (hour 9 is live).
        let first = buf.read_page(0, 4);
        assert_eq!(first.cursor, 0);
        assert_eq!(first.total, 9);
        assert_eq!(first.values, vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(first.timestamps, vec![0, 3600, 7200, 10800]);
        assert_eq!(first.next_cursor, Some(4));
        let second = buf.read_page(4, 4);
        assert_eq!(second.values, vec![4.0, 5.0, 6.0, 7.0]);
        assert_eq!(second.next_cursor, Some(8));
        let last = buf.read_page(8, 4);
        assert_eq!(last.values, vec![8.0]);
        assert_eq!(last.next_cursor, None);
        // Past the end: empty page, no error, no next cursor.
        let past = buf.read_page(99, 4);
        assert!(past.values.is_empty());
        assert_eq!(past.next_cursor, None);
    }

    #[test]
    fn read_page_clamps_oversized_limits() {
        let mut buf = IngestBuffer::hourly();
        for h in 0..6u64 {
            buf.push(h * 3600, 1.0).unwrap();
        }
        let page = buf.read_page(0, usize::MAX);
        assert_eq!(page.values.len(), 5);
        let default = buf.read_page(0, 0);
        assert_eq!(default.values.len(), 5); // DEFAULT_PAGE > total
    }

    #[test]
    fn capacity_guard_rejects_corrupt_timestamps() {
        let mut buf = IngestBuffer::hourly();
        buf.push(0, 1.0).unwrap();
        let far = MAX_BUCKETS as u64 * 3600 + 3600;
        assert!(matches!(
            buf.push(far, 1.0),
            Err(SeriesError::InvalidParameter { .. })
        ));
        // The buffer is still usable after the rejection.
        buf.push(3600, 2.0).unwrap();
        assert_eq!(buf.complete_buckets(), 1);
    }

    #[test]
    fn matches_batch_aggregate_mean_on_in_order_data() {
        // The streaming fold must agree with the batch aggregation the
        // CSV path uses, for complete in-order hours.
        let raw: Vec<f64> = (0..48).map(|i| (i as f64 * 0.7).sin() * 10.0).collect();
        let batch = TimeSeries::new(raw.clone(), Frequency::QuarterHourly, 0)
            .aggregate_mean(4, Frequency::Hourly);
        let mut buf = IngestBuffer::hourly();
        for (i, v) in raw.iter().enumerate() {
            buf.push(i as u64 * 900, *v).unwrap();
        }
        let streamed = buf.hourly_series();
        // 12 full hours; the batch keeps all 12, the stream withholds the
        // live 12th until an hour-12 poll arrives.
        assert_eq!(streamed.len(), 11);
        for (s, b) in streamed.values().iter().zip(batch.values()) {
            assert_eq!(s, b);
        }
    }
}
