//! Autocorrelation (ACF) and partial autocorrelation (PACF) — the
//! correlograms of the paper's Figure 1(a).
//!
//! The planner uses these twice: once as a human-facing diagnostic (the
//! correlogram printout of the `figure1` binary) and once inside the model
//! grid generator, where "looking at where the data points intersect with
//! the shaded areas … gives an indication of a model that is likely to be
//! suitable, thereby reducing the thousands of potential models
//! considerably" (§6.3).

// lint: allow-file(indexing) — correlogram recursions; lag indices run over 0..=max_lag within buffers sized to the checked series length on entry

use crate::{Result, SeriesError};
use dwcp_math::fft::{fft_real, ifft, Complex};

/// Crossover length between the direct `O(n·k)` autocovariance sum and the
/// FFT-based `O(n log n)` path. Below this the two zero-padded transforms
/// cost more than the plain sum for the 30-lag diagnostic window the
/// planner uses; at or above it the FFT wins for any lag budget, and on the
/// fleet hot path (one correlogram per job) it is the difference between
/// the profile stage being visible in a flame graph or not.
const FFT_ACF_MIN_LEN: usize = 128;

/// Sample autocorrelation function up to `max_lag`.
///
/// ```
/// // A period-4 sawtooth autocorrelates perfectly at its own lag.
/// let y: Vec<f64> = (0..40).map(|t| (t % 4) as f64).collect();
/// let rho = dwcp_series::acf(&y, 8).unwrap();
/// assert_eq!(rho[0], 1.0);
/// assert!(rho[4] > 0.8);
/// ```
///
/// Uses the standard biased estimator (denominator `n`, numerator summed
/// over the overlapping window), which guarantees the sequence is a valid
/// autocorrelation (|ρ| ≤ 1 and positive semi-definite), as R's `acf` and
/// statsmodels do. `result[0]` is always 1.
///
/// Series of `FFT_ACF_MIN_LEN` (128) observations or more go through an
/// FFT-based autocovariance (zero-padded circular correlation); shorter
/// series use the direct sum. Both paths compute the same estimator and
/// agree to well within `1e-9` (property-tested in this module); the
/// direct path remains available as [`acf_direct`] for reference.
pub fn acf(values: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let n = values.len();
    let rho = if n >= FFT_ACF_MIN_LEN {
        acf_fft(values, max_lag)
    } else {
        acf_direct(values, max_lag)
    }?;
    // Sample autocorrelations (biased estimator) are bounded by lag 0; the
    // tolerance absorbs FFT round-off on the boundary.
    dwcp_math::invariant!(
        rho.iter().all(|r| r.abs() <= 1.0 + 1e-8),
        "acf produced a correlation outside [-1, 1]"
    );
    Ok(rho)
}

/// The direct-sum reference implementation of [`acf`]: `O(n·k)`, one pass
/// per lag. Used for short series and as the oracle the FFT path is
/// property-tested against.
pub fn acf_direct(values: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let n = values.len();
    let (max_lag, mean, c0) = acf_preamble(values, max_lag)?;
    if c0 == 0.0 {
        return Ok(constant_series_acf(max_lag));
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    for k in 1..=max_lag {
        let ck: f64 = (0..n - k)
            .map(|t| (values[t] - mean) * (values[t + k] - mean))
            .sum::<f64>()
            / n as f64;
        out.push(ck / c0);
    }
    Ok(out)
}

/// FFT autocovariance: centre, zero-pad to a power of two ≥ 2n (so the
/// circular correlation is linear for every lag up to n−1), transform,
/// take the power spectrum, and inverse-transform. By the Wiener-Khinchin
/// theorem the result's leading entries are exactly the biased
/// autocovariances the direct sum computes.
fn acf_fft(values: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let n = values.len();
    let (max_lag, mean, c0) = acf_preamble(values, max_lag)?;
    if c0 == 0.0 {
        return Ok(constant_series_acf(max_lag));
    }
    let m = (2 * n).next_power_of_two();
    let mut padded = vec![0.0; m];
    for (slot, v) in padded.iter_mut().zip(values) {
        *slot = v - mean;
    }
    let spectrum = fft_real(&padded);
    let power: Vec<Complex> = spectrum
        .iter()
        .map(|c| Complex::new(c.norm_sq(), 0.0))
        .collect();
    // `ifft` divides by m, so `autocov[k]` is Σₜ x̃ₜ x̃ₜ₊ₖ directly.
    let autocov = ifft(&power);
    let c0_fft = autocov[0].re / n as f64;
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    for k in 1..=max_lag {
        out.push((autocov[k].re / n as f64) / c0_fft);
    }
    Ok(out)
}

/// Shared validation: length/finiteness checks, lag clamping, mean and the
/// lag-0 autocovariance (which decides the constant-series degenerate
/// case).
fn acf_preamble(values: &[f64], max_lag: usize) -> Result<(usize, f64, f64)> {
    let n = values.len();
    if n < 2 {
        return Err(SeriesError::TooShort { needed: 2, got: n });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SeriesError::NonFinite);
    }
    let max_lag = max_lag.min(n - 1);
    let mean = values.iter().sum::<f64>() / n as f64;
    let c0: f64 = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
    Ok((max_lag, mean, c0))
}

/// A constant series is perfectly correlated with itself at lag 0 and has
/// undefined correlation elsewhere; define it as 0 so the model grid
/// degrades to white-noise models.
fn constant_series_acf(max_lag: usize) -> Vec<f64> {
    let mut out = vec![0.0; max_lag + 1];
    out[0] = 1.0;
    out
}

/// Sample partial autocorrelation function up to `max_lag`, computed with
/// the Durbin-Levinson recursion on the sample ACF.
///
/// `result[0]` is 1 by convention; `result[k]` for `k ≥ 1` is the partial
/// autocorrelation at lag `k`.
pub fn pacf(values: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    let n = values.len();
    if n < 2 {
        return Err(SeriesError::TooShort { needed: 2, got: n });
    }
    let max_lag = max_lag.min(n - 1);
    let rho = acf(values, max_lag)?;
    let mut out = Vec::with_capacity(max_lag + 1);
    out.push(1.0);
    if max_lag == 0 {
        return Ok(out);
    }

    // Durbin-Levinson: phi[k][k] is the PACF at lag k.
    let mut phi_prev = vec![0.0; max_lag + 1];
    let mut phi_curr = vec![0.0; max_lag + 1];
    phi_prev[1] = rho[1];
    out.push(rho[1]);
    for k in 2..=max_lag {
        let mut num = rho[k];
        let mut den = 1.0;
        for j in 1..k {
            num -= phi_prev[j] * rho[k - j];
            den -= phi_prev[j] * rho[j];
        }
        let pk = if den.abs() < 1e-12 { 0.0 } else { num / den };
        phi_curr[k] = pk;
        for j in 1..k {
            phi_curr[j] = phi_prev[j] - pk * phi_prev[k - j];
        }
        phi_prev[..=k].copy_from_slice(&phi_curr[..=k]);
        out.push(pk.clamp(-1.0, 1.0));
    }
    // Partial autocorrelations are clamped above; lag 1 is the raw ACF,
    // bounded up to FFT round-off.
    dwcp_math::invariant!(
        out.iter().all(|v| v.abs() <= 1.0 + 1e-8),
        "pacf produced a value outside [-1, 1]"
    );
    Ok(out)
}

/// A computed correlogram: ACF, PACF and the white-noise significance band.
#[derive(Debug, Clone)]
pub struct Correlogram {
    /// ACF values, `acf[0] = 1`.
    pub acf: Vec<f64>,
    /// PACF values, `pacf[0] = 1`.
    pub pacf: Vec<f64>,
    /// Two-sided 95 % white-noise band `±1.96/√n` (the shaded area of
    /// Figure 1(a)).
    pub significance: f64,
    /// Number of observations the correlogram was computed from.
    pub n: usize,
}

impl Correlogram {
    /// Compute ACF and PACF over `max_lag` lags.
    pub fn compute(values: &[f64], max_lag: usize) -> Result<Correlogram> {
        let acf_v = acf(values, max_lag)?;
        let pacf_v = pacf(values, max_lag)?;
        Ok(Correlogram {
            acf: acf_v,
            pacf: pacf_v,
            significance: 1.96 / (values.len() as f64).sqrt(),
            n: values.len(),
        })
    }

    /// Lags (≥ 1) whose ACF pokes outside the significance band.
    pub fn significant_acf_lags(&self) -> Vec<usize> {
        self.acf
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &v)| v.abs() > self.significance)
            .map(|(i, _)| i)
            .collect()
    }

    /// Lags (≥ 1) whose PACF pokes outside the significance band.
    pub fn significant_pacf_lags(&self) -> Vec<usize> {
        self.pacf
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, &v)| v.abs() > self.significance)
            .map(|(i, _)| i)
            .collect()
    }

    /// The largest significant PACF lag — the classical cut-off heuristic
    /// for the AR order `p`.
    pub fn suggested_ar_order(&self, cap: usize) -> usize {
        self.significant_pacf_lags()
            .into_iter()
            .filter(|&l| l <= cap)
            .max()
            .unwrap_or(0)
    }

    /// The largest significant ACF lag below `cap` — the classical cut-off
    /// heuristic for the MA order `q`.
    pub fn suggested_ma_order(&self, cap: usize) -> usize {
        self.significant_acf_lags()
            .into_iter()
            .filter(|&l| l <= cap)
            .max()
            .unwrap_or(0)
    }
}

/// Ljung-Box portmanteau statistic for residual whiteness over `max_lag`
/// lags, with `fitted_params` subtracted from the degrees of freedom.
///
/// Returns `(statistic, p_value)`. Small p-values reject "residuals are
/// white noise" — used to sanity-check a fitted champion model.
pub fn ljung_box(residuals: &[f64], max_lag: usize, fitted_params: usize) -> Result<(f64, f64)> {
    let n = residuals.len();
    if n <= max_lag + 1 {
        return Err(SeriesError::TooShort {
            needed: max_lag + 2,
            got: n,
        });
    }
    let rho = acf(residuals, max_lag)?;
    let nf = n as f64;
    let q = nf
        * (nf + 2.0)
        * (1..=max_lag)
            .map(|k| rho[k] * rho[k] / (nf - k as f64))
            .sum::<f64>();
    let dof = max_lag.saturating_sub(fitted_params).max(1);
    let p = 1.0 - dwcp_math::dist::chi_squared_cdf(q, dof);
    Ok((q, p))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG noise so tests are reproducible without rand.
    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let e = noise(n, seed);
        let mut y = vec![0.0; n];
        for t in 1..n {
            y[t] = phi * y[t - 1] + e[t];
        }
        y
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let y = noise(100, 7);
        let a = acf(&y, 10).unwrap();
        assert_eq!(a[0], 1.0);
    }

    #[test]
    fn acf_bounded_by_one() {
        let y = ar1(500, 0.9, 42);
        let a = acf(&y, 50).unwrap();
        for v in a {
            assert!(v.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn acf_of_ar1_decays_geometrically() {
        let y = ar1(20_000, 0.7, 1);
        let a = acf(&y, 5).unwrap();
        for k in 1..=5 {
            let expected = 0.7f64.powi(k as i32);
            assert!(
                (a[k] - expected).abs() < 0.05,
                "lag {k}: {} vs {expected}",
                a[k]
            );
        }
    }

    #[test]
    fn acf_of_periodic_signal_peaks_at_period() {
        let y: Vec<f64> = (0..240)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin())
            .collect();
        let a = acf(&y, 30).unwrap();
        assert!(a[24] > 0.8, "acf[24] = {}", a[24]);
        assert!(a[12] < -0.8, "acf[12] = {}", a[12]);
    }

    #[test]
    fn acf_constant_series_is_defined() {
        let y = vec![5.0; 50];
        let a = acf(&y, 5).unwrap();
        assert_eq!(a[0], 1.0);
        assert!(a[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn fft_and_direct_paths_agree_across_crossover() {
        // Straddle FFT_ACF_MIN_LEN so both dispatch arms are exercised and
        // compared against the direct sum explicitly.
        for n in [64, 127, 128, 129, 500, 1008] {
            let y = ar1(n, 0.85, n as u64);
            let fast = acf(&y, 40).unwrap();
            let slow = acf_direct(&y, 40).unwrap();
            assert_eq!(fast.len(), slow.len());
            for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert!((a - b).abs() < 1e-12, "n={n} lag {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fft_path_handles_constant_series() {
        let y = vec![3.25; 256];
        let a = acf(&y, 10).unwrap();
        assert_eq!(a[0], 1.0);
        assert!(a[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn acf_rejects_nan() {
        let y = vec![1.0, f64::NAN, 3.0];
        assert!(matches!(acf(&y, 2), Err(SeriesError::NonFinite)));
    }

    #[test]
    fn pacf_of_ar1_cuts_off_after_lag_one() {
        let y = ar1(20_000, 0.6, 3);
        let p = pacf(&y, 6).unwrap();
        assert!((p[1] - 0.6).abs() < 0.05, "pacf[1] = {}", p[1]);
        for k in 2..=6 {
            assert!(p[k].abs() < 0.05, "pacf[{k}] = {}", p[k]);
        }
    }

    #[test]
    fn pacf_of_ar2_cuts_off_after_lag_two() {
        let e = noise(20_000, 9);
        let mut y = vec![0.0; 20_000];
        for t in 2..y.len() {
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + e[t];
        }
        let p = pacf(&y, 6).unwrap();
        assert!(p[2] > 0.2, "pacf[2] = {}", p[2]);
        for k in 3..=6 {
            assert!(p[k].abs() < 0.05, "pacf[{k}] = {}", p[k]);
        }
    }

    #[test]
    fn correlogram_significance_band_matches_formula() {
        let y = noise(400, 11);
        let c = Correlogram::compute(&y, 20).unwrap();
        assert!((c.significance - 1.96 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn correlogram_of_white_noise_mostly_insignificant() {
        let y = noise(1_000, 13);
        let c = Correlogram::compute(&y, 20).unwrap();
        // With a 95 % band roughly one lag in twenty may fire.
        assert!(c.significant_acf_lags().len() <= 3);
    }

    #[test]
    fn suggested_orders_for_ar1_signal() {
        let y = ar1(5_000, 0.8, 17);
        let c = Correlogram::compute(&y, 30).unwrap();
        let p = c.suggested_ar_order(5);
        assert!(p >= 1, "AR order {p}");
    }

    #[test]
    fn ljung_box_accepts_white_noise_rejects_ar() {
        let white = noise(500, 19);
        let (_, p_white) = ljung_box(&white, 10, 0).unwrap();
        assert!(p_white > 0.01, "white noise p = {p_white}");

        let correlated = ar1(500, 0.8, 23);
        let (_, p_ar) = ljung_box(&correlated, 10, 0).unwrap();
        assert!(p_ar < 0.01, "AR(1) p = {p_ar}");
    }

    #[test]
    fn ljung_box_needs_enough_data() {
        assert!(ljung_box(&[1.0, 2.0, 3.0], 10, 0).is_err());
    }
}
