//! Forecast accuracy metrics.
//!
//! §7: "We tested the accuracy using three methods, which are Root Means
//! Squared Error (RMSE), Mean Absolute Percentage Error (MAPE) and Mean
//! Absolute Percentage Accuracy (MAPA)." RMSE is the model-selection
//! criterion throughout the paper ("the model with the best RMSE is the
//! most accurate"); MAPE/MAPA appear in the result tables.

use crate::{Result, SeriesError};
use serde::{Deserialize, Serialize};

/// The full accuracy report for a forecast against actuals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accuracy {
    /// Root mean squared error — the paper's champion-selection criterion.
    pub rmse: f64,
    /// Mean absolute error.
    pub mae: f64,
    /// Mean error (bias; signed).
    pub me: f64,
    /// Mean absolute percentage error, in percent. Observations where the
    /// actual is zero are skipped (the standard convention; the paper's
    /// OLAP IOPS MAPEs blow into the thousands exactly because of
    /// near-zero actuals).
    pub mape: f64,
    /// Mean absolute percentage accuracy, in percent: `100 − MAPE` floored
    /// at zero — the paper reports this alongside MAPE.
    pub mapa: f64,
    /// Symmetric MAPE, in percent (robust companion to MAPE).
    pub smape: f64,
    /// Number of forecast points compared.
    pub n: usize,
}

impl Accuracy {
    /// Compare `forecast` against `actual` (equal, non-zero lengths).
    pub fn compute(actual: &[f64], forecast: &[f64]) -> Result<Accuracy> {
        if actual.len() != forecast.len() {
            return Err(SeriesError::InvalidParameter {
                context: "Accuracy::compute: length mismatch",
            });
        }
        if actual.is_empty() {
            return Err(SeriesError::TooShort { needed: 1, got: 0 });
        }
        if actual.iter().chain(forecast).any(|v| !v.is_finite()) {
            return Err(SeriesError::NonFinite);
        }
        let n = actual.len();
        let mut se = 0.0;
        let mut ae = 0.0;
        let mut e = 0.0;
        let mut ape = 0.0;
        let mut ape_n = 0usize;
        let mut sape = 0.0;
        let mut sape_n = 0usize;
        for (&a, &f) in actual.iter().zip(forecast) {
            let err = f - a;
            se += err * err;
            ae += err.abs();
            e += err;
            if a != 0.0 {
                ape += (err / a).abs();
                ape_n += 1;
            }
            let denom = (a.abs() + f.abs()) / 2.0;
            if denom != 0.0 {
                sape += err.abs() / denom;
                sape_n += 1;
            }
        }
        let nf = n as f64;
        let mape = if ape_n == 0 {
            0.0
        } else {
            100.0 * ape / ape_n as f64
        };
        let accuracy = Accuracy {
            rmse: (se / nf).sqrt(),
            mae: ae / nf,
            me: e / nf,
            mape,
            mapa: (100.0 - mape).max(0.0),
            smape: if sape_n == 0 {
                0.0
            } else {
                100.0 * sape / sape_n as f64
            },
            n,
        };
        // Inputs were checked finite above, so every error metric must come
        // out finite and the magnitude metrics non-negative.
        dwcp_math::invariant!(
            accuracy.rmse.is_finite()
                && accuracy.rmse >= 0.0
                && accuracy.mae.is_finite()
                && accuracy.mae >= 0.0
                && accuracy.mape.is_finite()
                && accuracy.mape >= 0.0
                && accuracy.me.is_finite()
                && accuracy.smape.is_finite(),
            "Accuracy::compute produced a non-finite or negative metric: {accuracy:?}"
        );
        Ok(accuracy)
    }
}

/// Root mean squared error alone (hot path of the grid search — avoids
/// computing the full report for thousands of candidate models).
pub fn rmse(actual: &[f64], forecast: &[f64]) -> Result<f64> {
    if actual.len() != forecast.len() {
        return Err(SeriesError::InvalidParameter {
            context: "rmse: length mismatch",
        });
    }
    if actual.is_empty() {
        return Err(SeriesError::TooShort { needed: 1, got: 0 });
    }
    let mut se = 0.0;
    for (&a, &f) in actual.iter().zip(forecast) {
        let err = f - a;
        if !err.is_finite() {
            return Err(SeriesError::NonFinite);
        }
        se += err * err;
    }
    let rmse = (se / actual.len() as f64).sqrt();
    // Every per-point error was checked finite, so the aggregate must be a
    // finite non-negative number — the champion comparisons depend on it.
    dwcp_math::invariant!(
        rmse.is_finite() && rmse >= 0.0,
        "rmse produced a non-finite or negative value: {rmse}"
    );
    Ok(rmse)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_forecast_scores_zero_error() {
        let a = [1.0, 2.0, 3.0];
        let acc = Accuracy::compute(&a, &a).unwrap();
        assert_eq!(acc.rmse, 0.0);
        assert_eq!(acc.mae, 0.0);
        assert_eq!(acc.mape, 0.0);
        assert_eq!(acc.mapa, 100.0);
        assert_eq!(acc.smape, 0.0);
    }

    #[test]
    fn rmse_known_value() {
        // Errors: 1, -1 → mse = 1 → rmse = 1.
        let acc = Accuracy::compute(&[0.0, 2.0], &[1.0, 1.0]).unwrap();
        assert!((acc.rmse - 1.0).abs() < 1e-12);
        assert!((acc.mae - 1.0).abs() < 1e-12);
        assert!((acc.me - 0.0).abs() < 1e-12);
    }

    #[test]
    fn mape_known_value() {
        // actual 100, forecast 110 → 10 % APE; actual 200, forecast 180 → 10 %.
        let acc = Accuracy::compute(&[100.0, 200.0], &[110.0, 180.0]).unwrap();
        assert!((acc.mape - 10.0).abs() < 1e-9);
        assert!((acc.mapa - 90.0).abs() < 1e-9);
    }

    #[test]
    fn mape_skips_zero_actuals() {
        let acc = Accuracy::compute(&[0.0, 100.0], &[5.0, 110.0]).unwrap();
        // Only the second point contributes: 10 %.
        assert!((acc.mape - 10.0).abs() < 1e-9);
    }

    #[test]
    fn mapa_floors_at_zero_for_huge_errors() {
        // The paper's OLAP IOPS rows report MAPEs of 950 %+ — MAPA floors at 0.
        let acc = Accuracy::compute(&[1.0], &[100.0]).unwrap();
        assert!(acc.mape > 100.0);
        assert_eq!(acc.mapa, 0.0);
    }

    #[test]
    fn smape_is_symmetric() {
        let a = Accuracy::compute(&[100.0], &[150.0]).unwrap();
        let b = Accuracy::compute(&[150.0], &[100.0]).unwrap();
        assert!((a.smape - b.smape).abs() < 1e-12);
    }

    #[test]
    fn bias_sign_follows_overforecasting() {
        let acc = Accuracy::compute(&[10.0, 10.0], &[12.0, 12.0]).unwrap();
        assert!(acc.me > 0.0);
    }

    #[test]
    fn rejects_mismatched_and_empty_inputs() {
        assert!(Accuracy::compute(&[1.0], &[1.0, 2.0]).is_err());
        assert!(Accuracy::compute(&[], &[]).is_err());
        assert!(Accuracy::compute(&[f64::NAN], &[1.0]).is_err());
    }

    #[test]
    fn standalone_rmse_matches_report() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let f = [2.0, 2.0, 4.5, 0.0, 5.5];
        let fast = rmse(&a, &f).unwrap();
        let full = Accuracy::compute(&a, &f).unwrap();
        assert!((fast - full.rmse).abs() < 1e-12);
    }
}
