//! Rolling-window statistics and robust outlier scores.
//!
//! Used by the planner's shock detector: a backup spike is "an observation
//! far above its local context", which needs rolling means/deviations, and
//! a robust (median-based) alternative so the spikes themselves do not
//! inflate the yardstick they are measured against.

// lint: allow-file(indexing) — centred-window scans; window edges are clamped to the slice bounds with saturating/min arithmetic before each access

use crate::{Result, SeriesError};

/// Rolling mean over a centred window of `window` observations (odd
/// windows are exact; even windows lean one observation to the left).
/// Edges use the available partial window.
pub fn rolling_mean(values: &[f64], window: usize) -> Result<Vec<f64>> {
    if window == 0 {
        return Err(SeriesError::InvalidParameter {
            context: "rolling_mean: window must be positive",
        });
    }
    let n = values.len();
    let half_left = window / 2;
    let half_right = window - half_left - 1;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_left);
        let hi = (i + half_right + 1).min(n);
        let slice = &values[lo..hi];
        out.push(slice.iter().sum::<f64>() / slice.len() as f64);
    }
    Ok(out)
}

/// Rolling population standard deviation with the same window convention.
pub fn rolling_std(values: &[f64], window: usize) -> Result<Vec<f64>> {
    if window < 2 {
        return Err(SeriesError::InvalidParameter {
            context: "rolling_std: window must be at least 2",
        });
    }
    let n = values.len();
    let half_left = window / 2;
    let half_right = window - half_left - 1;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let lo = i.saturating_sub(half_left);
        let hi = (i + half_right + 1).min(n);
        let slice = &values[lo..hi];
        let mean = slice.iter().sum::<f64>() / slice.len() as f64;
        let var = slice.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / slice.len() as f64;
        out.push(var.sqrt());
    }
    Ok(out)
}

/// Median of a slice (average of the middle two for even lengths).
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| dwcp_math::total_cmp_f64(*a, *b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Median absolute deviation, scaled by 1.4826 to be consistent with the
/// standard deviation under normality.
pub fn mad(values: &[f64]) -> f64 {
    let m = median(values);
    let deviations: Vec<f64> = values.iter().map(|v| (v - m).abs()).collect();
    1.4826 * median(&deviations)
}

/// Robust z-scores: `(x − median) / MAD`. When more than half the sample
/// is identical the MAD degenerates to zero, so the scale falls back to
/// the standard deviation; a genuinely constant series scores all zeros.
pub fn robust_z_scores(values: &[f64]) -> Vec<f64> {
    let m = median(values);
    let mut scale = mad(values);
    if scale < 1e-12 {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        scale = (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
    }
    if scale < 1e-12 {
        return vec![0.0; values.len()];
    }
    values.iter().map(|v| (v - m) / scale).collect()
}

/// Indices whose robust z-score exceeds `threshold` (positive spikes
/// only — capacity shocks add load; dips are a different animal).
pub fn spike_indices(values: &[f64], threshold: f64) -> Vec<usize> {
    robust_z_scores(values)
        .iter()
        .enumerate()
        .filter(|(_, &z)| z > threshold)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_mean_of_constant_is_constant() {
        let out = rolling_mean(&[5.0; 10], 3).unwrap();
        assert!(out.iter().all(|&v| (v - 5.0).abs() < 1e-12));
    }

    #[test]
    fn rolling_mean_centred_window() {
        let out = rolling_mean(&[1.0, 2.0, 3.0, 4.0, 5.0], 3).unwrap();
        assert_eq!(out[2], 3.0);
        // Edges use partial windows: first = mean(1,2).
        assert_eq!(out[0], 1.5);
        assert_eq!(out[4], 4.5);
    }

    #[test]
    fn rolling_std_flags_local_variability() {
        let mut y = vec![1.0; 21];
        y[10] = 11.0;
        let out = rolling_std(&y, 5).unwrap();
        assert!(out[10] > out[0]);
        assert!(out[2] < 1e-12);
    }

    #[test]
    fn zero_window_rejected() {
        assert!(rolling_mean(&[1.0], 0).is_err());
        assert!(rolling_std(&[1.0, 2.0], 1).is_err());
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn mad_matches_std_for_normalish_data() {
        // Symmetric triangular-ish sample: MAD×1.4826 ≈ std within a factor.
        let y: Vec<f64> = (-50..=50).map(|i| i as f64 / 10.0).collect();
        let std = {
            let m = y.iter().sum::<f64>() / y.len() as f64;
            (y.iter().map(|v| (v - m).powi(2)).sum::<f64>() / y.len() as f64).sqrt()
        };
        let robust = mad(&y);
        assert!((robust / std - 1.0).abs() < 0.35, "{robust} vs {std}");
    }

    #[test]
    fn robust_z_scores_resist_the_outlier_itself() {
        // Classical z-score of a single huge spike is diluted by the
        // spike's own effect on the std; the MAD-based score is not.
        let y: Vec<f64> = (0..20)
            .map(|i| 10.0 + ((i * 7 % 5) as f64 - 2.0) * 0.1)
            .chain(std::iter::once(100.0))
            .collect();
        let z = robust_z_scores(&y);
        assert!(z[20] > 8.0, "spike score {}", z[20]);
        assert!(z[0].abs() < 3.0);
    }

    #[test]
    fn degenerate_mad_falls_back_to_std() {
        // >50% identical values: MAD = 0, std still sees the spike.
        let mut y = vec![10.0; 20];
        y[7] = 100.0;
        let z = robust_z_scores(&y);
        assert!(z[7] > 4.0, "spike score {}", z[7]);
        assert!(z[0].abs() < 1.0);
    }

    #[test]
    fn spike_indices_positive_only() {
        let mut y = vec![0.0, 1.0, -1.0, 0.5, -0.5, 0.0, 1.0, -1.0];
        y.push(50.0);
        y.push(-50.0);
        let spikes = spike_indices(&y, 5.0);
        assert_eq!(spikes, vec![8]);
    }

    #[test]
    fn constant_series_has_no_spikes() {
        assert!(spike_indices(&[3.0; 30], 3.0).is_empty());
        assert!(robust_z_scores(&[3.0; 30]).iter().all(|&z| z == 0.0));
    }
}
