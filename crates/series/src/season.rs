//! Seasonality detection: periodogram peaks confirmed by the ACF.
//!
//! §4.4: "In our solution we apply Fourier analysis if we detect time series
//! data with multiple seasonality." The detector below is what feeds that
//! decision: it extracts candidate periods from the FFT periodogram
//! (frequency domain) and keeps those whose seasonal-lag autocorrelation
//! confirms a genuine cycle (time domain).

use crate::acf::acf;
use crate::{Result, SeriesError};
use dwcp_math::fft::periodogram;

/// One detected seasonal period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedSeason {
    /// Period length in observations.
    pub period: usize,
    /// Share of periodogram power at this frequency (0..1).
    pub power_share: f64,
    /// Autocorrelation at the seasonal lag.
    pub acf_at_lag: f64,
}

/// The detector's overall report for a series.
#[derive(Debug, Clone)]
pub struct SeasonalityReport {
    /// Confirmed periods, strongest first.
    pub seasons: Vec<DetectedSeason>,
}

impl SeasonalityReport {
    /// The dominant period, if any cycle was confirmed.
    pub fn primary(&self) -> Option<usize> {
        self.seasons.first().map(|s| s.period)
    }

    /// Whether more than one distinct cycle was confirmed — the paper's
    /// trigger for adding Fourier terms to SARIMAX.
    pub fn is_multi_seasonal(&self) -> bool {
        self.seasons.len() > 1
    }

    /// All confirmed periods, strongest first.
    pub fn periods(&self) -> Vec<usize> {
        self.seasons.iter().map(|s| s.period).collect()
    }
}

/// Detect seasonal periods in `values`.
///
/// * `max_period` caps the period length considered (a period must repeat
///   at least twice inside the series to be observable, so it is also
///   capped at `n / 2`).
/// * A candidate needs at least 2 % of total periodogram power *and* an
///   ACF above 0.1 at its lag to be confirmed; harmonics of an already
///   confirmed period are folded into it.
pub fn detect_seasonality(values: &[f64], max_period: usize) -> Result<SeasonalityReport> {
    let n = values.len();
    if n < 16 {
        return Err(SeriesError::TooShort { needed: 16, got: n });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SeriesError::NonFinite);
    }
    // Detrend linearly first: trend power leaks into low frequencies and
    // masquerades as long seasons.
    let detrended = detrend(values);
    let pg = periodogram(&detrended);
    let total_power: f64 = pg.iter().map(|p| p.1).sum();
    if total_power <= 0.0 {
        return Ok(SeasonalityReport { seasons: vec![] });
    }
    let max_period = max_period.min(n / 2);
    let max_lag = max_period.min(n - 1);
    let rho = acf(&detrended, max_lag)?;

    // Rank periodogram bins by power.
    let mut bins: Vec<(f64, f64)> = pg;
    bins.sort_by(|a, b| dwcp_math::total_cmp_f64(b.1, a.1));

    let mut seasons: Vec<DetectedSeason> = Vec::new();
    for (freq, power) in bins.into_iter().take(24) {
        let share = power / total_power;
        if share < 0.02 {
            break; // sorted by power: everything after is weaker
        }
        let period_f = 1.0 / freq;
        let period = period_f.round() as usize;
        if period < 2 || period > max_period {
            continue;
        }
        // Fold duplicates: adjacent periodogram bins of one cycle (spectral
        // leakage) round to nearly the same period. Genuine harmonics
        // (period/2, period/3, …) are instead rejected by the ACF check
        // below — a real sub-cycle has high ACF at its own lag, leakage
        // does not — so daily-inside-weekly multi-seasonality survives.
        if seasons.iter().any(|s| same_cycle(s.period, period)) {
            continue;
        }
        let acf_lag = rho.get(period).copied().unwrap_or(0.0);
        if acf_lag < 0.1 {
            continue;
        }
        seasons.push(DetectedSeason {
            period,
            power_share: share,
            acf_at_lag: acf_lag,
        });
    }
    Ok(SeasonalityReport { seasons })
}

/// Whether two rounded periods are the same cycle smeared across adjacent
/// periodogram bins (tolerance widens with period length, since bin spacing
/// in period units grows quadratically).
fn same_cycle(a: usize, b: usize) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    hi.abs_diff(lo) <= 1 + lo / 10
}

/// Remove the least-squares line from a series.
fn detrend(values: &[f64]) -> Vec<f64> {
    let n = values.len() as f64;
    let mean_t = (n - 1.0) / 2.0;
    let mean_y = values.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (t, &y) in values.iter().enumerate() {
        let dt = t as f64 - mean_t;
        sxy += dt * (y - mean_y);
        sxx += dt * dt;
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    values
        .iter()
        .enumerate()
        .map(|(t, &y)| y - mean_y - slope * (t as f64 - mean_t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_cycle(n: usize, period: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|t| amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn detects_single_daily_season() {
        let y: Vec<f64> = daily_cycle(720, 24.0, 10.0)
            .iter()
            .map(|v| 100.0 + v)
            .collect();
        let report = detect_seasonality(&y, 200).unwrap();
        assert_eq!(report.primary(), Some(24));
        assert!(!report.is_multi_seasonal());
    }

    #[test]
    fn detects_multiple_seasonality() {
        // Daily (24) + weekly (168) over 5 weeks of hourly data.
        let n = 840;
        let y: Vec<f64> = (0..n)
            .map(|t| {
                let t = t as f64;
                100.0
                    + 10.0 * (2.0 * std::f64::consts::PI * t / 24.0).sin()
                    + 8.0 * (2.0 * std::f64::consts::PI * t / 168.0).sin()
            })
            .collect();
        let report = detect_seasonality(&y, 200).unwrap();
        assert!(report.is_multi_seasonal(), "{:?}", report.seasons);
        let periods = report.periods();
        assert!(periods.contains(&24), "{periods:?}");
        assert!(
            periods.iter().any(|&p| (p as i64 - 168).abs() <= 2),
            "{periods:?}"
        );
    }

    #[test]
    fn trend_alone_is_not_seasonal() {
        let y: Vec<f64> = (0..300).map(|t| 5.0 + 0.5 * t as f64).collect();
        let report = detect_seasonality(&y, 100).unwrap();
        assert!(report.seasons.is_empty(), "{:?}", report.seasons);
    }

    #[test]
    fn seasonality_survives_superimposed_trend() {
        let y: Vec<f64> = (0..720)
            .map(|t| {
                let t_f = t as f64;
                50.0 + 0.3 * t_f + 15.0 * (2.0 * std::f64::consts::PI * t_f / 24.0).sin()
            })
            .collect();
        let report = detect_seasonality(&y, 200).unwrap();
        assert_eq!(report.primary(), Some(24));
    }

    #[test]
    fn noise_produces_no_confirmed_season() {
        let mut state = 99u64;
        let y: Vec<f64> = (0..500)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                100.0 + ((state >> 33) as f64 / (1u64 << 31) as f64)
            })
            .collect();
        let report = detect_seasonality(&y, 100).unwrap();
        // White noise may occasionally put 2 % of power somewhere, but the
        // ACF confirmation should keep the list empty or near-empty.
        assert!(report.seasons.len() <= 1, "{:?}", report.seasons);
    }

    #[test]
    fn short_series_is_rejected() {
        assert!(detect_seasonality(&[1.0; 8], 4).is_err());
    }

    #[test]
    fn max_period_is_respected() {
        let y: Vec<f64> = daily_cycle(400, 100.0, 5.0)
            .iter()
            .map(|v| 10.0 + v)
            .collect();
        let report = detect_seasonality(&y, 50).unwrap();
        assert!(report.seasons.iter().all(|s| s.period <= 50));
    }

    #[test]
    fn harmonics_fold_into_fundamental() {
        // A square-ish wave has strong odd harmonics; expect one confirmed
        // season at 24, not extra ones at 8 (24/3) reported separately…
        let y: Vec<f64> = (0..720)
            .map(|t| {
                let phase = (t % 24) as f64 / 24.0;
                if phase < 0.5 {
                    110.0
                } else {
                    90.0
                }
            })
            .collect();
        let report = detect_seasonality(&y, 200).unwrap();
        assert_eq!(report.primary(), Some(24), "{:?}", report.seasons);
        // harmonic at 8 divides 24 → folded
        assert!(!report.periods().contains(&8), "{:?}", report.seasons);
    }
}
