//! Differencing and its exact inverse.
//!
//! ARIMA's `d` and `D` parameters mean: difference the series (regular lag
//! 1, seasonal lag `s`) until stationary, fit an ARMA on what remains, then
//! *integrate* forecasts back to the original scale. The integration step
//! needs the trailing values of each intermediate differencing stage, so
//! [`Differencer`] records them.

use crate::{Result, SeriesError};

/// A differencing specification: `d` regular differences followed by `D`
/// seasonal differences at period `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Differencer {
    /// Regular (lag-1) differencing order.
    pub d: usize,
    /// Seasonal differencing order.
    pub seasonal_d: usize,
    /// Seasonal period (ignored when `seasonal_d == 0`).
    pub period: usize,
}

/// The output of applying a [`Differencer`]: the differenced series plus
/// the state needed to undo it.
#[derive(Debug, Clone)]
pub struct Differenced {
    /// The differenced values (shorter than the input by
    /// `d + seasonal_d * period`).
    pub values: Vec<f64>,
    /// Trailing values of each intermediate stage, innermost first;
    /// consumed by [`Differencer::integrate`].
    tails: Vec<Vec<f64>>,
    spec: Differencer,
}

impl Differenced {
    /// The specification this transform was produced by. Lets callers that
    /// cache differenced series (the grid-search transform cache) verify a
    /// cached entry matches the spec they are about to fit.
    pub fn differencer(&self) -> Differencer {
        self.spec
    }
}

impl Differencer {
    /// A no-op differencer.
    pub fn none() -> Differencer {
        Differencer {
            d: 0,
            seasonal_d: 0,
            period: 1,
        }
    }

    /// Regular differencing only.
    pub fn regular(d: usize) -> Differencer {
        Differencer {
            d,
            seasonal_d: 0,
            period: 1,
        }
    }

    /// Total observations consumed by the transform.
    pub fn loss(&self) -> usize {
        self.d + self.seasonal_d * self.period
    }

    /// Apply the differencing. Regular differences are applied first, then
    /// seasonal ones (the composition is commutative in exact arithmetic;
    /// fixing an order makes the recorded tails unambiguous).
    pub fn apply(&self, values: &[f64]) -> Result<Differenced> {
        if self.seasonal_d > 0 && self.period < 2 {
            return Err(SeriesError::InvalidParameter {
                context: "Differencer: seasonal differencing needs period >= 2",
            });
        }
        if values.len() <= self.loss() {
            return Err(SeriesError::TooShort {
                needed: self.loss() + 1,
                got: values.len(),
            });
        }
        let mut current = values.to_vec();
        let mut tails: Vec<Vec<f64>> = Vec::with_capacity(self.d + self.seasonal_d);
        for _ in 0..self.d {
            // The length check above guarantees a tail at every level;
            // surface the typed error rather than panicking if it breaks.
            let Some(&last) = current.last() else {
                return Err(SeriesError::TooShort {
                    needed: self.loss() + 1,
                    got: values.len(),
                });
            };
            tails.push(vec![last]);
            current = difference(&current, 1);
        }
        for _ in 0..self.seasonal_d {
            // lint: allow(indexing) — the loss() length check above leaves at least `period` samples at every seasonal stage
            let tail = current[current.len() - self.period..].to_vec();
            tails.push(tail);
            current = difference(&current, self.period);
        }
        Ok(Differenced {
            values: current,
            tails,
            spec: *self,
        })
    }

    /// Integrate a forecast made on the differenced scale back to the
    /// original scale, using the tails recorded by [`Differencer::apply`].
    pub fn integrate(&self, diffed: &Differenced, forecast: &[f64]) -> Vec<f64> {
        debug_assert_eq!(*self, diffed.spec, "integrate: mismatched differencer");
        let mut current = forecast.to_vec();
        // Undo in reverse order: seasonal stages first (they were applied
        // last), then regular stages.
        for (stage, tail) in diffed.tails.iter().enumerate().rev() {
            let lag = tail.len(); // 1 for regular stages, `period` for seasonal
            let mut rebuilt: Vec<f64> = Vec::with_capacity(current.len());
            for (h, &v) in current.iter().enumerate() {
                // lint: allow(indexing) — h < lag = tail.len() in the first arm; rebuilt holds h entries in the second
                let prev = if h < lag { tail[h] } else { rebuilt[h - lag] };
                rebuilt.push(v + prev);
            }
            current = rebuilt;
            let _ = stage;
        }
        current
    }
}

/// Plain lag-`k` difference: `out[t] = x[t+k] − x[t]` reindexed.
pub fn difference(values: &[f64], lag: usize) -> Vec<f64> {
    if values.len() <= lag || lag == 0 {
        return if lag == 0 {
            values.to_vec()
        } else {
            Vec::new()
        };
    }
    (lag..values.len())
        // lint: allow(indexing) — t ranges over lag..len, so both t and t-lag are in bounds
        .map(|t| values[t] - values[t - lag])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_difference_known_values() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&[1.0, 2.0, 4.0, 8.0], 2), vec![3.0, 6.0]);
    }

    #[test]
    fn zero_lag_is_identity() {
        assert_eq!(difference(&[1.0, 2.0], 0), vec![1.0, 2.0]);
    }

    #[test]
    fn first_difference_removes_linear_trend() {
        let y: Vec<f64> = (0..50).map(|t| 3.0 + 2.0 * t as f64).collect();
        let d = Differencer::regular(1).apply(&y).unwrap();
        assert!(d.values.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn second_difference_removes_quadratic_trend() {
        let y: Vec<f64> = (0..50).map(|t| (t * t) as f64).collect();
        let d = Differencer::regular(2).apply(&y).unwrap();
        assert!(d.values.iter().all(|&v| (v - 2.0).abs() < 1e-12));
    }

    #[test]
    fn seasonal_difference_removes_pure_seasonality() {
        let pattern = [10.0, 20.0, 15.0, 5.0];
        let y: Vec<f64> = (0..40).map(|t| pattern[t % 4]).collect();
        let spec = Differencer {
            d: 0,
            seasonal_d: 1,
            period: 4,
        };
        let d = spec.apply(&y).unwrap();
        assert!(d.values.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn integrate_inverts_apply_for_in_sample_continuation() {
        // Difference a series, then "forecast" with the true future diffs:
        // integration must reproduce the true future values.
        let y: Vec<f64> = (0..60)
            .map(|t| {
                let t = t as f64;
                5.0 + 0.3 * t + (2.0 * std::f64::consts::PI * t / 12.0).sin() * 4.0
            })
            .collect();
        let (train, test) = y.split_at(48);
        for spec in [
            Differencer::regular(1),
            Differencer::regular(2),
            Differencer {
                d: 0,
                seasonal_d: 1,
                period: 12,
            },
            Differencer {
                d: 1,
                seasonal_d: 1,
                period: 12,
            },
        ] {
            let diffed_full = spec.apply(&y).unwrap();
            let diffed_train = spec.apply(train).unwrap();
            let future_diffs = &diffed_full.values[diffed_full.values.len() - test.len()..];
            let rebuilt = spec.integrate(&diffed_train, future_diffs);
            for (a, b) in rebuilt.iter().zip(test) {
                assert!((a - b).abs() < 1e-9, "{spec:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn loss_accounts_for_both_kinds() {
        let spec = Differencer {
            d: 2,
            seasonal_d: 1,
            period: 24,
        };
        assert_eq!(spec.loss(), 26);
        let y = vec![1.0; 27];
        assert_eq!(spec.apply(&y).unwrap().values.len(), 1);
    }

    #[test]
    fn too_short_series_is_rejected() {
        let spec = Differencer::regular(3);
        assert!(matches!(
            spec.apply(&[1.0, 2.0, 3.0]),
            Err(SeriesError::TooShort { .. })
        ));
    }

    #[test]
    fn seasonal_without_period_is_rejected() {
        let spec = Differencer {
            d: 0,
            seasonal_d: 1,
            period: 1,
        };
        assert!(spec.apply(&[1.0; 10]).is_err());
    }
}
