//! Gap filling for missed agent polls.
//!
//! §5.1: "It is possible that the agent may have been at fault and may not
//! have executed or polled the value from the database target … If this is
//! the case, a linear interpolation exercise is carried out to fill in the
//! gaps based on known data points."
//!
//! Gaps are represented as NaN. Interior gaps are filled by linear
//! interpolation between the nearest finite neighbours; leading/trailing
//! gaps are filled by nearest-value extension (there is nothing to
//! interpolate towards).

// lint: allow-file(indexing) — gap-filling scans; every anchor index comes from position/rposition over the same slice, and interior walks stop at the finite anchors those scans guarantee

use crate::timeseries::TimeSeries;
use crate::{Result, SeriesError};

/// Fill NaN gaps in `values` in place. Returns the number of samples
/// filled. Fails if *every* value is missing.
pub fn interpolate_gaps(values: &mut [f64]) -> Result<usize> {
    let n = values.len();
    if n == 0 {
        return Ok(0);
    }
    // Locating the finite anchors doubles as the all-missing check: no
    // first finite sample means there is nothing to interpolate from.
    let Some(first_finite) = values.iter().position(|v| v.is_finite()) else {
        return Err(SeriesError::InvalidParameter {
            context: "interpolate_gaps: every observation is missing",
        });
    };
    let last_finite = values
        .iter()
        .rposition(|v| v.is_finite())
        .unwrap_or(first_finite);
    let mut filled = 0usize;

    // Leading gap: extend the first finite value backwards.
    if first_finite > 0 {
        let fill = values[first_finite];
        for v in values[..first_finite].iter_mut() {
            *v = fill;
            filled += 1;
        }
    }
    // Trailing gap: extend the last finite value forwards.
    if last_finite < n - 1 {
        let fill = values[last_finite];
        for v in values[last_finite + 1..].iter_mut() {
            *v = fill;
            filled += 1;
        }
    }
    // Interior gaps: linear interpolation between finite anchors.
    let mut i = 0;
    while i < n {
        if values[i].is_finite() {
            i += 1;
            continue;
        }
        // values[i] is NaN and both an earlier and a later finite value
        // exist (the edges were handled above).
        let start = i - 1; // finite
        let mut end = i;
        while !values[end].is_finite() {
            end += 1;
        }
        let left = values[start];
        let right = values[end];
        let span = (end - start) as f64;
        for (offset, v) in values[start + 1..end].iter_mut().enumerate() {
            let t = (offset + 1) as f64 / span;
            *v = left + t * (right - left);
            filled += 1;
        }
        i = end + 1;
    }
    // Leading, trailing and interior passes together cover every index, so
    // the output must be gap-free.
    dwcp_math::invariant!(
        values.iter().all(|v| v.is_finite()),
        "interpolate_gaps left a non-finite value behind"
    );
    Ok(filled)
}

/// [`interpolate_gaps`] applied to a [`TimeSeries`]; returns the number of
/// samples filled.
pub fn interpolate_series(series: &mut TimeSeries) -> Result<usize> {
    interpolate_gaps(series.values_mut())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::Frequency;

    #[test]
    fn fills_single_interior_gap_linearly() {
        let mut v = vec![1.0, f64::NAN, 3.0];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 1);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fills_run_of_gaps_linearly() {
        let mut v = vec![0.0, f64::NAN, f64::NAN, f64::NAN, 4.0];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 3);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn extends_leading_and_trailing_gaps() {
        let mut v = vec![f64::NAN, f64::NAN, 5.0, 6.0, f64::NAN];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 3);
        assert_eq!(v, vec![5.0, 5.0, 5.0, 6.0, 6.0]);
    }

    #[test]
    fn no_gaps_is_a_no_op() {
        let mut v = vec![1.0, 2.0, 3.0];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 0);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_missing_is_an_error() {
        let mut v = vec![f64::NAN; 4];
        assert!(interpolate_gaps(&mut v).is_err());
    }

    #[test]
    fn empty_input_is_fine() {
        let mut v: Vec<f64> = vec![];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 0);
    }

    #[test]
    fn multiple_disjoint_gaps() {
        let mut v = vec![0.0, f64::NAN, 2.0, f64::NAN, f64::NAN, 8.0];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 3);
        assert_eq!(v, vec![0.0, 1.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn series_wrapper_reports_fill_count() {
        let mut s = TimeSeries::new(vec![1.0, f64::NAN, 3.0], Frequency::Hourly, 0);
        assert_eq!(interpolate_series(&mut s).unwrap(), 1);
        assert!(!s.has_gaps());
    }

    #[test]
    fn infinities_are_treated_as_gaps() {
        let mut v = vec![1.0, f64::INFINITY, 3.0];
        assert_eq!(interpolate_gaps(&mut v).unwrap(), 1);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }
}
