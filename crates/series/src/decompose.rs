//! Classical seasonal decomposition — the paper's Figure 1(b).
//!
//! "We discover the seasonality of the data by decomposing it using library
//! functions (in particular `statsmodels.tsa.seasonal` in python)." This is
//! the same algorithm: a centred moving-average trend, seasonal averages of
//! the detrended series, and a residual.

use crate::{Result, SeriesError};

/// Whether seasonality is added to or multiplied with the trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompositionModel {
    /// `y = trend + seasonal + residual`.
    Additive,
    /// `y = trend × seasonal × residual` (requires positive data).
    Multiplicative,
}

/// Result of a classical decomposition. `trend` and `residual` carry NaN in
/// the half-window margins where the centred moving average is undefined,
/// exactly as statsmodels reports them.
#[derive(Debug, Clone)]
pub struct SeasonalDecomposition {
    /// Centred moving-average trend (NaN at the edges).
    pub trend: Vec<f64>,
    /// The repeating seasonal component (one value per observation).
    pub seasonal: Vec<f64>,
    /// What remains (NaN where trend is NaN).
    pub residual: Vec<f64>,
    /// One period of the seasonal pattern.
    pub seasonal_indices: Vec<f64>,
    /// Which model was used.
    pub model: DecompositionModel,
    /// The period that was decomposed at.
    pub period: usize,
}

impl SeasonalDecomposition {
    /// Fraction of (non-NaN) variance explained by the seasonal component;
    /// the "strength of seasonality" diagnostic 1 − Var(resid)/Var(seas+resid).
    pub fn seasonal_strength(&self) -> f64 {
        let mut resid_var = 0.0;
        let mut total_var = 0.0;
        let mut n = 0usize;
        let pairs: Vec<(f64, f64)> = self
            .residual
            .iter()
            .zip(&self.seasonal)
            .filter(|(r, _)| r.is_finite())
            .map(|(&r, &s)| (r, s))
            .collect();
        if pairs.is_empty() {
            return 0.0;
        }
        let mean_r = pairs.iter().map(|p| p.0).sum::<f64>() / pairs.len() as f64;
        let mean_sr = pairs.iter().map(|p| p.0 + p.1).sum::<f64>() / pairs.len() as f64;
        for (r, s) in pairs {
            resid_var += (r - mean_r).powi(2);
            total_var += (r + s - mean_sr).powi(2);
            n += 1;
        }
        if n == 0 || total_var == 0.0 {
            return 0.0;
        }
        (1.0 - resid_var / total_var).max(0.0)
    }
}

/// Classical decomposition of `values` at seasonal `period`.
///
/// Needs at least two full periods. For [`DecompositionModel::Multiplicative`]
/// all values must be strictly positive.
pub fn decompose(
    values: &[f64],
    period: usize,
    model: DecompositionModel,
) -> Result<SeasonalDecomposition> {
    let n = values.len();
    if period < 2 {
        return Err(SeriesError::InvalidParameter {
            context: "decompose: period must be >= 2",
        });
    }
    if n < 2 * period {
        return Err(SeriesError::TooShort {
            needed: 2 * period,
            got: n,
        });
    }
    if values.iter().any(|v| !v.is_finite()) {
        return Err(SeriesError::NonFinite);
    }
    if model == DecompositionModel::Multiplicative && values.iter().any(|&v| v <= 0.0) {
        return Err(SeriesError::InvalidParameter {
            context: "decompose: multiplicative model needs positive data",
        });
    }

    // 1. Centred moving average of window `period` (2×(period/2)-MA when the
    //    period is even, the statsmodels convention).
    let trend = centered_moving_average(values, period);

    // 2. Detrend.
    let detrended: Vec<f64> = values
        .iter()
        .zip(&trend)
        .map(|(&y, &t)| {
            if !t.is_finite() {
                f64::NAN
            } else {
                match model {
                    DecompositionModel::Additive => y - t,
                    DecompositionModel::Multiplicative => y / t,
                }
            }
        })
        .collect();

    // 3. Seasonal indices: mean of the detrended values in each phase,
    //    normalised to sum to zero (additive) or average to one
    //    (multiplicative).
    let mut sums = vec![0.0; period];
    let mut counts = vec![0usize; period];
    for (i, &v) in detrended.iter().enumerate() {
        if v.is_finite() {
            sums[i % period] += v;
            counts[i % period] += 1;
        }
    }
    let mut indices: Vec<f64> = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect();
    match model {
        DecompositionModel::Additive => {
            let mean = indices.iter().sum::<f64>() / period as f64;
            for v in indices.iter_mut() {
                *v -= mean;
            }
        }
        DecompositionModel::Multiplicative => {
            let mean = indices.iter().sum::<f64>() / period as f64;
            if mean != 0.0 {
                for v in indices.iter_mut() {
                    *v /= mean;
                }
            }
        }
    }

    // 4. Tile the indices and compute residuals.
    let seasonal: Vec<f64> = (0..n).map(|i| indices[i % period]).collect();
    let residual: Vec<f64> = (0..n)
        .map(|i| {
            if !trend[i].is_finite() {
                f64::NAN
            } else {
                match model {
                    DecompositionModel::Additive => values[i] - trend[i] - seasonal[i],
                    DecompositionModel::Multiplicative => values[i] / (trend[i] * seasonal[i]),
                }
            }
        })
        .collect();

    Ok(SeasonalDecomposition {
        trend,
        seasonal,
        residual,
        seasonal_indices: indices,
        model,
        period,
    })
}

/// Centred moving average: plain odd-window MA, or the 2×MA for even
/// windows. NaN where the window does not fit.
fn centered_moving_average(values: &[f64], period: usize) -> Vec<f64> {
    let n = values.len();
    let mut out = vec![f64::NAN; n];
    if period % 2 == 1 {
        let half = period / 2;
        for i in half..n - half {
            let window = &values[i - half..=i + half];
            out[i] = window.iter().sum::<f64>() / period as f64;
        }
    } else {
        // Even period: average of two staggered windows — equivalently a
        // weighted window with half-weights on the extremes.
        let half = period / 2;
        for i in half..n - half {
            let mut sum = 0.5 * values[i - half] + 0.5 * values[i + half];
            for j in (i - half + 1)..(i + half) {
                sum += values[j];
            }
            out[i] = sum / period as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(n: usize, period: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let t_f = t as f64;
                50.0 + 0.2 * t_f + 10.0 * (2.0 * std::f64::consts::PI * t_f / period as f64).sin()
            })
            .collect()
    }

    #[test]
    fn additive_recovers_trend_slope() {
        let y = synthetic(120, 12);
        let d = decompose(&y, 12, DecompositionModel::Additive).unwrap();
        // Interior trend should be close to 50 + 0.2t.
        for t in 20..100 {
            let expected = 50.0 + 0.2 * t as f64;
            assert!(
                (d.trend[t] - expected).abs() < 0.5,
                "t = {t}: {} vs {expected}",
                d.trend[t]
            );
        }
    }

    #[test]
    fn additive_recovers_seasonal_shape() {
        let y = synthetic(240, 24);
        let d = decompose(&y, 24, DecompositionModel::Additive).unwrap();
        for (phase, &idx) in d.seasonal_indices.iter().enumerate() {
            let expected = 10.0 * (2.0 * std::f64::consts::PI * phase as f64 / 24.0).sin();
            assert!(
                (idx - expected).abs() < 0.6,
                "phase {phase}: {idx} vs {expected}"
            );
        }
    }

    #[test]
    fn additive_components_sum_back_to_series() {
        let y = synthetic(120, 12);
        let d = decompose(&y, 12, DecompositionModel::Additive).unwrap();
        for t in 0..y.len() {
            if d.trend[t].is_finite() {
                let rebuilt = d.trend[t] + d.seasonal[t] + d.residual[t];
                assert!((rebuilt - y[t]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn seasonal_indices_sum_to_zero_additive() {
        let y = synthetic(120, 12);
        let d = decompose(&y, 12, DecompositionModel::Additive).unwrap();
        let sum: f64 = d.seasonal_indices.iter().sum();
        assert!(sum.abs() < 1e-9);
    }

    #[test]
    fn multiplicative_components_multiply_back() {
        let y: Vec<f64> = (0..120)
            .map(|t| {
                let t_f = t as f64;
                (100.0 + t_f) * (1.0 + 0.3 * (2.0 * std::f64::consts::PI * t_f / 12.0).sin())
            })
            .collect();
        let d = decompose(&y, 12, DecompositionModel::Multiplicative).unwrap();
        for t in 0..y.len() {
            if d.trend[t].is_finite() {
                let rebuilt = d.trend[t] * d.seasonal[t] * d.residual[t];
                assert!((rebuilt - y[t]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn multiplicative_indices_average_to_one() {
        let y: Vec<f64> = (0..96)
            .map(|t| 100.0 * (1.0 + 0.2 * (2.0 * std::f64::consts::PI * t as f64 / 8.0).cos()))
            .collect();
        let d = decompose(&y, 8, DecompositionModel::Multiplicative).unwrap();
        let mean: f64 = d.seasonal_indices.iter().sum::<f64>() / 8.0;
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn strongly_seasonal_series_has_high_strength() {
        let y = synthetic(240, 24);
        let d = decompose(&y, 24, DecompositionModel::Additive).unwrap();
        assert!(d.seasonal_strength() > 0.95, "{}", d.seasonal_strength());
    }

    #[test]
    fn aperiodic_series_has_low_strength() {
        // Deterministic pseudo-noise around a trend with no period-24 cycle.
        let y: Vec<f64> = (0..240)
            .map(|t| 100.0 + 0.1 * t as f64 + ((t * 7919 % 101) as f64) / 10.0)
            .collect();
        let d = decompose(&y, 24, DecompositionModel::Additive).unwrap();
        assert!(d.seasonal_strength() < 0.5, "{}", d.seasonal_strength());
    }

    #[test]
    fn edge_margins_are_nan() {
        let y = synthetic(48, 12);
        let d = decompose(&y, 12, DecompositionModel::Additive).unwrap();
        assert!(d.trend[0].is_nan());
        assert!(d.trend[5].is_nan());
        assert!(d.trend[6].is_finite());
        assert!(d.trend[47].is_nan());
    }

    #[test]
    fn rejects_short_series_and_bad_period() {
        assert!(decompose(&[1.0; 10], 12, DecompositionModel::Additive).is_err());
        assert!(decompose(&[1.0; 10], 1, DecompositionModel::Additive).is_err());
        assert!(decompose(&[0.0; 48], 12, DecompositionModel::Multiplicative).is_err());
    }

    #[test]
    fn odd_period_moving_average() {
        let y = synthetic(60, 5);
        let d = decompose(&y, 5, DecompositionModel::Additive).unwrap();
        assert!(d.trend[2].is_finite());
        assert!(d.trend[1].is_nan());
    }
}
