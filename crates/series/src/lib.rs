//! Time-series substrate for the dwcp capacity planner.
//!
//! The paper's problem definition (§3): *given a time series `m` that
//! provides monitoring information about a workload `w`, generate a
//! prediction `z` for a period following on from that of `w`*. This crate
//! owns everything about `m` itself — the container, its diagnostics and
//! its transforms — leaving model fitting to `dwcp-models`:
//!
//! * [`timeseries`] — the [`TimeSeries`] container (values + frequency +
//!   origin), built from agent samples or synthetic generators,
//! * [`mod@acf`] — autocorrelation and partial autocorrelation (the paper's
//!   Figure 1(a) correlograms) with significance bands,
//! * [`diff`] — regular and seasonal differencing with exact inversion
//!   (Figure 1(c), "by differencing the data once we stabilise it"),
//! * [`mod@decompose`] — classical seasonal decomposition
//!   (Figure 1(b), mirroring `statsmodels.tsa.seasonal`),
//! * [`boxcox`] — Box-Cox transform used by TBATS,
//! * [`stationarity`] — ADF and KPSS tests ("Dicky-Fuller to detect if the
//!   data is stationary") and automatic choice of the differencing order,
//! * [`season`] — periodogram + ACF seasonality detection, including the
//!   multiple-seasonality decision that triggers Fourier terms (§4.4),
//! * [`ingest`] — streaming fold of out-of-order 15-minute agent polls
//!   into hourly aggregates, with cursor-paged reads (§5.1/§7.2),
//! * [`interpolate`] — linear interpolation of missing agent samples (§5.1),
//! * [`accuracy`] — RMSE / MAPE / MAPA and friends (§7),
//! * [`split`] — the Table 1 train/test protocol.
#![forbid(unsafe_code)]
#![allow(clippy::needless_range_loop)] // triangular/windowed kernels read best as indices

pub mod accuracy;
pub mod acf;
pub mod boxcox;
pub mod decompose;
pub mod diff;
pub mod ingest;
pub mod interpolate;
pub mod rolling;
pub mod season;
pub mod split;
pub mod stationarity;
pub mod timeseries;

pub use accuracy::Accuracy;
pub use acf::{acf, acf_direct, pacf, Correlogram};
pub use decompose::{decompose, DecompositionModel, SeasonalDecomposition};
pub use diff::Differencer;
pub use ingest::{IngestBuffer, PointOrder, SeriesPage};
pub use season::{detect_seasonality, SeasonalityReport};
pub use split::{Granularity, TrainTestSplit};
pub use stationarity::{adf_test, kpss_test, suggest_differencing};
pub use timeseries::{Frequency, TimeSeries};

/// Errors produced by the series substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesError {
    /// The operation needs more observations than the series has.
    TooShort {
        /// Observations required.
        needed: usize,
        /// Observations available.
        got: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// Human-readable description.
        context: &'static str,
    },
    /// The series contains non-finite values where finite ones are required.
    NonFinite,
    /// An underlying numerical kernel failed.
    Math(dwcp_math::MathError),
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::TooShort { needed, got } => {
                write!(
                    f,
                    "series too short: need {needed} observations, have {got}"
                )
            }
            SeriesError::InvalidParameter { context } => {
                write!(f, "invalid parameter: {context}")
            }
            SeriesError::NonFinite => write!(f, "series contains non-finite values"),
            SeriesError::Math(e) => write!(f, "numerical error: {e}"),
        }
    }
}

impl std::error::Error for SeriesError {}

impl From<dwcp_math::MathError> for SeriesError {
    fn from(e: dwcp_math::MathError) -> Self {
        SeriesError::Math(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, SeriesError>;
