//! The Table 1 train/test protocol.
//!
//! | Forecast        | Obs  | Train | Test | Prediction |
//! |-----------------|------|-------|------|------------|
//! | Hourly          | 1008 | 984   | 24   | 24 hours   |
//! | Daily           | 90   | 83    | 7    | 7 days     |
//! | Weekly          | 92   | 88    | 4    | 4 weeks    |
//!
//! The same breakdown applies to both SARIMAX and HES rows of the paper's
//! table. The observation counts come from the Makridakis-competition
//! guidance the paper cites ("for an effective hourly forecast 700 hourly
//! data points (circa 29 days) are required").

use crate::timeseries::TimeSeries;
use crate::{Result, SeriesError};
use serde::{Deserialize, Serialize};

/// Forecast granularity, which fixes the Table 1 protocol row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Granularity {
    /// 1008 observations; 984 train / 24 test; predict 24 hours.
    Hourly,
    /// 90 observations; 83 train / 7 test; predict 7 days.
    Daily,
    /// 92 observations; 88 train / 4 test; predict 4 weeks.
    Weekly,
}

impl Granularity {
    /// Observations the protocol expects (`Obs` column).
    pub fn observations(self) -> usize {
        match self {
            Granularity::Hourly => 1008,
            Granularity::Daily => 90,
            Granularity::Weekly => 92,
        }
    }

    /// Training-set size (`Train Set` column).
    pub fn train_size(self) -> usize {
        match self {
            Granularity::Hourly => 984,
            Granularity::Daily => 83,
            Granularity::Weekly => 88,
        }
    }

    /// Test-set size (`Test Set` column).
    pub fn test_size(self) -> usize {
        match self {
            Granularity::Hourly => 24,
            Granularity::Daily => 7,
            Granularity::Weekly => 4,
        }
    }

    /// Forecast horizon (`Prediction` column) — equal to the test size in
    /// every row of Table 1.
    pub fn horizon(self) -> usize {
        self.test_size()
    }

    /// The dominant seasonal period at this granularity (`F`): 24 hours in
    /// a day, 7 days in a week, 52 weeks in a year.
    pub fn seasonal_period(self) -> usize {
        match self {
            Granularity::Hourly => 24,
            Granularity::Daily => 7,
            Granularity::Weekly => 52,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Hourly => "hourly",
            Granularity::Daily => "daily",
            Granularity::Weekly => "weekly",
        }
    }
}

/// A train/test split of a series.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training segment (the shaded/blue region of the paper's charts).
    pub train: TimeSeries,
    /// Held-out test segment (the yellow region).
    pub test: TimeSeries,
    /// Granularity that produced the split.
    pub granularity: Granularity,
}

impl TrainTestSplit {
    /// Split `series` per the Table 1 protocol for `granularity`.
    ///
    /// The series must hold at least `observations()` points; only the
    /// trailing `observations()` are used (the freshest data), mirroring
    /// the rolling 30-day capture window.
    pub fn from_series(series: &TimeSeries, granularity: Granularity) -> Result<TrainTestSplit> {
        let needed = granularity.observations();
        if series.len() < needed {
            return Err(SeriesError::TooShort {
                needed,
                got: series.len(),
            });
        }
        let window = series.tail(needed);
        let (train, test) = window.split_at(granularity.train_size());
        Ok(TrainTestSplit {
            train,
            test,
            granularity,
        })
    }

    /// Split an arbitrary-length series with the *proportions* of the
    /// protocol (used by tests and ad-hoc experiments on shorter data):
    /// the last `test_size` points are held out.
    pub fn holdout(series: &TimeSeries, granularity: Granularity) -> Result<TrainTestSplit> {
        let test_size = granularity.test_size();
        if series.len() <= test_size {
            return Err(SeriesError::TooShort {
                needed: test_size + 1,
                got: series.len(),
            });
        }
        let (train, test) = series.split_at(series.len() - test_size);
        Ok(TrainTestSplit {
            train,
            test,
            granularity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::Frequency;

    #[test]
    fn table1_hourly_row() {
        let g = Granularity::Hourly;
        assert_eq!(g.observations(), 1008);
        assert_eq!(g.train_size(), 984);
        assert_eq!(g.test_size(), 24);
        assert_eq!(g.horizon(), 24);
        assert_eq!(g.train_size() + g.test_size(), g.observations());
    }

    #[test]
    fn table1_daily_row() {
        let g = Granularity::Daily;
        assert_eq!(g.observations(), 90);
        assert_eq!(g.train_size(), 83);
        assert_eq!(g.test_size(), 7);
        assert_eq!(g.train_size() + g.test_size(), g.observations());
    }

    #[test]
    fn table1_weekly_row() {
        let g = Granularity::Weekly;
        assert_eq!(g.observations(), 92);
        assert_eq!(g.train_size(), 88);
        assert_eq!(g.test_size(), 4);
        assert_eq!(g.train_size() + g.test_size(), g.observations());
    }

    #[test]
    fn from_series_uses_trailing_window() {
        // 1100 hourly points; protocol takes the last 1008.
        let values: Vec<f64> = (0..1100).map(|i| i as f64).collect();
        let s = TimeSeries::new(values, Frequency::Hourly, 0);
        let split = TrainTestSplit::from_series(&s, Granularity::Hourly).unwrap();
        assert_eq!(split.train.len(), 984);
        assert_eq!(split.test.len(), 24);
        // First training value is observation 1100 − 1008 = 92.
        assert_eq!(split.train.values()[0], 92.0);
        // Last test value is the final observation.
        assert_eq!(*split.test.values().last().unwrap(), 1099.0);
    }

    #[test]
    fn from_series_rejects_insufficient_data() {
        let s = TimeSeries::new(vec![0.0; 500], Frequency::Hourly, 0);
        assert!(matches!(
            TrainTestSplit::from_series(&s, Granularity::Hourly),
            Err(SeriesError::TooShort { needed: 1008, .. })
        ));
    }

    #[test]
    fn test_segment_origin_follows_train() {
        let s = TimeSeries::new((0..1008).map(|i| i as f64).collect(), Frequency::Hourly, 0);
        let split = TrainTestSplit::from_series(&s, Granularity::Hourly).unwrap();
        assert_eq!(split.test.origin(), split.train.next_timestamp());
    }

    #[test]
    fn holdout_keeps_proportions_on_short_series() {
        let s = TimeSeries::new((0..100).map(|i| i as f64).collect(), Frequency::Hourly, 0);
        let split = TrainTestSplit::holdout(&s, Granularity::Hourly).unwrap();
        assert_eq!(split.train.len(), 76);
        assert_eq!(split.test.len(), 24);
    }

    #[test]
    fn seasonal_periods_match_f_parameter() {
        assert_eq!(Granularity::Hourly.seasonal_period(), 24);
        assert_eq!(Granularity::Daily.seasonal_period(), 7);
        assert_eq!(Granularity::Weekly.seasonal_period(), 52);
    }
}
