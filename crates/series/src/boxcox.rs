//! Box-Cox power transform, used by TBATS ("incorporating Box-Cox
//! transformations, Fourier representations … and ARMA error correction").
//!
//! `y(λ) = (yλ − 1)/λ` for `λ ≠ 0`, `ln y` for `λ = 0`. The transform
//! requires strictly positive data; [`shift_to_positive`] provides the
//! conventional remedy for series that touch zero (idle CPU samples do).

use crate::{Result, SeriesError};

/// Apply the Box-Cox transform with parameter `lambda`.
///
/// Fails if any value is non-positive.
pub fn boxcox(values: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return Err(SeriesError::InvalidParameter {
            context: "boxcox: values must be strictly positive and finite",
        });
    }
    Ok(if lambda.abs() < 1e-10 {
        values.iter().map(|&v| v.ln()).collect()
    } else {
        values
            .iter()
            .map(|&v| (v.powf(lambda) - 1.0) / lambda)
            .collect()
    })
}

/// Invert the Box-Cox transform.
///
/// Values that would leave the transform's range (λ·y + 1 ≤ 0) are clamped
/// to the range boundary rather than producing NaN — forecasts with wide
/// error bars can otherwise step outside the image of the transform.
pub fn inv_boxcox(values: &[f64], lambda: f64) -> Vec<f64> {
    if lambda.abs() < 1e-10 {
        values.iter().map(|&v| v.exp()).collect()
    } else {
        values
            .iter()
            .map(|&v| {
                let base = (lambda * v + 1.0).max(1e-12);
                base.powf(1.0 / lambda)
            })
            .collect()
    }
}

/// Choose λ by maximising the Box-Cox log-likelihood over a coarse-to-fine
/// grid in `[lo, hi]` (the standard profile-likelihood method; equivalent
/// in spirit to Guerrero's method for our purposes).
pub fn select_lambda(values: &[f64], lo: f64, hi: f64) -> Result<f64> {
    if values.len() < 8 {
        return Err(SeriesError::TooShort {
            needed: 8,
            got: values.len(),
        });
    }
    if values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return Err(SeriesError::InvalidParameter {
            context: "select_lambda: values must be strictly positive and finite",
        });
    }
    let log_sum: f64 = values.iter().map(|&v| v.ln()).sum();
    let n = values.len() as f64;
    let loglik = |lambda: f64| -> f64 {
        // Positivity was validated above; if the transform still refuses,
        // score the cell as -inf so it can never win rather than panic.
        let Ok(t) = boxcox(values, lambda) else {
            return f64::NEG_INFINITY;
        };
        let mean = t.iter().sum::<f64>() / n;
        let var = t.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        if var <= 0.0 {
            return f64::NEG_INFINITY;
        }
        -0.5 * n * var.ln() + (lambda - 1.0) * log_sum
    };
    // Coarse grid then golden-ratio refinement around the best cell.
    let steps = 40;
    let mut best_lambda = lo;
    let mut best_ll = f64::NEG_INFINITY;
    for i in 0..=steps {
        let l = lo + (hi - lo) * i as f64 / steps as f64;
        let ll = loglik(l);
        if ll > best_ll {
            best_ll = ll;
            best_lambda = l;
        }
    }
    let cell = (hi - lo) / steps as f64;
    let (mut a, mut b) = (best_lambda - cell, best_lambda + cell);
    for _ in 0..40 {
        let m1 = a + (b - a) * 0.382;
        let m2 = a + (b - a) * 0.618;
        if loglik(m1) < loglik(m2) {
            a = m1;
        } else {
            b = m2;
        }
    }
    Ok((a + b) / 2.0)
}

/// Shift a series so its minimum is at least `floor` (> 0), returning the
/// shifted copy and the offset applied (0 when no shift was needed).
pub fn shift_to_positive(values: &[f64], floor: f64) -> (Vec<f64>, f64) {
    // NaN min (empty or all-NaN input) falls through to "no shift".
    let min = dwcp_math::min_f64(values);
    if min < floor {
        let offset = floor - min;
        (values.iter().map(|&v| v + offset).collect(), offset)
    } else {
        (values.to_vec(), 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_offset_does_not_depend_on_sample_order() {
        // Regression for the INFINITY-seeded fold the nondeterminism lint
        // flagged: the offset is a function of the set of samples only.
        let forward = [5.0, -3.0, 0.5, 2.0];
        let mut reversed = forward;
        reversed.reverse();
        let (_, off_a) = shift_to_positive(&forward, 0.5);
        let (_, off_b) = shift_to_positive(&reversed, 0.5);
        assert_eq!(off_a, off_b);
        assert_eq!(off_a, 3.5);
        // Empty and all-NaN inputs shift nothing instead of poisoning.
        assert_eq!(shift_to_positive(&[], 1.0).1, 0.0);
        let (kept, off) = shift_to_positive(&[f64::NAN], 1.0);
        assert!(kept[0].is_nan());
        assert_eq!(off, 0.0);
    }

    #[test]
    fn lambda_zero_is_log() {
        let y = [1.0, std::f64::consts::E, 10.0];
        let t = boxcox(&y, 0.0).unwrap();
        assert!((t[0] - 0.0).abs() < 1e-12);
        assert!((t[1] - 1.0).abs() < 1e-12);
        assert!((t[2] - 10f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lambda_one_is_shift_by_one() {
        let y = [2.0, 5.0];
        let t = boxcox(&y, 1.0).unwrap();
        assert_eq!(t, vec![1.0, 4.0]);
    }

    #[test]
    fn roundtrip_for_various_lambdas() {
        let y = [0.5, 1.0, 2.0, 7.5, 100.0];
        for &l in &[-1.0, -0.5, 0.0, 0.33, 1.0, 2.0] {
            let t = boxcox(&y, l).unwrap();
            let back = inv_boxcox(&t, l);
            for (a, b) in back.iter().zip(&y) {
                assert!((a - b).abs() < 1e-9, "lambda {l}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn rejects_non_positive_values() {
        assert!(boxcox(&[1.0, 0.0], 0.5).is_err());
        assert!(boxcox(&[1.0, -2.0], 0.5).is_err());
    }

    #[test]
    fn inverse_clamps_out_of_range_inputs() {
        // λ = 2: inverse of v needs 2v + 1 > 0; v = −5 is out of range.
        let back = inv_boxcox(&[-5.0], 2.0);
        assert!(back[0].is_finite());
        assert!(back[0] >= 0.0);
    }

    #[test]
    fn select_lambda_recovers_log_scale_data() {
        // Exponential growth becomes linear after log ⇒ λ near 0.
        let y: Vec<f64> = (1..200).map(|t| (0.05 * t as f64).exp()).collect();
        let l = select_lambda(&y, -1.0, 2.0).unwrap();
        assert!(l.abs() < 0.15, "lambda = {l}");
    }

    #[test]
    fn select_lambda_keeps_linear_data_near_one() {
        let y: Vec<f64> = (1..200).map(|t| 10.0 + t as f64).collect();
        let l = select_lambda(&y, -1.0, 2.0).unwrap();
        assert!(l > 0.5, "lambda = {l}");
    }

    #[test]
    fn shift_to_positive_only_when_needed() {
        let (shifted, off) = shift_to_positive(&[3.0, 4.0], 1.0);
        assert_eq!(off, 0.0);
        assert_eq!(shifted, vec![3.0, 4.0]);

        let (shifted, off) = shift_to_positive(&[0.0, 4.0], 1.0);
        assert_eq!(off, 1.0);
        assert_eq!(shifted, vec![1.0, 5.0]);
    }
}
