//! The [`TimeSeries`] container: observed metric values at a fixed
//! sampling frequency, anchored at an origin timestamp.
//!
//! The paper treats a series as `[x₁, …, xₙ]` "associated with the
//! frequency of the monitoring, such as hourly, daily, weekly or monthly".
//! Missing agent polls are represented as `NaN` until
//! [`crate::interpolate`] fills them.

use serde::{Deserialize, Serialize};

/// Sampling frequency of a monitored metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Frequency {
    /// One observation per 15 minutes — the agent's raw polling cadence.
    QuarterHourly,
    /// One observation per hour — the repository's aggregated cadence.
    Hourly,
    /// One observation per day.
    Daily,
    /// One observation per week.
    Weekly,
    /// One observation per month (30-day months for simulation purposes).
    Monthly,
}

impl Frequency {
    /// Seconds spanned by one observation interval.
    pub fn seconds(self) -> u64 {
        match self {
            Frequency::QuarterHourly => 15 * 60,
            Frequency::Hourly => 3_600,
            Frequency::Daily => 86_400,
            Frequency::Weekly => 7 * 86_400,
            Frequency::Monthly => 30 * 86_400,
        }
    }

    /// The natural period (observations per dominant cycle) for a frequency,
    /// matching the paper's `F` parameter: "12 months, 24 hours".
    pub fn natural_period(self) -> usize {
        match self {
            Frequency::QuarterHourly => 96, // one day of 15-min samples
            Frequency::Hourly => 24,        // one day
            Frequency::Daily => 7,          // one week
            Frequency::Weekly => 52,        // one year
            Frequency::Monthly => 12,       // one year
        }
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Frequency::QuarterHourly => "15min",
            Frequency::Hourly => "hourly",
            Frequency::Daily => "daily",
            Frequency::Weekly => "weekly",
            Frequency::Monthly => "monthly",
        }
    }
}

/// A univariate time series: equally spaced observations of one metric.
///
/// ```
/// use dwcp_series::{Frequency, TimeSeries};
///
/// let cpu = TimeSeries::new(vec![20.0, 35.0, 50.0, 35.0], Frequency::Hourly, 0);
/// assert_eq!(cpu.len(), 4);
/// assert_eq!(cpu.mean(), 35.0);
/// assert_eq!(cpu.timestamp(2), 2 * 3600);
/// let (train, test) = cpu.split_at(3);
/// assert_eq!(test.values(), &[35.0]);
/// assert_eq!(train.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    values: Vec<f64>,
    frequency: Frequency,
    /// Epoch-seconds timestamp of the first observation.
    origin: u64,
}

impl TimeSeries {
    /// Build a series from raw values.
    pub fn new(values: Vec<f64>, frequency: Frequency, origin: u64) -> TimeSeries {
        TimeSeries {
            values,
            frequency,
            origin,
        }
    }

    /// An empty series (useful as an accumulator).
    pub fn empty(frequency: Frequency, origin: u64) -> TimeSeries {
        Self::new(Vec::new(), frequency, origin)
    }

    /// Number of observations.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no observations.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Borrow the observations.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the observations (used by interpolation).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consume the series, returning its observations.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Sampling frequency.
    #[inline]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Epoch-seconds timestamp of the first observation.
    #[inline]
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Timestamp of observation `i`.
    pub fn timestamp(&self, i: usize) -> u64 {
        self.origin + i as u64 * self.frequency.seconds()
    }

    /// Timestamp one step past the final observation — where a forecast
    /// would begin.
    pub fn next_timestamp(&self) -> u64 {
        self.timestamp(self.len())
    }

    /// Append an observation.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// A new series holding observations `range` (shares frequency; the
    /// origin shifts accordingly).
    pub fn slice(&self, start: usize, end: usize) -> TimeSeries {
        TimeSeries {
            // lint: allow(indexing) — public slicing API; an out-of-range request panics with std's range message by design
            values: self.values[start..end].to_vec(),
            frequency: self.frequency,
            origin: self.timestamp(start),
        }
    }

    /// Split at `index`: `[0, index)` and `[index, len)`.
    pub fn split_at(&self, index: usize) -> (TimeSeries, TimeSeries) {
        (self.slice(0, index), self.slice(index, self.len()))
    }

    /// Keep only the trailing `n` observations (no-op if shorter).
    pub fn tail(&self, n: usize) -> TimeSeries {
        let start = self.len().saturating_sub(n);
        self.slice(start, self.len())
    }

    /// Whether any observation is missing (NaN) or infinite.
    pub fn has_gaps(&self) -> bool {
        self.values.iter().any(|v| !v.is_finite())
    }

    /// Count of missing (non-finite) observations.
    pub fn gap_count(&self) -> usize {
        self.values.iter().filter(|v| !v.is_finite()).count()
    }

    /// Arithmetic mean; NaN for an empty series.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.len() as f64
    }

    /// Population variance; NaN for an empty series.
    pub fn variance(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        let m = self.mean();
        self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, skipping NaN gaps; NaN for an empty series.
    pub fn min(&self) -> f64 {
        dwcp_math::min_f64(&self.values)
    }

    /// Maximum observation, skipping NaN gaps; NaN for an empty series.
    pub fn max(&self) -> f64 {
        dwcp_math::max_f64(&self.values)
    }

    /// Aggregate `per` consecutive observations by their mean into a new
    /// series at a coarser frequency. Trailing partial buckets are dropped,
    /// matching the repository's hourly aggregation of 15-minute polls
    /// ("aggregation then takes place over the hour between the four
    /// captured metrics", §7.2). NaN samples inside a bucket are skipped;
    /// an all-NaN bucket aggregates to NaN (a repository gap).
    pub fn aggregate_mean(&self, per: usize, target: Frequency) -> TimeSeries {
        assert!(per > 0, "aggregate_mean: per must be positive");
        let buckets = self.len() / per;
        let mut out = Vec::with_capacity(buckets);
        for chunk in self.values.chunks_exact(per) {
            let mut sum = 0.0;
            let mut count = 0usize;
            for &v in chunk {
                if v.is_finite() {
                    sum += v;
                    count += 1;
                }
            }
            out.push(if count == 0 {
                f64::NAN
            } else {
                sum / count as f64
            });
        }
        TimeSeries::new(out, target, self.origin)
    }

    /// Map every observation through `f`, keeping metadata.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> TimeSeries {
        TimeSeries {
            values: self.values.iter().map(|&v| f(v)).collect(),
            frequency: self.frequency,
            origin: self.origin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(values, Frequency::Hourly, 1_000_000)
    }

    #[test]
    fn extrema_do_not_depend_on_nan_position() {
        // Regression for the fold-seeded min/max the nondeterminism lint
        // flagged: a NaN gap must not change the answer wherever it sits.
        let base = [3.0, -1.0, 7.0, 2.0];
        for at in 0..=base.len() {
            let mut values = base.to_vec();
            values.insert(at, f64::NAN);
            let s = ts(values);
            assert_eq!(s.min(), -1.0, "NaN at {at}");
            assert_eq!(s.max(), 7.0, "NaN at {at}");
        }
        assert!(ts(vec![]).min().is_nan());
        assert!(ts(vec![f64::NAN; 3]).max().is_nan());
    }

    #[test]
    fn timestamps_advance_by_frequency() {
        let s = ts(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.timestamp(0), 1_000_000);
        assert_eq!(s.timestamp(2), 1_000_000 + 2 * 3600);
        assert_eq!(s.next_timestamp(), 1_000_000 + 3 * 3600);
    }

    #[test]
    fn slice_shifts_origin() {
        let s = ts(vec![1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(2, 4);
        assert_eq!(sub.values(), &[3.0, 4.0]);
        assert_eq!(sub.origin(), s.timestamp(2));
    }

    #[test]
    fn split_at_partitions_exactly() {
        let s = ts(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let (a, b) = s.split_at(3);
        assert_eq!(a.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(b.values(), &[4.0, 5.0]);
        assert_eq!(b.origin(), s.timestamp(3));
    }

    #[test]
    fn tail_keeps_last_n() {
        let s = ts(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.tail(2).values(), &[3.0, 4.0]);
        assert_eq!(s.tail(10).values(), s.values());
    }

    #[test]
    fn descriptive_statistics() {
        let s = ts(vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_series_statistics_are_nan() {
        let s = TimeSeries::empty(Frequency::Hourly, 0);
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
    }

    #[test]
    fn gap_detection() {
        let mut s = ts(vec![1.0, f64::NAN, 3.0]);
        assert!(s.has_gaps());
        assert_eq!(s.gap_count(), 1);
        s.values_mut()[1] = 2.0;
        assert!(!s.has_gaps());
    }

    #[test]
    fn aggregate_mean_of_quarter_hours_to_hours() {
        // Four 15-min samples per hour, exactly the agent → repository path.
        let raw = TimeSeries::new(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            Frequency::QuarterHourly,
            0,
        );
        let hourly = raw.aggregate_mean(4, Frequency::Hourly);
        assert_eq!(hourly.values(), &[2.5, 10.0]);
        assert_eq!(hourly.frequency(), Frequency::Hourly);
    }

    #[test]
    fn aggregate_mean_skips_nan_and_drops_partial_bucket() {
        let raw = TimeSeries::new(
            vec![
                1.0,
                f64::NAN,
                3.0,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                f64::NAN,
                9.0,
            ],
            Frequency::QuarterHourly,
            0,
        );
        let hourly = raw.aggregate_mean(4, Frequency::Hourly);
        assert_eq!(hourly.len(), 2); // trailing single sample dropped
        assert_eq!(hourly.values()[0], 2.0); // mean of 1 and 3
        assert!(hourly.values()[1].is_nan()); // all-NaN bucket stays a gap
    }

    #[test]
    fn map_preserves_metadata() {
        let s = ts(vec![1.0, 2.0]);
        let doubled = s.map(|v| v * 2.0);
        assert_eq!(doubled.values(), &[2.0, 4.0]);
        assert_eq!(doubled.frequency(), s.frequency());
        assert_eq!(doubled.origin(), s.origin());
    }

    #[test]
    fn frequency_periods_match_paper() {
        assert_eq!(Frequency::Hourly.natural_period(), 24);
        assert_eq!(Frequency::Daily.natural_period(), 7);
        assert_eq!(Frequency::Monthly.natural_period(), 12);
    }

    #[test]
    fn serde_roundtrip() {
        let s = ts(vec![1.5, 2.5]);
        let json = serde_json::to_string(&s).unwrap();
        let back: TimeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
