//! Property tests pinning the FFT autocovariance path to the direct-sum
//! reference estimator.
//!
//! The public `acf` switches to an FFT-based autocovariance for long
//! series (the fleet hot path); `acf_direct` remains the small-n
//! implementation and the oracle here. The two must agree to within 1e-9
//! on arbitrary inputs — in practice they agree to ~1e-13 relative, but
//! 1e-9 is the contract the model grid relies on (significance-band
//! comparisons at ±1.96/√n scale).

use dwcp_series::{acf, acf_direct, pacf};
use proptest::prelude::*;

/// Series long enough to take the FFT path (crossover is 128), with a
/// level, a seasonal swing, a trend, and LCG noise so the draw space
/// covers flat, periodic and drifting shapes at different magnitudes.
fn long_series() -> impl Strategy<Value = Vec<f64>> {
    (
        -1e3f64..1e6,
        0.0f64..500.0,
        -2.0f64..2.0,
        130usize..1200,
        1u64..10_000,
    )
        .prop_map(|(level, amp, slope, n, seed)| {
            let mut state = seed;
            (0..n)
                .map(|t| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let noise = ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                    level
                        + slope * t as f64
                        + amp * (t as f64 / 24.0 * std::f64::consts::TAU).sin()
                        + noise * (amp + 1.0)
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_acf_matches_direct_sum((y, max_lag) in (long_series(), 1usize..64)) {
        let fast = acf(&y, max_lag).unwrap();
        let slow = acf_direct(&y, max_lag).unwrap();
        prop_assert_eq!(fast.len(), slow.len());
        for (k, (a, b)) in fast.iter().zip(&slow).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-9,
                "lag {}: fft {} vs direct {} (n = {})",
                k, a, b, y.len()
            );
        }
    }

    #[test]
    fn pacf_on_fft_path_stays_bounded(y in long_series()) {
        // PACF consumes the ACF; the FFT path must not push the
        // Durbin-Levinson recursion outside its domain.
        let p = pacf(&y, 40).unwrap();
        prop_assert_eq!(p[0], 1.0);
        for v in &p {
            prop_assert!(v.is_finite() && v.abs() <= 1.0 + 1e-9);
        }
    }
}
