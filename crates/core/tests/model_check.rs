//! Bounded model checking of the lock-free evaluator protocol.
//!
//! These tests drive the *production* champion-selection code —
//! [`dwcp_core::protocol::publish_min_rmse`] and
//! [`dwcp_core::protocol::score_order`] — through **every** interleaving of
//! their atomic operations (up to a schedule budget) using the vendored
//! `interleave` scheduler. Shared state lives in an instrumented atomic
//! whose each operation is a scheduling point, so the exploration
//! enumerates every serialisation of the load/CAS traffic the racing
//! workers can generate.
//!
//! What is proven (within the bounds):
//!
//! * the incumbent cell converges to the true minimum RMSE no matter how
//!   the publishers interleave;
//! * NaN / infinite / negative scores can never become the incumbent;
//! * an exact RMSE tie yields exactly one champion — the lower candidate
//!   index — under every interleaving of the result merge;
//! * the `fetch_add` work queue dispenses each candidate exactly once and
//!   workers on different tasks never touch each other's incumbents;
//! * the estate scheduler's wave checkpoint (`commit_wave`) never
//!   publishes a slot whose record is not durable, at every kill point —
//!   and the inverted publish-first variant is *caught* by exploration;
//! * the serve daemon's shutdown drain gate never drops a request that
//!   won the accept race, and an acceptor woken by the shutdown
//!   self-connect always observes the stop flag — while the old
//!   check-then-drop acceptor shape is caught;
//! * the alert re-fire hysteresis fires exactly once for identical
//!   concurrent observations, and an escalation always lands.

use dwcp_core::advisor::BreachSeverity;
use dwcp_core::protocol::{
    accept_one, alert_refire, commit_wave, decode_breach, publish_min_rmse, request_shutdown,
    resume_split, score_order, try_fire, DrainFlag, IncumbentCell, WaveLedger, BREACH_EMPTY,
};
use std::cmp::Ordering;
use std::sync::Arc;

/// The instrumented incumbent cell: `interleave::AtomicU64` with every
/// operation a scheduling point. Newtype because both the trait and the
/// atomic are foreign to this test crate.
#[derive(Debug)]
struct CheckedCell(interleave::AtomicU64);

impl CheckedCell {
    fn new() -> Self {
        CheckedCell(interleave::AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn value(&self) -> f64 {
        f64::from_bits(self.0.load())
    }
}

impl IncumbentCell for CheckedCell {
    fn load_bits(&self) -> u64 {
        self.0.load()
    }

    fn compare_exchange_bits(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0.compare_exchange(current, new)
    }
}

/// Exhaustive-exploration budget. Every scenario below asserts
/// `report.complete`, so this is a ceiling, not a sample size: if the
/// state space outgrew it the test would fail loudly rather than pass on
/// a subset.
const BUDGET: usize = 500_000;

#[test]
fn incumbent_is_exact_minimum_under_all_interleavings_of_two_publishers() {
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for rmse in [3.0_f64, 1.5_f64] {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, rmse));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 1.5));
    });
    assert!(report.complete, "state space exceeded the budget");
    assert!(report.schedules_explored >= 2);
}

#[test]
fn incumbent_is_exact_minimum_under_all_interleavings_of_three_publishers() {
    // Three workers race distinct scores; the published order the CAS
    // traffic resolves in varies per schedule, the final value must not.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for rmse in [4.0_f64, 0.25_f64, 2.0_f64] {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, rmse));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 0.25));
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn poisoned_scores_never_become_the_incumbent() {
    // One worker publishes garbage (NaN, -inf, negative) around a single
    // honest score; under no interleaving may the garbage land.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        let honest = Arc::clone(&cell);
        sch.thread(move || publish_min_rmse(&*honest, 2.0));
        let poison = Arc::clone(&cell);
        sch.thread(move || {
            publish_min_rmse(&*poison, f64::NAN);
            publish_min_rmse(&*poison, f64::NEG_INFINITY);
            publish_min_rmse(&*poison, -1.0);
        });
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 2.0));
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn exact_tie_yields_one_champion_the_lower_index() {
    // Two workers score candidates with bit-identical RMSE and publish
    // concurrently; whatever order the cell sees them in, the *champion
    // sort* must name candidate 3 (the lower index), and exactly one
    // champion exists.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, 1.0));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || {
            assert_eq!(cell.value(), 1.0);
            // The merge phase sorts (rmse, index); the tie resolves the
            // same way regardless of the publication order just explored.
            let mut scores = vec![(1.0_f64, 7_usize), (1.0_f64, 3_usize)];
            scores.sort_by(|a, b| score_order(a.0, a.1, b.0, b.1));
            let champions: Vec<usize> = scores
                .iter()
                .take_while(|s| score_order(s.0, s.1, scores[0].0, scores[0].1) == Ordering::Equal)
                .map(|s| s.1)
                .collect();
            assert_eq!(champions, vec![3], "exactly one champion, lower index");
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn work_queue_dispenses_each_candidate_exactly_once() {
    // The evaluator's chain queue is a fetch_add ticket dispenser. Under
    // every interleaving of two workers pulling from a 3-item queue, each
    // item is claimed exactly once and nothing is skipped.
    const ITEMS: usize = 3;
    let report = interleave::explore(BUDGET, |sch| {
        let next = Arc::new(interleave::AtomicUsize::new(0));
        let claims: Arc<Vec<interleave::AtomicUsize>> = Arc::new(
            (0..ITEMS)
                .map(|_| interleave::AtomicUsize::new(0))
                .collect(),
        );
        for _ in 0..2 {
            let next = Arc::clone(&next);
            let claims = Arc::clone(&claims);
            sch.thread(move || loop {
                let ticket = next.fetch_add(1);
                if ticket >= ITEMS {
                    break;
                }
                if let Some(slot) = claims.get(ticket) {
                    slot.fetch_add(1);
                }
            });
        }
        let claims = Arc::clone(&claims);
        sch.check(move || {
            for (i, slot) in claims.iter().enumerate() {
                assert_eq!(slot.load(), 1, "candidate {i} not claimed exactly once");
            }
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

// --- Wave-commit ledger (EstateScheduler checkpoint) ---

/// Instrumented ledger: one durability flag per slot plus the published
/// watermark, every operation a scheduling point. This is the model of
/// `fleet.rs`'s `RepoLedger` (repository store = record, checkpoint
/// append = publish) with a concurrent observer standing in for a
/// kill-and-resume at an arbitrary instant.
struct CheckedLedger {
    recorded: Vec<interleave::AtomicU64>,
    committed: interleave::AtomicU64,
}

impl CheckedLedger {
    fn new(slots: usize) -> Self {
        CheckedLedger {
            recorded: (0..slots).map(|_| interleave::AtomicU64::new(0)).collect(),
            committed: interleave::AtomicU64::new(0),
        }
    }
}

impl WaveLedger for CheckedLedger {
    fn record(&self, slot: usize) {
        if let Some(flag) = self.recorded.get(slot) {
            flag.store(1);
        }
    }

    fn publish(&self, count: usize) {
        self.committed.store(count as u64);
    }
}

/// The observer both tests share: read the published watermark at an
/// arbitrary scheduling point (≙ resume after a kill at that instant) and
/// demand every published slot is durable, with the resume split
/// partitioning the job list (no job lost, none double-fit).
fn resume_observer(ledger: &CheckedLedger, total: usize) {
    let committed = ledger.committed.load() as usize;
    let (skip, refit) = resume_split(total, committed);
    assert_eq!(skip + refit, total, "resume must partition the job list");
    for slot in 0..skip {
        assert_eq!(
            ledger.recorded.get(slot).map(|f| f.load()),
            Some(1),
            "published slot {slot} has no durable record"
        );
    }
}

#[test]
fn wave_commit_never_publishes_an_undurable_slot() {
    const SLOTS: usize = 2;
    let report = interleave::explore(BUDGET, |sch| {
        let ledger = Arc::new(CheckedLedger::new(SLOTS));
        let committer = Arc::clone(&ledger);
        sch.thread(move || commit_wave(&*committer, SLOTS));
        let observer = Arc::clone(&ledger);
        sch.thread(move || resume_observer(&observer, SLOTS));
    });
    assert!(report.complete, "state space exceeded the budget");
    assert!(report.schedules_explored >= 2);
}

#[test]
fn torn_wave_commit_is_caught_by_exploration() {
    // The seeded regression: publish the watermark *before* recording —
    // exactly the bug `commit_wave`'s ordering exists to prevent. The
    // explorer must find an interleaving where the observer resumes
    // between publish and record and sees a committed-but-lost champion.
    fn torn_commit(ledger: &CheckedLedger, count: usize) {
        ledger.publish(count);
        for slot in 0..count {
            ledger.record(slot);
        }
    }
    const SLOTS: usize = 2;
    let caught = std::panic::catch_unwind(|| {
        interleave::explore(BUDGET, |sch| {
            let ledger = Arc::new(CheckedLedger::new(SLOTS));
            let committer = Arc::clone(&ledger);
            sch.thread(move || torn_commit(&*committer, SLOTS));
            let observer = Arc::clone(&ledger);
            sch.thread(move || resume_observer(&observer, SLOTS));
        })
    });
    assert!(
        caught.is_err(),
        "exploration failed to catch the publish-before-record regression"
    );
}

// --- Shutdown drain gate (serve daemon acceptor / worker pool) ---

/// The instrumented stop flag: `interleave::AtomicBool` behind the same
/// trait the daemon's `std` flag implements.
#[derive(Debug, Default)]
struct CheckedFlag(interleave::AtomicBool);

impl DrainFlag for CheckedFlag {
    fn is_set(&self) -> bool {
        self.0.load()
    }

    fn set(&self) {
        self.0.store(true)
    }
}

#[test]
fn drain_gate_never_drops_a_request_that_won_the_accept_race() {
    // One real request has been accepted just as shutdown triggers. Under
    // every interleaving of the flag store, the wake, and the acceptor's
    // enqueue-then-check, the request reaches the worker queue (the pool
    // drains the queue before exiting, so enqueued means served).
    let report = interleave::explore(BUDGET, |sch| {
        let flag = Arc::new(CheckedFlag::default());
        let queue = Arc::new(interleave::AtomicU64::new(0));
        let wake = Arc::new(interleave::AtomicU64::new(0));

        let trigger_flag = Arc::clone(&flag);
        let trigger_wake = Arc::clone(&wake);
        sch.thread(move || request_shutdown(&*trigger_flag, || trigger_wake.store(1)));

        let acceptor_flag = Arc::clone(&flag);
        let acceptor_queue = Arc::clone(&queue);
        sch.thread(move || {
            // The stream is already accepted; the gate decides its fate.
            let _stop = accept_one(&*acceptor_flag, || {
                acceptor_queue.fetch_add(1);
                true
            });
        });

        let queue = Arc::clone(&queue);
        sch.check(move || {
            assert_eq!(queue.load(), 1, "accepted request was dropped");
        });
    });
    assert!(report.complete, "state space exceeded the budget");
    assert!(report.schedules_explored >= 2);
}

#[test]
fn drain_wake_always_observes_the_stop_flag() {
    // The trigger's flag-before-wake ordering: an acceptor unblocked by
    // the self-connect must see the flag already set, else it would park
    // in `accept` again and the daemon would never drain.
    let report = interleave::explore(BUDGET, |sch| {
        let flag = Arc::new(CheckedFlag::default());
        let wake = Arc::new(interleave::AtomicU64::new(0));

        let trigger_flag = Arc::clone(&flag);
        let trigger_wake = Arc::clone(&wake);
        sch.thread(move || request_shutdown(&*trigger_flag, || trigger_wake.store(1)));

        let acceptor_flag = Arc::clone(&flag);
        let acceptor_wake = Arc::clone(&wake);
        sch.thread(move || {
            if acceptor_wake.load() == 1 {
                // Woken by the shutdown connect: enqueue it, then the
                // gate must say stop.
                assert!(
                    accept_one(&*acceptor_flag, || true),
                    "woken acceptor did not observe the stop flag"
                );
            }
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn check_then_drop_acceptor_shape_is_caught_by_exploration() {
    // The seeded regression: the acceptor shape this PR replaced — consult
    // the flag first, drop the accepted stream if it is up. Exploration
    // must find the schedule where the trigger's store lands between the
    // accept and the check, losing the request.
    fn racy_accept(flag: &CheckedFlag, queue: &interleave::AtomicU64) {
        if flag.is_set() {
            return; // drops the accepted stream on the floor
        }
        queue.fetch_add(1);
    }
    let caught = std::panic::catch_unwind(|| {
        interleave::explore(BUDGET, |sch| {
            let flag = Arc::new(CheckedFlag::default());
            let queue = Arc::new(interleave::AtomicU64::new(0));
            let wake = Arc::new(interleave::AtomicU64::new(0));

            let trigger_flag = Arc::clone(&flag);
            let trigger_wake = Arc::clone(&wake);
            sch.thread(move || request_shutdown(&*trigger_flag, || trigger_wake.store(1)));

            let acceptor_flag = Arc::clone(&flag);
            let acceptor_queue = Arc::clone(&queue);
            sch.thread(move || racy_accept(&acceptor_flag, &acceptor_queue));

            let queue = Arc::clone(&queue);
            sch.check(move || {
                assert_eq!(queue.load(), 1, "accepted request was dropped");
            });
        })
    });
    assert!(
        caught.is_err(),
        "exploration failed to catch the check-then-drop acceptor"
    );
}

// --- Alert re-fire hysteresis (AlertEngine under concurrent pushes) ---

/// A claim cell seeded [`BREACH_EMPTY`] (the incumbent `CheckedCell`
/// seeds +inf bits, which decodes as an occupied breach state).
fn empty_breach_cell() -> CheckedCell {
    CheckedCell(interleave::AtomicU64::new(BREACH_EMPTY))
}

#[test]
fn alert_hysteresis_fires_exactly_once_for_identical_observations() {
    // Two pushers observe the same fresh breach concurrently; whatever
    // order their load/CAS traffic resolves in, exactly one fires.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(empty_breach_cell());
        let fires = Arc::new(interleave::AtomicU64::new(0));
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            let fires = Arc::clone(&fires);
            sch.thread(move || {
                if try_fire(&*cell, 1, BreachSeverity::Possible) {
                    fires.fetch_add(1);
                }
            });
        }
        let cell = Arc::clone(&cell);
        let fires = Arc::clone(&fires);
        sch.check(move || {
            assert_eq!(fires.load(), 1, "identical observations must fire once");
            assert_eq!(
                decode_breach(cell.0.load()),
                Some((1, BreachSeverity::Possible))
            );
        });
    });
    assert!(report.complete, "state space exceeded the budget");
    assert!(report.schedules_explored >= 2);
}

#[test]
fn alert_hysteresis_escalation_always_lands() {
    // A Possible and an Expected observation of the same step race. The
    // escalation must always fire (it is news under either order), the
    // weaker call fires only if it got there first, and the cell always
    // converges to the escalated state.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(empty_breach_cell());
        let weak_fired = Arc::new(interleave::AtomicU64::new(0));
        let strong_fired = Arc::new(interleave::AtomicU64::new(0));

        let weak_cell = Arc::clone(&cell);
        let weak = Arc::clone(&weak_fired);
        sch.thread(move || {
            if try_fire(&*weak_cell, 1, BreachSeverity::Possible) {
                weak.fetch_add(1);
            }
        });
        let strong_cell = Arc::clone(&cell);
        let strong = Arc::clone(&strong_fired);
        sch.thread(move || {
            if try_fire(&*strong_cell, 1, BreachSeverity::Expected) {
                strong.fetch_add(1);
            }
        });

        let cell = Arc::clone(&cell);
        let weak = Arc::clone(&weak_fired);
        let strong = Arc::clone(&strong_fired);
        sch.check(move || {
            assert_eq!(strong.load(), 1, "an escalation must always land");
            assert!(weak.load() <= 1);
            assert_eq!(
                decode_breach(cell.0.load()),
                Some((1, BreachSeverity::Expected)),
                "cell must converge to the escalated state"
            );
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn hysteresis_decision_is_antisymmetric_under_racing_orders() {
    // Sequential sanity on the shared decision fn the engine's mutex path
    // uses directly: replaying both serialisations of the race above
    // through `alert_refire` yields the same final judgement the
    // lock-free claim converged to.
    use BreachSeverity::{Expected, Possible};
    // Possible first, then Expected: both fire.
    assert!(alert_refire(None, 1, Possible));
    assert!(alert_refire(Some((1, Possible)), 1, Expected));
    // Expected first: the weaker observation is silenced.
    assert!(alert_refire(None, 1, Expected));
    assert!(!alert_refire(Some((1, Expected)), 1, Possible));
}

#[test]
fn per_task_incumbents_are_isolated() {
    // Fleet jobs each own an incumbent cell; a worker publishing into one
    // task's cell must never perturb another's, under any interleaving.
    let report = interleave::explore(BUDGET, |sch| {
        let task_a = Arc::new(CheckedCell::new());
        let task_b = Arc::new(CheckedCell::new());
        let a = Arc::clone(&task_a);
        sch.thread(move || publish_min_rmse(&*a, 1.0));
        let b = Arc::clone(&task_b);
        sch.thread(move || publish_min_rmse(&*b, 9.0));
        let (a, b) = (Arc::clone(&task_a), Arc::clone(&task_b));
        sch.check(move || {
            assert_eq!(a.value(), 1.0);
            assert_eq!(b.value(), 9.0);
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}
