//! Bounded model checking of the lock-free evaluator protocol.
//!
//! These tests drive the *production* champion-selection code —
//! [`dwcp_core::protocol::publish_min_rmse`] and
//! [`dwcp_core::protocol::score_order`] — through **every** interleaving of
//! their atomic operations (up to a schedule budget) using the vendored
//! `interleave` scheduler. Shared state lives in an instrumented atomic
//! whose each operation is a scheduling point, so the exploration
//! enumerates every serialisation of the load/CAS traffic the racing
//! workers can generate.
//!
//! What is proven (within the bounds):
//!
//! * the incumbent cell converges to the true minimum RMSE no matter how
//!   the publishers interleave;
//! * NaN / infinite / negative scores can never become the incumbent;
//! * an exact RMSE tie yields exactly one champion — the lower candidate
//!   index — under every interleaving of the result merge;
//! * the `fetch_add` work queue dispenses each candidate exactly once and
//!   workers on different tasks never touch each other's incumbents.

use dwcp_core::protocol::{publish_min_rmse, score_order, IncumbentCell};
use std::cmp::Ordering;
use std::sync::Arc;

/// The instrumented incumbent cell: `interleave::AtomicU64` with every
/// operation a scheduling point. Newtype because both the trait and the
/// atomic are foreign to this test crate.
#[derive(Debug)]
struct CheckedCell(interleave::AtomicU64);

impl CheckedCell {
    fn new() -> Self {
        CheckedCell(interleave::AtomicU64::new(f64::INFINITY.to_bits()))
    }

    fn value(&self) -> f64 {
        f64::from_bits(self.0.load())
    }
}

impl IncumbentCell for CheckedCell {
    fn load_bits(&self) -> u64 {
        self.0.load()
    }

    fn compare_exchange_bits(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.0.compare_exchange(current, new)
    }
}

/// Exhaustive-exploration budget. Every scenario below asserts
/// `report.complete`, so this is a ceiling, not a sample size: if the
/// state space outgrew it the test would fail loudly rather than pass on
/// a subset.
const BUDGET: usize = 500_000;

#[test]
fn incumbent_is_exact_minimum_under_all_interleavings_of_two_publishers() {
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for rmse in [3.0_f64, 1.5_f64] {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, rmse));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 1.5));
    });
    assert!(report.complete, "state space exceeded the budget");
    assert!(report.schedules_explored >= 2);
}

#[test]
fn incumbent_is_exact_minimum_under_all_interleavings_of_three_publishers() {
    // Three workers race distinct scores; the published order the CAS
    // traffic resolves in varies per schedule, the final value must not.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for rmse in [4.0_f64, 0.25_f64, 2.0_f64] {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, rmse));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 0.25));
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn poisoned_scores_never_become_the_incumbent() {
    // One worker publishes garbage (NaN, -inf, negative) around a single
    // honest score; under no interleaving may the garbage land.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        let honest = Arc::clone(&cell);
        sch.thread(move || publish_min_rmse(&*honest, 2.0));
        let poison = Arc::clone(&cell);
        sch.thread(move || {
            publish_min_rmse(&*poison, f64::NAN);
            publish_min_rmse(&*poison, f64::NEG_INFINITY);
            publish_min_rmse(&*poison, -1.0);
        });
        let cell = Arc::clone(&cell);
        sch.check(move || assert_eq!(cell.value(), 2.0));
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn exact_tie_yields_one_champion_the_lower_index() {
    // Two workers score candidates with bit-identical RMSE and publish
    // concurrently; whatever order the cell sees them in, the *champion
    // sort* must name candidate 3 (the lower index), and exactly one
    // champion exists.
    let report = interleave::explore(BUDGET, |sch| {
        let cell = Arc::new(CheckedCell::new());
        for _ in 0..2 {
            let cell = Arc::clone(&cell);
            sch.thread(move || publish_min_rmse(&*cell, 1.0));
        }
        let cell = Arc::clone(&cell);
        sch.check(move || {
            assert_eq!(cell.value(), 1.0);
            // The merge phase sorts (rmse, index); the tie resolves the
            // same way regardless of the publication order just explored.
            let mut scores = vec![(1.0_f64, 7_usize), (1.0_f64, 3_usize)];
            scores.sort_by(|a, b| score_order(a.0, a.1, b.0, b.1));
            let champions: Vec<usize> = scores
                .iter()
                .take_while(|s| score_order(s.0, s.1, scores[0].0, scores[0].1) == Ordering::Equal)
                .map(|s| s.1)
                .collect();
            assert_eq!(champions, vec![3], "exactly one champion, lower index");
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn work_queue_dispenses_each_candidate_exactly_once() {
    // The evaluator's chain queue is a fetch_add ticket dispenser. Under
    // every interleaving of two workers pulling from a 3-item queue, each
    // item is claimed exactly once and nothing is skipped.
    const ITEMS: usize = 3;
    let report = interleave::explore(BUDGET, |sch| {
        let next = Arc::new(interleave::AtomicUsize::new(0));
        let claims: Arc<Vec<interleave::AtomicUsize>> = Arc::new(
            (0..ITEMS)
                .map(|_| interleave::AtomicUsize::new(0))
                .collect(),
        );
        for _ in 0..2 {
            let next = Arc::clone(&next);
            let claims = Arc::clone(&claims);
            sch.thread(move || loop {
                let ticket = next.fetch_add(1);
                if ticket >= ITEMS {
                    break;
                }
                if let Some(slot) = claims.get(ticket) {
                    slot.fetch_add(1);
                }
            });
        }
        let claims = Arc::clone(&claims);
        sch.check(move || {
            for (i, slot) in claims.iter().enumerate() {
                assert_eq!(slot.load(), 1, "candidate {i} not claimed exactly once");
            }
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}

#[test]
fn per_task_incumbents_are_isolated() {
    // Fleet jobs each own an incumbent cell; a worker publishing into one
    // task's cell must never perturb another's, under any interleaving.
    let report = interleave::explore(BUDGET, |sch| {
        let task_a = Arc::new(CheckedCell::new());
        let task_b = Arc::new(CheckedCell::new());
        let a = Arc::clone(&task_a);
        sch.thread(move || publish_min_rmse(&*a, 1.0));
        let b = Arc::clone(&task_b);
        sch.thread(move || publish_min_rmse(&*b, 9.0));
        let (a, b) = (Arc::clone(&task_a), Arc::clone(&task_b));
        sch.check(move || {
            assert_eq!(a.value(), 1.0);
            assert_eq!(b.value(), 9.0);
        });
    });
    assert!(report.complete, "state space exceeded the budget");
}
