//! The dwcp capacity planner — the paper's primary contribution.
//!
//! §5: "This section … details how we propose to use machine learning to
//! automate the forecasts, and algorithmically how we are able to discover
//! the models, removing the need for the user to have an intrinsic
//! understanding of the complexities of time series analysis."
//!
//! The crate implements the Figure 4 workflow end to end:
//!
//! * [`grid`] — the §6.3 model spaces: exactly 180 ARIMA, 660 SARIMAX and
//!   666 SARIMAX+Exogenous+Fourier candidates per instance, plus the
//!   correlogram-based pruning that "reduc\[es\] the thousands of potential
//!   models considerably",
//! * [`candidates`] — data-driven self-configuration: ADF-chosen
//!   differencing, detected seasonality, significant ACF/PACF lags,
//! * [`auto_order`] — interpretable auto order selection: ADF/KPSS-chosen
//!   differencing and PACF/ACF cut-offs seed a small neighbourhood grid in
//!   place of the 180-model sweep, insured by a naive-benchmark fallback,
//! * [`evaluate`] — parallel fitting of a candidate set and RMSE champion
//!   selection ("gains are also achieved by parallel processing the
//!   models"),
//! * [`pipeline`] — the user-facing HES / SARIMAX branch of Figure 4:
//!   gather → interpolate → split → fit → score → forecast,
//! * [`fleet`] — batch scheduling of many (instance, metric, granularity)
//!   series on one shared worker pool, with repository-backed
//!   champion-seeded relearning (§5.1's weekly relearn as a local
//!   refinement),
//! * [`repository`] — the model repository with the one-week staleness
//!   rule, the RMSE-degradation relearn trigger and the >3-occurrence
//!   shock-acceptance policy (§5.1, §9),
//! * [`advisor`] — proactive threshold-breach warnings (§8's short-term
//!   monitoring use case),
//! * [`alerts`] — named alert rules over live forecasts with re-fire
//!   hysteresis (the resident layer above [`advisor`]),
//! * [`engine`] — the staged ingest→aggregate→score→alert engine shared
//!   by the batch pipeline and the resident `dwcp serve` daemon, with
//!   frozen-champion incremental re-scoring.
#![forbid(unsafe_code)]

pub mod advisor;
pub mod alerts;
pub mod auto_order;
pub mod backtest;
pub mod candidates;
pub mod diagnostics;
pub mod engine;
pub mod evaluate;
pub mod fleet;
pub mod grid;
pub mod pipeline;
pub mod protocol;
pub mod repository;
pub mod shocks;

pub use advisor::{Advisory, ThresholdAdvisor};
pub use alerts::{AlertEngine, AlertRule, CapacityAlert};
pub use auto_order::{
    evaluate_auto_order, AutoOrderOptions, AutoOrderPlan, AutoOrderReport, SeasonalDiagnostics,
};
pub use backtest::{backtest, BacktestConfig, BacktestReport};
pub use candidates::{CandidateSet, DataProfile};
pub use diagnostics::{assess, HealthReport, HealthThresholds, HealthVerdict};
pub use engine::{
    AlertStage, Engine, EngineConfig, IngestStage, LiveForecast, ScoreAction, ScoreSummary,
    StepOutcome, WorkloadStatus,
};
pub use evaluate::{
    evaluate_candidates, evaluate_fleet, EvalStats, EvalTask, EvaluationOptions, EvaluationReport,
    FamilyStats, ModelScore,
};
pub use fleet::{
    run_batch_on, Checkpoint, EstateScheduler, FleetOptions, FleetReport, FleetScheduler,
    JobResult, JobSource, SeriesJob, SliceJobSource, WaveOptions, WaveProgress, WaveReport,
};
pub use grid::{dedupe_candidates, CandidateModel, ModelConfig, ModelFamily, ModelGrid};
pub use pipeline::{
    ChampionSpec, ForecastOutcome, GridStrategy, MethodChoice, Pipeline, PipelineConfig,
};
pub use repository::{
    shard_of, ChampionStore, CompactionPolicy, ModelRecord, ModelRepository, RetentionPolicy,
    ShardIoStats, ShardedRepository, ShockTracker,
};
pub use shocks::{DetectedShock, ShockDetector};

/// Errors from the planner.
#[derive(Debug)]
pub enum PlannerError {
    /// No candidate model could be fitted at all.
    NoViableModel {
        /// How many candidates were attempted.
        attempted: usize,
    },
    /// Propagated model error.
    Model(dwcp_models::ModelError),
    /// Propagated series error.
    Series(dwcp_series::SeriesError),
    /// Repository persistence failure.
    Persistence(String),
    /// An internal invariant was violated (a "cannot happen" path reached
    /// through a bug). Surfaced as a typed error instead of a panic so one
    /// broken job can never abort a whole fleet batch.
    Internal {
        /// What was expected to hold.
        context: &'static str,
    },
}

impl std::fmt::Display for PlannerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlannerError::NoViableModel { attempted } => {
                write!(
                    f,
                    "none of the {attempted} candidate models could be fitted"
                )
            }
            PlannerError::Model(e) => write!(f, "model error: {e}"),
            PlannerError::Series(e) => write!(f, "series error: {e}"),
            PlannerError::Persistence(e) => write!(f, "persistence error: {e}"),
            PlannerError::Internal { context } => {
                write!(f, "internal invariant violated: {context}")
            }
        }
    }
}

impl std::error::Error for PlannerError {}

impl From<dwcp_models::ModelError> for PlannerError {
    fn from(e: dwcp_models::ModelError) -> Self {
        PlannerError::Model(e)
    }
}

impl From<dwcp_series::SeriesError> for PlannerError {
    fn from(e: dwcp_series::SeriesError) -> Self {
        PlannerError::Series(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, PlannerError>;
