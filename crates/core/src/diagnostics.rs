//! Champion health diagnostics.
//!
//! §9: "we continually assess the models performance through Machine
//! Learning to account for new behaviours the data (system) may adopt".
//! The repository's RMSE-degradation rule needs a live health reading;
//! this module produces it from a champion's recent one-step errors:
//! whiteness (Ljung-Box), bias, and error scale versus the fit-time
//! baseline, folded into a single verdict.

use crate::Result;
use dwcp_series::acf::ljung_box;
use serde::{Deserialize, Serialize};

/// Overall verdict on a serving model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HealthVerdict {
    /// Errors look like white noise at the expected scale.
    Healthy,
    /// Structure or bias has appeared but the scale is still tolerable —
    /// worth watching.
    Degrading,
    /// The model is no longer fit for purpose; relearn now.
    Unfit,
}

/// A model-health report computed from recent forecast errors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthReport {
    /// Root mean squared recent error.
    pub rmse: f64,
    /// Ratio of recent RMSE to the fit-time baseline.
    pub rmse_ratio: f64,
    /// Mean error (signed bias).
    pub bias: f64,
    /// Bias as a fraction of the RMSE (|bias|/rmse).
    pub bias_share: f64,
    /// Ljung-Box p-value on the recent errors (low = leftover structure).
    pub ljung_box_p: f64,
    /// The folded verdict.
    pub verdict: HealthVerdict,
    /// Number of errors examined.
    pub n: usize,
}

/// Diagnostic thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HealthThresholds {
    /// RMSE ratio above which the model is `Unfit` (matches the
    /// repository's default degradation factor).
    pub unfit_rmse_ratio: f64,
    /// RMSE ratio above which the model is `Degrading`.
    pub degrading_rmse_ratio: f64,
    /// Ljung-Box p-value below which structure is flagged.
    pub whiteness_p: f64,
    /// |bias|/rmse above which bias is flagged.
    pub bias_share: f64,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            unfit_rmse_ratio: 2.0,
            degrading_rmse_ratio: 1.3,
            whiteness_p: 0.01,
            bias_share: 0.5,
        }
    }
}

/// Assess a serving champion from its recent one-step forecast errors
/// (`actual − forecast`) against its fit-time `baseline_rmse`.
pub fn assess(
    errors: &[f64],
    baseline_rmse: f64,
    thresholds: &HealthThresholds,
) -> Result<HealthReport> {
    if errors.len() < 16 {
        return Err(crate::PlannerError::Series(
            dwcp_series::SeriesError::TooShort {
                needed: 16,
                got: errors.len(),
            },
        ));
    }
    let n = errors.len();
    let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / n as f64).sqrt();
    let bias = errors.iter().sum::<f64>() / n as f64;
    let bias_share = if rmse > 0.0 { bias.abs() / rmse } else { 0.0 };
    let lags = (n / 4).clamp(4, 12);
    let (_, ljung_box_p) = ljung_box(errors, lags, 0)?;
    let rmse_ratio = if baseline_rmse > 0.0 {
        rmse / baseline_rmse
    } else {
        1.0
    };

    let verdict = if rmse_ratio > thresholds.unfit_rmse_ratio {
        HealthVerdict::Unfit
    } else if rmse_ratio > thresholds.degrading_rmse_ratio
        || ljung_box_p < thresholds.whiteness_p
        || bias_share > thresholds.bias_share
    {
        HealthVerdict::Degrading
    } else {
        HealthVerdict::Healthy
    };
    Ok(HealthReport {
        rmse,
        rmse_ratio,
        bias,
        bias_share,
        ljung_box_p,
        verdict,
        n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64, scale: f64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5) * scale
            })
            .collect()
    }

    #[test]
    fn white_errors_at_baseline_are_healthy() {
        let e = noise(100, 1, 2.0);
        let baseline = (e.iter().map(|v| v * v).sum::<f64>() / 100.0).sqrt();
        let report = assess(&e, baseline, &HealthThresholds::default()).unwrap();
        assert_eq!(report.verdict, HealthVerdict::Healthy, "{report:?}");
        assert!((report.rmse_ratio - 1.0).abs() < 0.05);
    }

    #[test]
    fn doubled_error_scale_is_unfit() {
        let e = noise(100, 3, 4.0);
        let baseline = (e.iter().map(|v| v * v).sum::<f64>() / 100.0).sqrt() / 2.5;
        let report = assess(&e, baseline, &HealthThresholds::default()).unwrap();
        assert_eq!(report.verdict, HealthVerdict::Unfit);
    }

    #[test]
    fn systematic_bias_is_flagged() {
        // Errors all on one side: the model lags a trend it missed.
        let e: Vec<f64> = noise(100, 5, 0.4).iter().map(|v| v + 1.0).collect();
        let baseline = (e.iter().map(|v| v * v).sum::<f64>() / 100.0).sqrt();
        let report = assess(&e, baseline, &HealthThresholds::default()).unwrap();
        assert!(report.bias_share > 0.5);
        assert_ne!(report.verdict, HealthVerdict::Healthy);
    }

    #[test]
    fn autocorrelated_errors_fail_whiteness() {
        // Residual seasonality the champion stopped capturing.
        let e: Vec<f64> = (0..120)
            .map(|t| (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin() * 2.0)
            .collect();
        let baseline = (e.iter().map(|v| v * v).sum::<f64>() / 120.0).sqrt();
        let report = assess(&e, baseline, &HealthThresholds::default()).unwrap();
        assert!(report.ljung_box_p < 0.01);
        assert_eq!(report.verdict, HealthVerdict::Degrading);
    }

    #[test]
    fn needs_enough_errors() {
        assert!(assess(&[1.0; 5], 1.0, &HealthThresholds::default()).is_err());
    }

    #[test]
    fn custom_thresholds_change_the_verdict() {
        let e = noise(100, 7, 2.0);
        let baseline = (e.iter().map(|v| v * v).sum::<f64>() / 100.0).sqrt() / 1.5;
        let strict = HealthThresholds {
            unfit_rmse_ratio: 1.4,
            ..Default::default()
        };
        let lax = HealthThresholds {
            unfit_rmse_ratio: 5.0,
            degrading_rmse_ratio: 4.0,
            ..Default::default()
        };
        assert_eq!(
            assess(&e, baseline, &strict).unwrap().verdict,
            HealthVerdict::Unfit
        );
        assert_ne!(
            assess(&e, baseline, &lax).unwrap().verdict,
            HealthVerdict::Unfit
        );
    }
}
