//! Interpretable automatic ARIMA order selection (§6.3's correlogram
//! pruning, taken to its conclusion).
//!
//! The 180-model sweep evaluates every `(p, d, q)` in `p ∈ 1..=30`,
//! `d ∈ {0,1}`, `q ∈ {0,1,2}` — but the classical Box-Jenkins diagnostics
//! already say which corner of that cube a series lives in: unit-root
//! tests (ADF and KPSS) decide the differencing order, the PACF of the
//! differenced series marks the plausible AR cut-offs, and the ACF marks
//! the MA cut-off. [`AutoOrderPlan::analyze`] turns those three readings
//! into a seeded neighbourhood grid of at most `max_candidates` models
//! (the acceptance budget is 40 % of the full sweep), and
//! [`evaluate_auto_order`] evaluates it with the same engine, champion
//! selection and determinism guarantees as the full sweep.
//!
//! Pruning is a bet, so it carries the same insurance as champion-seeded
//! relearning ([`crate::fleet`]): the pruned champion's held-out RMSE must
//! beat a naive benchmark forecast (random walk, with drift when the
//! series was differenced, or the seasonal-naive repeat when the caller
//! names a period) scaled by a degradation factor — otherwise the full
//! grid is evaluated as a fallback and the better champion wins. A series
//! whose structure the correlogram heuristics miss therefore costs one
//! extra sweep instead of silently losing accuracy.

use crate::evaluate::{evaluate_candidates, EvaluationOptions, EvaluationReport};
use crate::grid::{CandidateModel, ModelConfig, ModelFamily, ModelGrid};
use crate::Result;
use dwcp_models::{ArimaSpec, SarimaxConfig};
use dwcp_series::diff::difference;
use dwcp_series::stationarity::AdfRegression;
use dwcp_series::{adf_test, kpss_test, Correlogram};

/// The AR-order search ceiling — the full grid's `p ∈ 1..=30`.
const MAX_P: usize = 30;
/// The MA-order ceiling — the full grid's `q ∈ {0,1,2}`.
const MAX_Q: usize = 2;

/// Tuning knobs for the auto-order search.
#[derive(Debug, Clone)]
pub struct AutoOrderOptions {
    /// Cap on seeded candidates (default 72 — 40 % of the 180 sweep).
    pub max_candidates: usize,
    /// The pruned champion must reach `benchmark_rmse × degradation_factor`
    /// or the full grid is evaluated as a fallback. `1.0` means "beat the
    /// naive forecast outright"; lower is stricter.
    pub degradation_factor: f64,
    /// Seasonal period for the naive benchmark (`None` = random walk /
    /// drift only). A seasonal benchmark makes the degradation guard catch
    /// pruned grids that missed the seasonality.
    pub benchmark_period: Option<usize>,
    /// Seasonal period for order seeding (`None` = plain ARIMA orders
    /// only, the legacy behaviour). When set, the seasonal-lag ACF/PACF
    /// seed `(P, D, Q)` the same way the non-seasonal correlogram seeds
    /// `(p, d, q)` — see [`AutoOrderPlan::analyze_seasonal`].
    pub seasonal_period: Option<usize>,
}

impl Default for AutoOrderOptions {
    fn default() -> AutoOrderOptions {
        AutoOrderOptions {
            max_candidates: 72,
            degradation_factor: 1.0,
            benchmark_period: None,
            seasonal_period: None,
        }
    }
}

/// The seasonal order decisions read off the seasonal-lag correlogram —
/// the §6.3 lattice's `(P, D, Q)`, diagnosed instead of enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeasonalDiagnostics {
    /// The seasonal period `m` the lags were read at.
    pub period: usize,
    /// Seasonal differencing order: 1 when the ACF at lags `m` and `2m`
    /// is significantly positive at both (a persistent seasonal level),
    /// else 0.
    pub seasonal_d: usize,
    /// Whether the PACF at lag `m` of the (seasonally) differenced series
    /// is significant — admits `P = 1` candidates.
    pub p_seasonal: bool,
    /// Whether the ACF at lag `m` of the (seasonally) differenced series
    /// is significant — admits `Q = 1` candidates.
    pub q_seasonal: bool,
}

impl SeasonalDiagnostics {
    /// The `(P, D, Q)` variants the diagnostics admit, plain `(0,0,0)`
    /// always first (the non-seasonal bet stays on the table).
    fn variants(&self) -> Vec<(usize, usize, usize)> {
        let mut out = vec![(0, 0, 0)];
        let p_opts: &[usize] = if self.p_seasonal { &[0, 1] } else { &[0] };
        let q_opts: &[usize] = if self.q_seasonal { &[0, 1] } else { &[0] };
        for &sp in p_opts {
            for &sq in q_opts {
                if (sp, self.seasonal_d, sq) != (0, 0, 0) {
                    out.push((sp, self.seasonal_d, sq));
                }
            }
        }
        out
    }
}

/// The interpretable order decisions behind a seeded grid: every field is
/// a classical diagnostic a practitioner could read off the correlogram.
#[derive(Debug, Clone)]
pub struct AutoOrderPlan {
    /// Differencing order from the ADF/KPSS agreement rule.
    pub d: usize,
    /// Whether the ADF test called the undifferenced series stationary.
    pub adf_stationary: bool,
    /// Whether the KPSS test rejected stationarity of the undifferenced
    /// series.
    pub kpss_rejected: bool,
    /// Seeded AR orders, ascending: the significant PACF lags of the
    /// differenced series (strongest first under the budget) and their ±1
    /// neighbours.
    pub p_set: Vec<usize>,
    /// MA ceiling: the largest significant ACF lag ≤ 2.
    pub q_max: usize,
    /// Seasonal order diagnostics, present when a period was supplied and
    /// the series is long enough to read the seasonal lags.
    pub seasonal: Option<SeasonalDiagnostics>,
    /// The seeded candidate grid, deterministic order.
    pub grid: ModelGrid,
}

impl AutoOrderPlan {
    /// Read the order diagnostics off `train` and seed the neighbourhood
    /// grid, at most `max_candidates` strong.
    ///
    /// * `d` — 0 only when ADF says stationary **and** KPSS does not
    ///   reject it; any disagreement differences once (the conservative
    ///   reading of the pair, and the full grid's `d` ceiling).
    /// * `p` — significant PACF lags of the `d`-differenced series, taken
    ///   strongest-|PACF| first while the budget lasts, each bringing its
    ///   ±1 neighbours (an order cut-off read off a finite-sample PACF is
    ///   easily off by one). A flat PACF (white noise) seeds `{1, 2, 3}`,
    ///   matching [`ModelGrid::prune`]'s degenerate case.
    /// * `q` — the classical ACF cut-off, capped at the grid's `q ≤ 2`.
    pub fn analyze(train: &[f64], max_candidates: usize) -> Result<AutoOrderPlan> {
        AutoOrderPlan::analyze_seasonal(train, max_candidates, None)
    }

    /// [`AutoOrderPlan::analyze`] plus seasonal order seeding: with a
    /// period `m`, the seasonal lags of the correlogram are read the same
    /// way the short lags seed `(p, d, q)`:
    ///
    /// * `D` — 1 when the ACF is significantly **positive** at both `m`
    ///   and `2m` (a seasonal pattern that persists across cycles, the
    ///   seasonal analogue of a unit root), else 0.
    /// * `P` — `{0, 1}` when the PACF at lag `m` of the seasonally
    ///   differenced series is still significant, else `{0}`.
    /// * `Q` — `{0, 1}` when the ACF at lag `m` is still significant,
    ///   else `{0}`.
    ///
    /// The admitted `(P, D, Q)` variants multiply the non-seasonal grid
    /// (plain `(0,0,0)` always stays in the race), and the AR budget
    /// shrinks to keep the total under `max_candidates`. A series too
    /// short to read lag `2m` (fewer than `4m + 2` differenced points)
    /// falls back to the non-seasonal analysis. `period = None` is
    /// exactly the legacy [`AutoOrderPlan::analyze`].
    pub fn analyze_seasonal(
        train: &[f64],
        max_candidates: usize,
        period: Option<usize>,
    ) -> Result<AutoOrderPlan> {
        let adf_stationary = adf_test(train, None, AdfRegression::Constant)
            .map(|r| r.stationary)
            .unwrap_or(false);
        let kpss_rejected = kpss_test(train, false).map(|r| r.rejected).unwrap_or(true);
        let d = usize::from(!adf_stationary || kpss_rejected);

        let mut w: Vec<f64> = if d == 0 {
            train.to_vec()
        } else {
            difference(train, 1)
        };

        // Seasonal diagnostics: read lags m and 2m off the d-differenced
        // series, decide D, then (on the seasonally differenced series if
        // D = 1) whether P and Q candidates are warranted. Guarded so the
        // non-seasonal correlogram below always has enough points.
        let mut seasonal = None;
        if let Some(m) = period {
            if m >= 2 && w.len() >= 4 * m + 2 && w.len() - m > MAX_P + 1 {
                let c1 = Correlogram::compute(&w, 2 * m)?;
                let acf_m = c1.acf.get(m).copied().unwrap_or(0.0);
                let acf_2m = c1.acf.get(2 * m).copied().unwrap_or(0.0);
                let seasonal_d = usize::from(acf_m > c1.significance && acf_2m > c1.significance);
                let c2;
                let c_after = if seasonal_d == 1 {
                    w = difference(&w, m);
                    c2 = Correlogram::compute(&w, m)?;
                    &c2
                } else {
                    &c1
                };
                let significant =
                    |v: Option<&f64>| v.map(|v| v.abs() > c_after.significance).unwrap_or(false);
                seasonal = Some(SeasonalDiagnostics {
                    period: m,
                    seasonal_d,
                    p_seasonal: significant(c_after.pacf.get(m)),
                    q_seasonal: significant(c_after.acf.get(m)),
                });
            }
        }
        let variants = seasonal
            .as_ref()
            .map(SeasonalDiagnostics::variants)
            .unwrap_or_else(|| vec![(0, 0, 0)]);

        let corr = Correlogram::compute(&w, MAX_P)?;
        let q_max = corr.suggested_ma_order(MAX_Q);

        // Rank significant PACF lags strongest first (ties to the shorter
        // lag), then spend the candidate budget on them and their ±1
        // neighbours.
        let mut ranked: Vec<usize> = corr
            .significant_pacf_lags()
            .into_iter()
            .filter(|&l| l <= MAX_P)
            .collect();
        let strength = |lag: usize| corr.pacf.get(lag).map(|v| v.abs()).unwrap_or(0.0);
        ranked.sort_by(|&a, &b| dwcp_math::total_cmp_f64(strength(b), strength(a)).then(a.cmp(&b)));
        let budget = (max_candidates / ((q_max + 1) * variants.len())).max(1);
        let mut p_set: Vec<usize> = Vec::new();
        let admit = |p_set: &mut Vec<usize>, p: usize| {
            if (1..=MAX_P).contains(&p) && p_set.len() < budget && !p_set.contains(&p) {
                p_set.push(p);
            }
        };
        for &lag in &ranked {
            admit(&mut p_set, lag);
            admit(&mut p_set, lag.saturating_sub(1));
            admit(&mut p_set, lag + 1);
        }
        if p_set.is_empty() {
            for p in 1..=3 {
                admit(&mut p_set, p);
            }
        }
        p_set.sort_unstable();

        let mut candidates = Vec::with_capacity(p_set.len() * (q_max + 1) * variants.len());
        for &p in &p_set {
            for q in 0..=q_max {
                for &(sp, sd, sq) in &variants {
                    let (family, spec) = if (sp, sd, sq) == (0, 0, 0) {
                        (ModelFamily::Arima, ArimaSpec::arima(p, d, q))
                    } else {
                        let m = seasonal.map(|s| s.period).unwrap_or(1);
                        (
                            ModelFamily::Sarimax,
                            ArimaSpec::sarima(p, d, q, sp, sd, sq, m),
                        )
                    };
                    candidates.push(CandidateModel {
                        family,
                        config: ModelConfig::Sarimax(SarimaxConfig::plain(spec)),
                    });
                }
            }
        }
        Ok(AutoOrderPlan {
            d,
            adf_stationary,
            kpss_rejected,
            p_set,
            q_max,
            seasonal,
            grid: ModelGrid { candidates },
        })
    }
}

/// The outcome of an auto-order evaluation.
#[derive(Debug)]
pub struct AutoOrderReport {
    /// The evaluation — the seeded grid alone, or (after a fallback) the
    /// seeded grid absorbed into the full sweep, champion = best of both.
    pub report: EvaluationReport,
    /// The order diagnostics and the seeded grid they produced.
    pub plan: AutoOrderPlan,
    /// The naive benchmark RMSE the degradation guard compared against.
    pub benchmark_rmse: f64,
    /// Whether the seeded champion degraded past the threshold and the
    /// full grid was evaluated.
    pub fell_back: bool,
}

/// Evaluate the ACF/PACF-seeded grid, guard the result against the naive
/// benchmark, and fall back to `full_grid` on degradation — the
/// `--grid auto-order` mode.
///
/// The fallback mirrors champion-seeded relearning: the seeded pass is a
/// bet, the benchmark threshold decides whether it paid off, and a missed
/// bet costs one full sweep (both passes' work is counted in the report's
/// stats; the champion is the best model either pass found).
pub fn evaluate_auto_order(
    train: &[f64],
    test: &[f64],
    exog_train: &[Vec<f64>],
    exog_test: &[Vec<f64>],
    full_grid: &[CandidateModel],
    eval_opts: &EvaluationOptions,
    auto_opts: &AutoOrderOptions,
) -> Result<AutoOrderReport> {
    let plan = AutoOrderPlan::analyze_seasonal(
        train,
        auto_opts.max_candidates,
        auto_opts.seasonal_period,
    )?;
    let mut report = evaluate_candidates(
        train,
        test,
        exog_train,
        exog_test,
        &plan.grid.candidates,
        eval_opts,
    )?;
    let benchmark_rmse = naive_benchmark_rmse(train, test, plan.d, auto_opts.benchmark_period);
    let threshold = benchmark_rmse * auto_opts.degradation_factor;
    // NaN-greatest ordering: a NaN champion RMSE counts as degraded.
    let degraded = report
        .champion()
        .map(|c| dwcp_math::total_cmp_f64(c.accuracy.rmse, threshold).is_gt())
        .unwrap_or(true);
    let mut fell_back = false;
    if degraded {
        fell_back = true;
        let full = evaluate_candidates(train, test, exog_train, exog_test, full_grid, eval_opts)?;
        report.absorb(full);
    }
    Ok(AutoOrderReport {
        report,
        plan,
        benchmark_rmse,
        fell_back,
    })
}

/// Held-out RMSE of the strongest applicable naive forecast: the seasonal
/// repeat (`ŷ_{n+h} = y_{n−m+((h) mod m)}`) when a period is supplied and
/// fits the series, otherwise the random walk (`ŷ = y_n`, plus the mean
/// drift when the series was differenced). This is the forecast a pruned
/// grid must beat for the pruning bet to stand.
pub(crate) fn naive_benchmark_rmse(
    train: &[f64],
    test: &[f64],
    d: usize,
    period: Option<usize>,
) -> f64 {
    let Some(&last) = train.last() else {
        return f64::INFINITY;
    };
    if test.is_empty() {
        return f64::INFINITY;
    }
    if let Some(m) = period {
        if m >= 2 && train.len() >= m {
            // lint: allow(indexing) — tail slice guarded by train.len() >= m just above
            let season = &train[train.len() - m..];
            let sse: f64 = test
                .iter()
                .enumerate()
                .map(|(h, &y)| {
                    let e = y - season.get(h % m).copied().unwrap_or(last);
                    e * e
                })
                .sum();
            return (sse / test.len() as f64).sqrt();
        }
    }
    let slope = match train.first() {
        Some(&first) if d > 0 && train.len() > 1 => (last - first) / (train.len() - 1) as f64,
        _ => 0.0,
    };
    let sse: f64 = test
        .iter()
        .enumerate()
        .map(|(h, &y)| {
            let e = y - (last + (h + 1) as f64 * slope);
            e * e
        })
        .sum();
    (sse / test.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG noise in `[-1, 1)`.
    fn noise(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }

    fn ar2_series(n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        let mut state = 7u64;
        for t in 2..n {
            let e = noise(&mut state);
            y[t] = 0.6 * y[t - 1] + 0.25 * y[t - 2] + e;
        }
        y
    }

    fn ma1_series(n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        let mut state = 11u64;
        let mut prev_e = 0.0;
        for v in y.iter_mut() {
            let e = noise(&mut state);
            *v = e + 0.7 * prev_e;
            prev_e = e;
        }
        y
    }

    fn random_walk(n: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        let mut state = 13u64;
        for t in 1..n {
            y[t] = y[t - 1] + noise(&mut state);
        }
        y
    }

    fn seasonal_ar_series(n: usize, m: usize) -> Vec<f64> {
        let mut y = vec![0.0; n];
        let mut state = 17u64;
        for t in m..n {
            y[t] = 0.8 * y[t - m] + 0.3 * noise(&mut state);
        }
        y
    }

    #[test]
    fn ar2_neighbourhood_contains_the_true_order() {
        let plan = AutoOrderPlan::analyze(&ar2_series(1200), 72).unwrap();
        assert_eq!(plan.d, 0, "a stationary AR(2) needs no differencing");
        assert!(plan.p_set.contains(&2), "p_set {:?} misses 2", plan.p_set);
        assert!(plan.grid.len() <= 72);
        assert!(!plan.grid.is_empty());
    }

    #[test]
    fn ma1_raises_the_q_ceiling() {
        let plan = AutoOrderPlan::analyze(&ma1_series(1200), 72).unwrap();
        assert_eq!(plan.d, 0);
        assert!(plan.q_max >= 1, "ACF cut-off missed the MA(1) lag");
        // Every seeded candidate carries the diagnosed differencing.
        for c in &plan.grid.candidates {
            assert_eq!(c.as_sarimax().unwrap().spec.d, 0);
        }
    }

    #[test]
    fn random_walk_is_differenced_once() {
        let plan = AutoOrderPlan::analyze(&random_walk(1200), 72).unwrap();
        assert_eq!(plan.d, 1, "unit root must trigger differencing");
        for c in &plan.grid.candidates {
            assert_eq!(c.as_sarimax().unwrap().spec.d, 1);
        }
    }

    #[test]
    fn seasonal_lag_survives_the_budget() {
        let plan = AutoOrderPlan::analyze(&seasonal_ar_series(1200, 12), 72).unwrap();
        assert!(
            plan.p_set.contains(&12),
            "p_set {:?} misses the seasonal lag 12",
            plan.p_set
        );
        // The ±1 neighbourhood rides along with its seed.
        assert!(plan.p_set.contains(&11) || plan.p_set.contains(&13));
    }

    #[test]
    fn budget_is_respected_and_deterministic() {
        let y = ar2_series(1200);
        let a = AutoOrderPlan::analyze(&y, 12).unwrap();
        let b = AutoOrderPlan::analyze(&y, 12).unwrap();
        assert!(a.grid.len() <= 12);
        assert_eq!(a.p_set, b.p_set);
        assert_eq!(a.q_max, b.q_max);
    }

    #[test]
    fn auto_order_beats_benchmark_without_fallback() {
        let y = ar2_series(600);
        let (train, test) = y.split_at(560);
        let full = ModelGrid::arima();
        let opts = EvaluationOptions {
            cache_transforms: true,
            warm_start: true,
            ..Default::default()
        };
        let auto = evaluate_auto_order(
            train,
            test,
            &[],
            &[],
            &full.candidates,
            &opts,
            &AutoOrderOptions::default(),
        )
        .unwrap();
        assert!(!auto.fell_back, "AR(2) must not trip the naive guard");
        assert!(auto.report.attempted <= 72);
        let champion = auto.report.champion().unwrap();
        assert!(champion.accuracy.rmse <= auto.benchmark_rmse);
    }

    #[test]
    fn impossible_threshold_falls_back_to_the_full_grid() {
        let y = ar2_series(600);
        let (train, test) = y.split_at(560);
        // Keep the fallback sweep small — the mechanism, not the 180
        // models, is under test.
        let full: Vec<CandidateModel> = ModelGrid::arima()
            .candidates
            .into_iter()
            .filter(|c| c.as_sarimax().unwrap().spec.p <= 3)
            .collect();
        let opts = EvaluationOptions {
            cache_transforms: true,
            warm_start: true,
            ..Default::default()
        };
        let auto = evaluate_auto_order(
            train,
            test,
            &[],
            &[],
            &full,
            &opts,
            &AutoOrderOptions {
                degradation_factor: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(auto.fell_back, "factor 0 must always degrade");
        // Both passes are counted.
        let seeded = auto.plan.grid.len();
        assert_eq!(auto.report.attempted, seeded + full.len());
        assert!(auto.report.champion().is_some());
    }

    #[test]
    fn seasonal_period_seeds_seasonal_orders() {
        let plan =
            AutoOrderPlan::analyze_seasonal(&seasonal_ar_series(1200, 12), 72, Some(12)).unwrap();
        let seasonal = plan.seasonal.expect("long seasonal series is diagnosed");
        assert_eq!(seasonal.period, 12);
        assert_eq!(
            seasonal.seasonal_d, 1,
            "persistent positive ACF at m and 2m must difference seasonally"
        );
        // At least one candidate carries diagnosed seasonal orders, and
        // the plain non-seasonal bet stays in the race.
        let specs: Vec<_> = plan
            .grid
            .candidates
            .iter()
            .map(|c| c.as_sarimax().unwrap().spec)
            .collect();
        assert!(
            specs.iter().any(|s| s.seasonal_d == 1 && s.period == 12),
            "no seasonal candidate in {specs:?}"
        );
        assert!(
            specs
                .iter()
                .any(|s| (s.seasonal_p, s.seasonal_d, s.seasonal_q) == (0, 0, 0)),
            "plain variant dropped from {specs:?}"
        );
        assert!(plan.grid.len() <= 72, "budget blown: {}", plan.grid.len());
    }

    #[test]
    fn non_seasonal_series_with_period_matches_legacy_grid() {
        // White noise shows nothing at the seasonal lags, so supplying a
        // period must not change the seeded grid at all.
        let mut state = 23u64;
        let y: Vec<f64> = (0..1200).map(|_| noise(&mut state)).collect();
        let legacy = AutoOrderPlan::analyze(&y, 72).unwrap();
        let seasonal = AutoOrderPlan::analyze_seasonal(&y, 72, Some(12)).unwrap();
        let diag = seasonal.seasonal.expect("diagnostics still recorded");
        assert_eq!(diag.seasonal_d, 0);
        assert!(!diag.p_seasonal && !diag.q_seasonal);
        assert_eq!(legacy.p_set, seasonal.p_set);
        assert_eq!(legacy.q_max, seasonal.q_max);
        assert_eq!(legacy.grid.len(), seasonal.grid.len());
        for (a, b) in legacy.grid.candidates.iter().zip(&seasonal.grid.candidates) {
            assert_eq!(a.as_sarimax().unwrap().spec, b.as_sarimax().unwrap().spec);
        }
    }

    #[test]
    fn short_series_skips_seasonal_diagnostics() {
        // Fewer than 4m + 2 differenced points: seasonal reading declined,
        // plain analysis still succeeds.
        let plan = AutoOrderPlan::analyze_seasonal(&ar2_series(60), 72, Some(24)).unwrap();
        assert!(plan.seasonal.is_none());
        assert!(!plan.grid.is_empty());
    }

    #[test]
    fn benchmark_uses_seasonal_naive_when_period_fits() {
        let y = seasonal_ar_series(600, 12);
        let (train, test) = y.split_at(560);
        let seasonal = naive_benchmark_rmse(train, test, 0, Some(12));
        let flat = naive_benchmark_rmse(train, test, 0, None);
        assert!(seasonal < flat, "seasonal naive {seasonal} vs flat {flat}");
        // Degenerate inputs stay total.
        assert!(naive_benchmark_rmse(&[], test, 0, None).is_infinite());
        assert!(naive_benchmark_rmse(train, &[], 1, Some(12)).is_infinite());
    }
}
