//! The §6.3 model spaces.
//!
//! "The three techniques and the number of models are:
//!  * ARIMA p,d,q = 180 models per instance (totalling 360 models)
//!  * SARIMAX p,d,q,P,D,Q,F = 660 models per instance (totalling 1320)
//!  * SARIMAX p,d,q,P,D,Q,F + Exogenous (4) + Fourier Terms (2) = 666
//!    models per instance (totalling 1332)"
//!
//! and: "we measure the data over 30 lags, so each lag has a maximum of 22
//! models". The paper does not enumerate the 22, so this module fixes a
//! concrete 22-element (d,q,P,D,Q) menu per AR lag (documented in
//! DESIGN.md) whose totals reproduce the counts exactly: 30 lags × 6
//! (d,q) pairs = 180 ARIMA; 30 lags × 22 = 660 SARIMAX; and the
//! Fourier-augmentation stage adds 6 variants of the RMSE-best SARIMAX
//! (+Exogenous) model, giving 666.
//!
//! The correlogram-based pruning ("looking at where the data points
//! intersect with the shaded areas … reducing the thousands of potential
//! models considerably") lives here too.

use dwcp_models::fourier::FourierSpec;
use dwcp_models::{ArimaSpec, SarimaxConfig};
use dwcp_series::Correlogram;

/// Which of the paper's three techniques a candidate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Plain ARIMA(p,d,q).
    Arima,
    /// Seasonal SARIMAX(p,d,q)(P,D,Q,F) without regressors.
    Sarimax,
    /// SARIMAX with exogenous shock indicators and Fourier terms.
    SarimaxFftExogenous,
}

impl ModelFamily {
    /// The label used in the paper's result tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Arima => "ARIMA",
            ModelFamily::Sarimax => "SARIMAX",
            ModelFamily::SarimaxFftExogenous => "SARIMAX FFT Exogenous",
        }
    }
}

/// One candidate model in a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateModel {
    /// Family bucket for reporting.
    pub family: ModelFamily,
    /// Full configuration (spec + regressors).
    pub config: SarimaxConfig,
}

/// A generated model grid.
///
/// ```
/// use dwcp_core::ModelGrid;
///
/// // The §6.3 cardinalities.
/// assert_eq!(ModelGrid::arima().len(), 180);
/// assert_eq!(ModelGrid::sarimax(24).len(), 660);
/// let exo = ModelGrid::sarimax_exogenous(24, 4);
/// let variants = ModelGrid::fourier_variants(&exo.candidates[0].config, &[24.0, 168.0]);
/// assert_eq!(exo.len() + variants.len(), 666);
/// ```
#[derive(Debug, Clone)]
pub struct ModelGrid {
    /// The candidates, in deterministic order.
    pub candidates: Vec<CandidateModel>,
}

/// The fixed 22-element seasonal menu per AR lag: every combination of
/// `d ∈ {0,1}`, `q ∈ {0,1,2}` with the three seasonal shapes that include a
/// seasonal MA or AR term next to seasonal differencing (18), plus four
/// seasonal-AR-only shapes on the `q ≥ 1` corners (4).
const SEASONAL_MENU: [(usize, usize, usize, usize, usize); 22] = [
    // (d, q, P, D, Q) — 18 core combinations
    (0, 0, 0, 1, 1),
    (0, 0, 1, 0, 1),
    (0, 0, 1, 1, 1),
    (0, 1, 0, 1, 1),
    (0, 1, 1, 0, 1),
    (0, 1, 1, 1, 1),
    (0, 2, 0, 1, 1),
    (0, 2, 1, 0, 1),
    (0, 2, 1, 1, 1),
    (1, 0, 0, 1, 1),
    (1, 0, 1, 0, 1),
    (1, 0, 1, 1, 1),
    (1, 1, 0, 1, 1),
    (1, 1, 1, 0, 1),
    (1, 1, 1, 1, 1),
    (1, 2, 0, 1, 1),
    (1, 2, 1, 0, 1),
    (1, 2, 1, 1, 1),
    // 4 seasonal-AR-only corners
    (0, 1, 1, 1, 0),
    (0, 2, 1, 1, 0),
    (1, 1, 1, 1, 0),
    (1, 2, 1, 1, 0),
];

/// The family bucket a configuration reports under — regression beats
/// seasonality beats plain ARIMA, mirroring how the generators label their
/// candidates.
fn family_of(config: &SarimaxConfig) -> ModelFamily {
    if config.n_exog > 0 || !config.fourier.is_empty() {
        ModelFamily::SarimaxFftExogenous
    } else if config.spec.is_seasonal() {
        ModelFamily::Sarimax
    } else {
        ModelFamily::Arima
    }
}

impl ModelGrid {
    /// The ARIMA grid: `p ∈ 1..=30`, `d ∈ {0,1}`, `q ∈ {0,1,2}` —
    /// 180 models.
    pub fn arima() -> ModelGrid {
        let mut candidates = Vec::with_capacity(180);
        for p in 1..=30 {
            for d in 0..=1 {
                for q in 0..=2 {
                    candidates.push(CandidateModel {
                        family: ModelFamily::Arima,
                        config: SarimaxConfig::plain(ArimaSpec::arima(p, d, q)),
                    });
                }
            }
        }
        ModelGrid { candidates }
    }

    /// The SARIMAX grid at seasonal period `period`: `p ∈ 1..=30` × the
    /// fixed 22-element seasonal menu — 660 models.
    pub fn sarimax(period: usize) -> ModelGrid {
        let mut candidates = Vec::with_capacity(660);
        for p in 1..=30 {
            for &(d, q, sp, sd, sq) in &SEASONAL_MENU {
                candidates.push(CandidateModel {
                    family: ModelFamily::Sarimax,
                    config: SarimaxConfig::plain(ArimaSpec::sarima(p, d, q, sp, sd, sq, period)),
                });
            }
        }
        ModelGrid { candidates }
    }

    /// The SARIMAX+Exogenous grid: the same 660 orders, each carrying
    /// `n_exog` exogenous columns. The six Fourier variants that complete
    /// the 666 are produced by [`ModelGrid::fourier_variants`] around the
    /// RMSE-best member, exactly as §6.3 describes ("the FFT is made up of
    /// sine and cosine waves that are then added to the model with the best
    /// RMSE to see if it can be further improved").
    pub fn sarimax_exogenous(period: usize, n_exog: usize) -> ModelGrid {
        let mut grid = Self::sarimax(period);
        for c in grid.candidates.iter_mut() {
            c.family = ModelFamily::SarimaxFftExogenous;
            c.config.n_exog = n_exog;
        }
        grid
    }

    /// The six Fourier-augmented variants of a base configuration: harmonic
    /// counts `K ∈ {1, 2, 3}` on the primary period alone and on both
    /// periods when a secondary one exists (falling back to 2× the primary,
    /// i.e. the next-longer cycle, when not).
    pub fn fourier_variants(base: &SarimaxConfig, periods: &[f64]) -> Vec<CandidateModel> {
        let primary = periods.first().copied().unwrap_or(24.0);
        let secondary = periods.get(1).copied().unwrap_or(primary * 7.0);
        let mut out = Vec::with_capacity(6);
        for &k in &[1usize, 2, 3] {
            for spec in [
                FourierSpec::single(primary, k),
                FourierSpec::multi(&[primary, secondary], k),
            ] {
                let mut config = base.clone();
                config.fourier = spec;
                out.push(CandidateModel {
                    family: ModelFamily::SarimaxFftExogenous,
                    config,
                });
            }
        }
        out
    }

    /// The pruned neighbourhood around a stored champion: every `(p, q)`
    /// within `radius` of the champion's orders (clamped to the grid's
    /// ranges, `p ∈ 1..=30`, `q ∈ 0..=2`), with the differencing, seasonal
    /// orders and regression design held fixed — those are properties of
    /// the data, not of last week's optimum, so re-searching them weekly
    /// buys nothing. The champion's exact configuration comes **first**,
    /// so an exact RMSE tie against a neighbour resolves to the stored
    /// champion (candidate-index tie-break).
    ///
    /// This is the champion-seeded relearning grid: ~`(2r+1)²` candidates
    /// instead of the full 180/660, warm-started from the stored
    /// parameters by the fleet scheduler.
    pub fn neighbourhood(base: &SarimaxConfig, radius: usize) -> ModelGrid {
        let family = family_of(base);
        let spec = &base.spec;
        let mut candidates = vec![CandidateModel {
            family,
            config: base.clone(),
        }];
        let p_lo = spec.p.saturating_sub(radius).max(1);
        let p_hi = (spec.p + radius).min(30);
        let q_lo = spec.q.saturating_sub(radius);
        let q_hi = (spec.q + radius).min(2);
        for p in p_lo..=p_hi {
            for q in q_lo..=q_hi {
                if p == spec.p && q == spec.q {
                    continue;
                }
                let mut config = base.clone();
                config.spec.p = p;
                config.spec.q = q;
                candidates.push(CandidateModel { family, config });
            }
        }
        ModelGrid { candidates }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Correlogram pruning (§6.3): keep only candidates whose AR order `p`
    /// is a significant PACF lag (or 1), and cap the total. This is the
    /// "tuning" that turns thousands of models into a tractable set; the
    /// full grid remains available for the exhaustive evaluation mode.
    pub fn prune(&self, correlogram: &Correlogram, max_candidates: usize) -> ModelGrid {
        let significant: Vec<usize> = correlogram.significant_pacf_lags();
        let keep_p = |p: usize| p == 1 || significant.contains(&p);
        let mut kept: Vec<CandidateModel> = self
            .candidates
            .iter()
            .filter(|c| keep_p(c.config.spec.p))
            .cloned()
            .collect();
        if kept.is_empty() {
            // Degenerate correlogram (white noise): keep the low-order
            // models, which is what a flat PACF recommends.
            kept = self
                .candidates
                .iter()
                .filter(|c| c.config.spec.p <= 2)
                .cloned()
                .collect();
        }
        kept.truncate(max_candidates);
        ModelGrid { candidates: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arima_grid_has_exactly_180_models() {
        assert_eq!(ModelGrid::arima().len(), 180);
    }

    #[test]
    fn sarimax_grid_has_exactly_660_models() {
        assert_eq!(ModelGrid::sarimax(24).len(), 660);
    }

    #[test]
    fn fourier_stage_completes_666() {
        let grid = ModelGrid::sarimax_exogenous(24, 4);
        let variants = ModelGrid::fourier_variants(&grid.candidates[0].config, &[24.0, 168.0]);
        assert_eq!(grid.len() + variants.len(), 666);
    }

    #[test]
    fn seasonal_menu_has_22_distinct_entries() {
        let set: std::collections::HashSet<_> = SEASONAL_MENU.iter().collect();
        assert_eq!(set.len(), 22);
    }

    #[test]
    fn arima_grid_covers_paper_examples() {
        // Table 2 lists ARIMA (13,1,1) and (25,1,1) — both must be in-grid.
        let grid = ModelGrid::arima();
        for (p, d, q) in [(13, 1, 1), (25, 1, 1), (4, 1, 1), (15, 1, 2)] {
            assert!(
                grid.candidates
                    .iter()
                    .any(|c| c.config.spec == ArimaSpec::arima(p, d, q)),
                "({p},{d},{q}) missing"
            );
        }
    }

    #[test]
    fn sarimax_grid_covers_paper_examples() {
        // Table 2 lists SARIMAX (13,1,2)(1,1,1,24) and (1,1,1)(0,1,1,24).
        let grid = ModelGrid::sarimax(24);
        for (p, d, q, sp, sd, sq) in [
            (13, 1, 2, 1, 1, 1),
            (1, 1, 1, 0, 1, 1),
            (27, 1, 2, 1, 1, 1),
            (4, 1, 1, 1, 1, 1),
        ] {
            let spec = ArimaSpec::sarima(p, d, q, sp, sd, sq, 24);
            assert!(
                grid.candidates.iter().any(|c| c.config.spec == spec),
                "{spec} missing"
            );
        }
    }

    #[test]
    fn every_candidate_validates() {
        for grid in [ModelGrid::arima(), ModelGrid::sarimax(24)] {
            for c in &grid.candidates {
                assert!(c.config.spec.validate().is_ok(), "{}", c.config.spec);
            }
        }
    }

    #[test]
    fn exogenous_grid_carries_columns() {
        let grid = ModelGrid::sarimax_exogenous(24, 4);
        assert_eq!(grid.len(), 660);
        assert!(grid.candidates.iter().all(|c| c.config.n_exog == 4));
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.family == ModelFamily::SarimaxFftExogenous));
    }

    #[test]
    fn pruning_keeps_only_significant_lags() {
        // Build a correlogram from a strongly AR(2) series.
        let mut y = vec![0.0; 2000];
        let mut state = 1u64;
        for t in 2..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + e;
        }
        let corr = Correlogram::compute(&y, 30).unwrap();
        let pruned = ModelGrid::arima().prune(&corr, 1000);
        assert!(pruned.len() < 180);
        assert!(!pruned.is_empty());
        // Lag 1 always survives.
        assert!(pruned.candidates.iter().any(|c| c.config.spec.p == 1));
    }

    #[test]
    fn pruning_respects_cap() {
        let y: Vec<f64> = (0..500).map(|t| (t as f64 / 12.0).sin() * 10.0).collect();
        let corr = Correlogram::compute(&y, 30).unwrap();
        let pruned = ModelGrid::sarimax(24).prune(&corr, 40);
        assert!(pruned.len() <= 40);
    }

    #[test]
    fn neighbourhood_centres_on_champion() {
        let base = SarimaxConfig::plain(ArimaSpec::sarima(4, 1, 2, 1, 1, 1, 24));
        let grid = ModelGrid::neighbourhood(&base, 1);
        // Champion first, then the surrounding (p, q) cells: p ∈ {3,4,5},
        // q ∈ {1,2} (q clamped at the grid's cap of 2) minus the centre.
        assert_eq!(grid.candidates[0].config, base);
        assert_eq!(grid.len(), 6);
        for c in &grid.candidates {
            assert_eq!(c.family, ModelFamily::Sarimax);
            assert_eq!(c.config.spec.d, 1);
            assert_eq!(c.config.spec.seasonal_p, 1);
            assert_eq!(c.config.spec.period, 24);
            assert!(c.config.spec.p.abs_diff(4) <= 1);
            assert!(c.config.spec.q.abs_diff(2) <= 1);
        }
    }

    #[test]
    fn neighbourhood_clamps_at_grid_edges() {
        // p = 1 cannot go below 1; q = 0 cannot go below 0.
        let base = SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0));
        let grid = ModelGrid::neighbourhood(&base, 1);
        assert_eq!(grid.candidates[0].config, base);
        assert_eq!(grid.len(), 4); // p ∈ {1,2} × q ∈ {0,1}
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.family == ModelFamily::Arima && c.config.spec.p >= 1));
    }

    #[test]
    fn family_labels_match_tables() {
        assert_eq!(ModelFamily::Arima.label(), "ARIMA");
        assert_eq!(ModelFamily::Sarimax.label(), "SARIMAX");
        assert_eq!(
            ModelFamily::SarimaxFftExogenous.label(),
            "SARIMAX FFT Exogenous"
        );
    }
}
