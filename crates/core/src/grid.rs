//! The §6.3 model spaces.
//!
//! "The three techniques and the number of models are:
//!  * ARIMA p,d,q = 180 models per instance (totalling 360 models)
//!  * SARIMAX p,d,q,P,D,Q,F = 660 models per instance (totalling 1320)
//!  * SARIMAX p,d,q,P,D,Q,F + Exogenous (4) + Fourier Terms (2) = 666
//!    models per instance (totalling 1332)"
//!
//! and: "we measure the data over 30 lags, so each lag has a maximum of 22
//! models". The paper does not enumerate the 22, so this module fixes a
//! concrete 22-element (d,q,P,D,Q) menu per AR lag (documented in
//! DESIGN.md) whose totals reproduce the counts exactly: 30 lags × 6
//! (d,q) pairs = 180 ARIMA; 30 lags × 22 = 660 SARIMAX; and the
//! Fourier-augmentation stage adds 6 variants of the RMSE-best SARIMAX
//! (+Exogenous) model, giving 666.
//!
//! Beyond the ARIMA family the grid also enumerates the §4.3 methods as
//! first-class candidates: the HES menu (SES, Holt, damped Holt,
//! Holt-Winters additive/multiplicative) and the TBATS configuration
//! lattice. Every candidate — whatever its family — carries a
//! [`ModelConfig`] and flows through the same evaluation engine, champion
//! selection and repository persistence.
//!
//! The correlogram-based pruning ("looking at where the data points
//! intersect with the shaded areas … reducing the thousands of potential
//! models considerably") lives here too.

use dwcp_models::fourier::FourierSpec;
use dwcp_models::{ArimaSpec, EtsConfig, SarimaxConfig, TbatsConfig, TbatsSeason};
use dwcp_models::{SeasonalKind, TrendKind};
use dwcp_series::Correlogram;
use serde::{Deserialize, Serialize};

/// Which of the paper's techniques a candidate belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Plain ARIMA(p,d,q).
    Arima,
    /// Seasonal SARIMAX(p,d,q)(P,D,Q,F) without regressors.
    Sarimax,
    /// SARIMAX with exogenous shock indicators and Fourier terms.
    SarimaxFftExogenous,
    /// The exponential-smoothing family the paper calls HES (§4.3).
    Hes,
    /// TBATS (§4.3, equations 7-14).
    Tbats,
}

impl ModelFamily {
    /// Every family, in the canonical reporting order. Per-family stats
    /// arrays are sized and indexed from this list, so adding a family is
    /// a one-site change.
    pub const ALL: [ModelFamily; 5] = [
        ModelFamily::Arima,
        ModelFamily::Sarimax,
        ModelFamily::SarimaxFftExogenous,
        ModelFamily::Hes,
        ModelFamily::Tbats,
    ];

    /// Number of families (the size of per-family stats arrays).
    pub const COUNT: usize = ModelFamily::ALL.len();

    /// Position of this family in [`ModelFamily::ALL`].
    pub fn index(self) -> usize {
        // Total match instead of a scan-and-expect over ALL; the
        // round-trip test below keeps this table honest.
        match self {
            ModelFamily::Arima => 0,
            ModelFamily::Sarimax => 1,
            ModelFamily::SarimaxFftExogenous => 2,
            ModelFamily::Hes => 3,
            ModelFamily::Tbats => 4,
        }
    }

    /// The label used in the paper's result tables.
    pub fn label(self) -> &'static str {
        match self {
            ModelFamily::Arima => "ARIMA",
            ModelFamily::Sarimax => "SARIMAX",
            ModelFamily::SarimaxFftExogenous => "SARIMAX FFT Exogenous",
            ModelFamily::Hes => "HES",
            ModelFamily::Tbats => "TBATS",
        }
    }
}

/// A family-agnostic model configuration: everything the evaluation
/// engine, the repository and the fleet scheduler need to fit, persist and
/// relearn a candidate, whatever its family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ModelConfig {
    /// An ARIMA-family configuration (plain, seasonal, or with regression).
    Sarimax(SarimaxConfig),
    /// An exponential-smoothing configuration (the paper's HES).
    Ets(EtsConfig),
    /// A TBATS configuration.
    Tbats(TbatsConfig),
}

impl ModelConfig {
    /// Human-readable descriptor (the champion column of the tables).
    pub fn describe(&self) -> String {
        match self {
            ModelConfig::Sarimax(c) => c.describe(),
            ModelConfig::Ets(c) => c.name(),
            ModelConfig::Tbats(c) => c.describe(),
        }
    }

    /// The family bucket this configuration reports under.
    pub fn family(&self) -> ModelFamily {
        match self {
            ModelConfig::Sarimax(c) => sarimax_family_of(c),
            ModelConfig::Ets(_) => ModelFamily::Hes,
            ModelConfig::Tbats(_) => ModelFamily::Tbats,
        }
    }

    /// The SARIMAX configuration, when this is an ARIMA-family candidate.
    pub fn as_sarimax(&self) -> Option<&SarimaxConfig> {
        match self {
            ModelConfig::Sarimax(c) => Some(c),
            _ => None,
        }
    }

    /// The ETS configuration, when this is an HES candidate.
    pub fn as_ets(&self) -> Option<&EtsConfig> {
        match self {
            ModelConfig::Ets(c) => Some(c),
            _ => None,
        }
    }

    /// The TBATS configuration, when this is a TBATS candidate.
    pub fn as_tbats(&self) -> Option<&TbatsConfig> {
        match self {
            ModelConfig::Tbats(c) => Some(c),
            _ => None,
        }
    }

    /// Number of unconstrained optimiser parameters a fit of this
    /// configuration converges — the length a stored warm seed must have
    /// to be frozen-re-scored verbatim.
    pub fn n_optimiser_params(&self) -> usize {
        match self {
            ModelConfig::Sarimax(c) => c.spec.n_params(),
            ModelConfig::Ets(c) => c.n_params(),
            ModelConfig::Tbats(c) => c.n_params(),
        }
    }

    /// The canonical form of this configuration: degenerate components
    /// that cannot influence the fitted model are normalised away, so two
    /// configs describing the same effective model compare equal.
    ///
    /// * ETS — a seasonal component with period below 2 carries no
    ///   seasonal information (a single phase is absorbed by the level);
    ///   it collapses to [`SeasonalKind::None`], so e.g. Holt-Winters
    ///   additive at period 1 canonicalises to plain Holt.
    /// * TBATS — seasonal blocks below period 2 or without harmonics are
    ///   dropped, and damping without a trend state is cleared (Φ only
    ///   enters the recursion through the trend, so a trendless damped
    ///   config optimises a parameter the filter never reads).
    /// * SARIMAX — already canonical; returned unchanged.
    pub fn canonical(&self) -> ModelConfig {
        match self {
            ModelConfig::Sarimax(c) => ModelConfig::Sarimax(c.clone()),
            ModelConfig::Ets(c) => {
                let mut c = *c;
                if c.seasonal.period() < 2 {
                    c.seasonal = SeasonalKind::None;
                }
                ModelConfig::Ets(c)
            }
            ModelConfig::Tbats(c) => {
                let mut c = c.clone();
                c.seasons.retain(|s| s.period >= 2.0 && s.harmonics > 0);
                if c.use_damping && !c.use_trend {
                    c.use_damping = false;
                }
                ModelConfig::Tbats(c)
            }
        }
    }
}

/// Canonicalise every candidate's configuration and drop duplicates,
/// keeping the first occurrence of each `(family, canonical config)` key —
/// deterministic order is preserved, so the candidate-index champion
/// tie-break still resolves to the earliest (simplest) member. The union
/// grid `--method auto` queues is deduplicated with this before
/// evaluation so equivalent ETS/TBATS shapes are fitted once.
pub fn dedupe_candidates(candidates: &mut Vec<CandidateModel>) {
    let mut seen: Vec<(ModelFamily, ModelConfig)> = Vec::with_capacity(candidates.len());
    candidates.retain_mut(|c| {
        let canon = c.config.canonical();
        if seen.iter().any(|(f, cfg)| *f == c.family && *cfg == canon) {
            return false;
        }
        c.config = canon.clone();
        seen.push((c.family, canon));
        true
    });
}

impl From<SarimaxConfig> for ModelConfig {
    fn from(c: SarimaxConfig) -> ModelConfig {
        ModelConfig::Sarimax(c)
    }
}

impl From<EtsConfig> for ModelConfig {
    fn from(c: EtsConfig) -> ModelConfig {
        ModelConfig::Ets(c)
    }
}

impl From<TbatsConfig> for ModelConfig {
    fn from(c: TbatsConfig) -> ModelConfig {
        ModelConfig::Tbats(c)
    }
}

/// One candidate model in a grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateModel {
    /// Family bucket for reporting.
    pub family: ModelFamily,
    /// Full configuration.
    pub config: ModelConfig,
}

impl CandidateModel {
    /// Build a candidate, deriving its family from the configuration.
    pub fn new(config: ModelConfig) -> CandidateModel {
        CandidateModel {
            family: config.family(),
            config,
        }
    }

    /// The SARIMAX configuration, for ARIMA-family candidates.
    pub fn as_sarimax(&self) -> Option<&SarimaxConfig> {
        self.config.as_sarimax()
    }
}

/// A generated model grid.
///
/// ```
/// use dwcp_core::ModelGrid;
///
/// // The §6.3 cardinalities.
/// assert_eq!(ModelGrid::arima().len(), 180);
/// assert_eq!(ModelGrid::sarimax(24).len(), 660);
/// let exo = ModelGrid::sarimax_exogenous(24, 4);
/// let base = exo.candidates[0].as_sarimax().unwrap();
/// let variants = ModelGrid::fourier_variants(base, &[24.0, 168.0]);
/// assert_eq!(exo.len() + variants.len(), 666);
/// ```
#[derive(Debug, Clone)]
pub struct ModelGrid {
    /// The candidates, in deterministic order.
    pub candidates: Vec<CandidateModel>,
}

/// The fixed 22-element seasonal menu per AR lag: every combination of
/// `d ∈ {0,1}`, `q ∈ {0,1,2}` with the three seasonal shapes that include a
/// seasonal MA or AR term next to seasonal differencing (18), plus four
/// seasonal-AR-only shapes on the `q ≥ 1` corners (4).
const SEASONAL_MENU: [(usize, usize, usize, usize, usize); 22] = [
    // (d, q, P, D, Q) — 18 core combinations
    (0, 0, 0, 1, 1),
    (0, 0, 1, 0, 1),
    (0, 0, 1, 1, 1),
    (0, 1, 0, 1, 1),
    (0, 1, 1, 0, 1),
    (0, 1, 1, 1, 1),
    (0, 2, 0, 1, 1),
    (0, 2, 1, 0, 1),
    (0, 2, 1, 1, 1),
    (1, 0, 0, 1, 1),
    (1, 0, 1, 0, 1),
    (1, 0, 1, 1, 1),
    (1, 1, 0, 1, 1),
    (1, 1, 1, 0, 1),
    (1, 1, 1, 1, 1),
    (1, 2, 0, 1, 1),
    (1, 2, 1, 0, 1),
    (1, 2, 1, 1, 1),
    // 4 seasonal-AR-only corners
    (0, 1, 1, 1, 0),
    (0, 2, 1, 1, 0),
    (1, 1, 1, 1, 0),
    (1, 2, 1, 1, 0),
];

/// The family bucket a SARIMAX configuration reports under — regression
/// beats seasonality beats plain ARIMA, mirroring how the generators label
/// their candidates.
fn sarimax_family_of(config: &SarimaxConfig) -> ModelFamily {
    if config.n_exog > 0 || !config.fourier.is_empty() {
        ModelFamily::SarimaxFftExogenous
    } else if config.spec.is_seasonal() {
        ModelFamily::Sarimax
    } else {
        ModelFamily::Arima
    }
}

impl ModelGrid {
    /// The ARIMA grid: `p ∈ 1..=30`, `d ∈ {0,1}`, `q ∈ {0,1,2}` —
    /// 180 models.
    pub fn arima() -> ModelGrid {
        let mut candidates = Vec::with_capacity(180);
        for p in 1..=30 {
            for d in 0..=1 {
                for q in 0..=2 {
                    candidates.push(CandidateModel {
                        family: ModelFamily::Arima,
                        config: ModelConfig::Sarimax(SarimaxConfig::plain(ArimaSpec::arima(
                            p, d, q,
                        ))),
                    });
                }
            }
        }
        ModelGrid { candidates }
    }

    /// The SARIMAX grid at seasonal period `period`: `p ∈ 1..=30` × the
    /// fixed 22-element seasonal menu — 660 models.
    pub fn sarimax(period: usize) -> ModelGrid {
        let mut candidates = Vec::with_capacity(660);
        for p in 1..=30 {
            for &(d, q, sp, sd, sq) in &SEASONAL_MENU {
                candidates.push(CandidateModel {
                    family: ModelFamily::Sarimax,
                    config: ModelConfig::Sarimax(SarimaxConfig::plain(ArimaSpec::sarima(
                        p, d, q, sp, sd, sq, period,
                    ))),
                });
            }
        }
        ModelGrid { candidates }
    }

    /// The SARIMAX+Exogenous grid: the same 660 orders, each carrying
    /// `n_exog` exogenous columns. The six Fourier variants that complete
    /// the 666 are produced by [`ModelGrid::fourier_variants`] around the
    /// RMSE-best member, exactly as §6.3 describes ("the FFT is made up of
    /// sine and cosine waves that are then added to the model with the best
    /// RMSE to see if it can be further improved").
    pub fn sarimax_exogenous(period: usize, n_exog: usize) -> ModelGrid {
        let mut grid = Self::sarimax(period);
        for c in grid.candidates.iter_mut() {
            c.family = ModelFamily::SarimaxFftExogenous;
            if let ModelConfig::Sarimax(config) = &mut c.config {
                config.n_exog = n_exog;
            }
        }
        grid
    }

    /// The HES candidate menu (§4.3), simplest first: SES, Holt, damped
    /// Holt, Holt-Winters additive at `period`, and — when
    /// `allow_multiplicative` says the training data is strictly positive —
    /// Holt-Winters multiplicative. Deterministic order, so an exact RMSE
    /// tie resolves to the simpler method.
    pub fn ets(period: usize, allow_multiplicative: bool, interval_level: f64) -> ModelGrid {
        let mut configs = vec![
            EtsConfig::ses(),
            EtsConfig::holt(),
            EtsConfig {
                trend: TrendKind::Damped,
                seasonal: SeasonalKind::None,
                interval_level: 0.95,
            },
        ];
        if period >= 2 {
            configs.push(EtsConfig::holt_winters(period));
            if allow_multiplicative {
                configs.push(EtsConfig::holt_winters_multiplicative(period));
            }
        }
        let candidates = configs
            .into_iter()
            .map(|mut c| {
                c.interval_level = interval_level;
                CandidateModel {
                    family: ModelFamily::Hes,
                    config: ModelConfig::Ets(c),
                }
            })
            .collect();
        ModelGrid { candidates }
    }

    /// The TBATS configuration lattice (§4.3): Box-Cox off/on (`lambda`
    /// supplies the fixed λ when on; `None` drops the Box-Cox half),
    /// trend/damping `{(off,off),(on,off),(on,on)}`, ARMA error orders
    /// `{(0,0),(1,0),(1,1)}` and harmonic counts `{1,2,3}` per seasonal
    /// block — the same lattice `FittedTbats::select` walks, expressed as
    /// grid candidates so the engine's RMSE champion selection, stats and
    /// persistence apply. Periods below the Nyquist floor of 4 are dropped;
    /// harmonics are capped per block and duplicate configurations (from
    /// the cap) appear once.
    pub fn tbats(periods: &[f64], lambda: Option<f64>, interval_level: f64) -> ModelGrid {
        let periods: Vec<f64> = periods.iter().copied().filter(|&p| p >= 4.0).collect();
        let mut candidates: Vec<CandidateModel> = Vec::new();
        let harmonic_options: &[usize] = &[1, 2, 3];
        let arma_options: &[(usize, usize)] = &[(0, 0), (1, 0), (1, 1)];
        for &use_boxcox in &[false, true] {
            if use_boxcox && lambda.is_none() {
                continue;
            }
            for &(use_trend, use_damping) in &[(false, false), (true, false), (true, true)] {
                for &arma in arma_options {
                    for &k in harmonic_options {
                        let seasons: Vec<TbatsSeason> = periods
                            .iter()
                            .map(|&period| TbatsSeason {
                                period,
                                harmonics: k.min((period.ceil() as usize - 1) / 2),
                            })
                            .filter(|s| s.harmonics >= 1)
                            .collect();
                        let config = ModelConfig::Tbats(TbatsConfig {
                            lambda: if use_boxcox { lambda } else { None },
                            use_trend,
                            use_damping,
                            arma,
                            seasons,
                            interval_level,
                        });
                        if !candidates.iter().any(|c| c.config == config) {
                            candidates.push(CandidateModel {
                                family: ModelFamily::Tbats,
                                config,
                            });
                        }
                        if periods.is_empty() {
                            break; // harmonics irrelevant without seasons
                        }
                    }
                }
            }
        }
        ModelGrid { candidates }
    }

    /// The six Fourier-augmented variants of a base configuration: harmonic
    /// counts `K ∈ {1, 2, 3}` on the primary period alone and on both
    /// periods when a secondary one exists (falling back to 2× the primary,
    /// i.e. the next-longer cycle, when not).
    pub fn fourier_variants(base: &SarimaxConfig, periods: &[f64]) -> Vec<CandidateModel> {
        let primary = periods.first().copied().unwrap_or(24.0);
        let secondary = periods.get(1).copied().unwrap_or(primary * 7.0);
        let mut out = Vec::with_capacity(6);
        for &k in &[1usize, 2, 3] {
            for spec in [
                FourierSpec::single(primary, k),
                FourierSpec::multi(&[primary, secondary], k),
            ] {
                let mut config = base.clone();
                config.fourier = spec;
                out.push(CandidateModel {
                    family: ModelFamily::SarimaxFftExogenous,
                    config: ModelConfig::Sarimax(config),
                });
            }
        }
        out
    }

    /// The pruned neighbourhood around a stored SARIMAX champion: every
    /// `(p, q)` within `radius` of the champion's orders (clamped to the
    /// grid's ranges, `p ∈ 1..=30`, `q ∈ 0..=2`), with the differencing,
    /// seasonal orders and regression design held fixed — those are
    /// properties of the data, not of last week's optimum, so re-searching
    /// them weekly buys nothing. The champion's exact configuration comes
    /// **first**, so an exact RMSE tie against a neighbour resolves to the
    /// stored champion (candidate-index tie-break).
    ///
    /// This is the champion-seeded relearning grid: ~`(2r+1)²` candidates
    /// instead of the full 180/660, warm-started from the stored
    /// parameters by the fleet scheduler.
    pub fn neighbourhood(base: &SarimaxConfig, radius: usize) -> ModelGrid {
        let family = sarimax_family_of(base);
        let spec = &base.spec;
        let mut candidates = vec![CandidateModel {
            family,
            config: ModelConfig::Sarimax(base.clone()),
        }];
        let p_lo = spec.p.saturating_sub(radius).max(1);
        let p_hi = (spec.p + radius).min(30);
        let q_lo = spec.q.saturating_sub(radius);
        let q_hi = (spec.q + radius).min(2);
        for p in p_lo..=p_hi {
            for q in q_lo..=q_hi {
                if p == spec.p && q == spec.q {
                    continue;
                }
                let mut config = base.clone();
                config.spec.p = p;
                config.spec.q = q;
                candidates.push(CandidateModel {
                    family,
                    config: ModelConfig::Sarimax(config),
                });
            }
        }
        ModelGrid { candidates }
    }

    /// The family-agnostic champion neighbourhood: the stored champion
    /// first (so exact ties keep it), then its close variants.
    ///
    /// * SARIMAX — delegates to [`ModelGrid::neighbourhood`].
    /// * HES — the champion plus the rest of the HES menu at the
    ///   champion's period (falling back to `fallback_period` for
    ///   non-seasonal champions); the menu is already neighbourhood-sized.
    /// * TBATS — the champion plus its ARMA-order lattice variants and
    ///   harmonic-count ±1 variants, with Box-Cox, trend and damping held
    ///   fixed (like differencing, they are properties of the data).
    pub fn neighbourhood_of(
        base: &ModelConfig,
        radius: usize,
        fallback_period: usize,
    ) -> ModelGrid {
        match base {
            ModelConfig::Sarimax(config) => Self::neighbourhood(config, radius),
            ModelConfig::Ets(config) => {
                let period = match config.seasonal.period() {
                    0 => fallback_period,
                    m => m,
                };
                let mut candidates = vec![CandidateModel {
                    family: ModelFamily::Hes,
                    config: ModelConfig::Ets(*config),
                }];
                for c in Self::ets(period, true, config.interval_level).candidates {
                    // lint: allow(indexing) — literal index into the one-element vec built above
                    if c.config != candidates[0].config {
                        candidates.push(c);
                    }
                }
                ModelGrid { candidates }
            }
            ModelConfig::Tbats(config) => {
                let mut candidates = vec![CandidateModel {
                    family: ModelFamily::Tbats,
                    config: ModelConfig::Tbats(config.clone()),
                }];
                let push = |candidates: &mut Vec<CandidateModel>, cfg: TbatsConfig| {
                    let config = ModelConfig::Tbats(cfg);
                    if !candidates.iter().any(|c| c.config == config) {
                        candidates.push(CandidateModel {
                            family: ModelFamily::Tbats,
                            config,
                        });
                    }
                };
                for &arma in &[(0, 0), (1, 0), (1, 1)] {
                    if arma != config.arma {
                        let mut cfg = config.clone();
                        cfg.arma = arma;
                        push(&mut candidates, cfg);
                    }
                }
                for (i, season) in config.seasons.iter().enumerate() {
                    let cap = (season.period.ceil() as usize).saturating_sub(1) / 2;
                    let lo = season.harmonics.saturating_sub(1).max(1);
                    let hi = (season.harmonics + 1).min(cap.max(1));
                    for harmonics in lo..=hi {
                        if harmonics == season.harmonics {
                            continue;
                        }
                        let mut cfg = config.clone();
                        // lint: allow(indexing) — i enumerates config.seasons, which cfg clones
                        cfg.seasons[i].harmonics = harmonics;
                        push(&mut candidates, cfg);
                    }
                }
                ModelGrid { candidates }
            }
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Correlogram pruning (§6.3): keep only ARIMA-family candidates whose
    /// AR order `p` is a significant PACF lag (or 1), and cap the total.
    /// Candidates without an AR order (HES, TBATS) pass through — the PACF
    /// says nothing about smoothing parameters. This is the "tuning" that
    /// turns thousands of models into a tractable set; the full grid
    /// remains available for the exhaustive evaluation mode.
    pub fn prune(&self, correlogram: &Correlogram, max_candidates: usize) -> ModelGrid {
        let significant: Vec<usize> = correlogram.significant_pacf_lags();
        let keep_p = |p: usize| p == 1 || significant.contains(&p);
        let mut kept: Vec<CandidateModel> = self
            .candidates
            .iter()
            .filter(|c| match &c.config {
                ModelConfig::Sarimax(cfg) => keep_p(cfg.spec.p),
                _ => true,
            })
            .cloned()
            .collect();
        if kept.is_empty() {
            // Degenerate correlogram (white noise): keep the low-order
            // models, which is what a flat PACF recommends.
            kept = self
                .candidates
                .iter()
                .filter(|c| match &c.config {
                    ModelConfig::Sarimax(cfg) => cfg.spec.p <= 2,
                    _ => true,
                })
                .cloned()
                .collect();
        }
        kept.truncate(max_candidates);
        ModelGrid { candidates: kept }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_of(c: &CandidateModel) -> &ArimaSpec {
        &c.as_sarimax().expect("ARIMA-family candidate").spec
    }

    #[test]
    fn arima_grid_has_exactly_180_models() {
        assert_eq!(ModelGrid::arima().len(), 180);
    }

    #[test]
    fn sarimax_grid_has_exactly_660_models() {
        assert_eq!(ModelGrid::sarimax(24).len(), 660);
    }

    #[test]
    fn fourier_stage_completes_666() {
        let grid = ModelGrid::sarimax_exogenous(24, 4);
        let base = grid.candidates[0].as_sarimax().unwrap();
        let variants = ModelGrid::fourier_variants(base, &[24.0, 168.0]);
        assert_eq!(grid.len() + variants.len(), 666);
    }

    #[test]
    fn seasonal_menu_has_22_distinct_entries() {
        let set: std::collections::HashSet<_> = SEASONAL_MENU.iter().collect();
        assert_eq!(set.len(), 22);
    }

    #[test]
    fn arima_grid_covers_paper_examples() {
        // Table 2 lists ARIMA (13,1,1) and (25,1,1) — both must be in-grid.
        let grid = ModelGrid::arima();
        for (p, d, q) in [(13, 1, 1), (25, 1, 1), (4, 1, 1), (15, 1, 2)] {
            assert!(
                grid.candidates
                    .iter()
                    .any(|c| *spec_of(c) == ArimaSpec::arima(p, d, q)),
                "({p},{d},{q}) missing"
            );
        }
    }

    #[test]
    fn sarimax_grid_covers_paper_examples() {
        // Table 2 lists SARIMAX (13,1,2)(1,1,1,24) and (1,1,1)(0,1,1,24).
        let grid = ModelGrid::sarimax(24);
        for (p, d, q, sp, sd, sq) in [
            (13, 1, 2, 1, 1, 1),
            (1, 1, 1, 0, 1, 1),
            (27, 1, 2, 1, 1, 1),
            (4, 1, 1, 1, 1, 1),
        ] {
            let spec = ArimaSpec::sarima(p, d, q, sp, sd, sq, 24);
            assert!(
                grid.candidates.iter().any(|c| *spec_of(c) == spec),
                "{spec} missing"
            );
        }
    }

    #[test]
    fn every_candidate_validates() {
        for grid in [ModelGrid::arima(), ModelGrid::sarimax(24)] {
            for c in &grid.candidates {
                assert!(spec_of(c).validate().is_ok(), "{}", spec_of(c));
            }
        }
    }

    #[test]
    fn exogenous_grid_carries_columns() {
        let grid = ModelGrid::sarimax_exogenous(24, 4);
        assert_eq!(grid.len(), 660);
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.as_sarimax().unwrap().n_exog == 4));
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.family == ModelFamily::SarimaxFftExogenous));
    }

    #[test]
    fn ets_menu_is_simplest_first() {
        let grid = ModelGrid::ets(24, true, 0.9);
        let names: Vec<String> = grid
            .candidates
            .iter()
            .map(|c| c.config.describe())
            .collect();
        assert_eq!(names[0], "SES");
        assert_eq!(names[1], "Holt");
        assert!(names[2].contains("damped"));
        assert!(names[3].contains("additive"));
        assert!(names[4].contains("multiplicative"));
        assert!(grid.candidates.iter().all(|c| c.family == ModelFamily::Hes));
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.config.as_ets().unwrap().interval_level == 0.9));
        // Non-positive data drops the multiplicative member.
        assert_eq!(ModelGrid::ets(24, false, 0.95).len(), 4);
        // No usable period drops the seasonal members entirely.
        assert_eq!(ModelGrid::ets(0, true, 0.95).len(), 3);
    }

    #[test]
    fn tbats_lattice_matches_select() {
        // One period, λ available: 2 (boxcox) × 3 (trend) × 3 (arma) ×
        // 3 (harmonics) = 54 distinct configurations.
        let grid = ModelGrid::tbats(&[24.0], Some(0.5), 0.95);
        assert_eq!(grid.len(), 54);
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.family == ModelFamily::Tbats));
        // No λ halves the lattice; sub-Nyquist periods drop their blocks
        // and the harmonic dimension collapses.
        assert_eq!(ModelGrid::tbats(&[24.0], None, 0.95).len(), 27);
        assert_eq!(ModelGrid::tbats(&[3.0], None, 0.95).len(), 9);
        // Period 4 caps harmonics at 1, deduplicating the k dimension.
        assert_eq!(ModelGrid::tbats(&[4.0], None, 0.95).len(), 9);
    }

    #[test]
    fn pruning_keeps_only_significant_lags() {
        // Build a correlogram from a strongly AR(2) series.
        let mut y = vec![0.0; 2000];
        let mut state = 1u64;
        for t in 2..2000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            y[t] = 0.5 * y[t - 1] + 0.3 * y[t - 2] + e;
        }
        let corr = Correlogram::compute(&y, 30).unwrap();
        let pruned = ModelGrid::arima().prune(&corr, 1000);
        assert!(pruned.len() < 180);
        assert!(!pruned.is_empty());
        // Lag 1 always survives.
        assert!(pruned.candidates.iter().any(|c| spec_of(c).p == 1));
        // Non-ARIMA candidates pass through untouched.
        let hes = ModelGrid::ets(24, true, 0.95);
        assert_eq!(hes.prune(&corr, 1000).len(), hes.len());
    }

    #[test]
    fn pruning_respects_cap() {
        let y: Vec<f64> = (0..500).map(|t| (t as f64 / 12.0).sin() * 10.0).collect();
        let corr = Correlogram::compute(&y, 30).unwrap();
        let pruned = ModelGrid::sarimax(24).prune(&corr, 40);
        assert!(pruned.len() <= 40);
    }

    #[test]
    fn neighbourhood_centres_on_champion() {
        let base = SarimaxConfig::plain(ArimaSpec::sarima(4, 1, 2, 1, 1, 1, 24));
        let grid = ModelGrid::neighbourhood(&base, 1);
        // Champion first, then the surrounding (p, q) cells: p ∈ {3,4,5},
        // q ∈ {1,2} (q clamped at the grid's cap of 2) minus the centre.
        assert_eq!(*grid.candidates[0].as_sarimax().unwrap(), base);
        assert_eq!(grid.len(), 6);
        for c in &grid.candidates {
            assert_eq!(c.family, ModelFamily::Sarimax);
            assert_eq!(spec_of(c).d, 1);
            assert_eq!(spec_of(c).seasonal_p, 1);
            assert_eq!(spec_of(c).period, 24);
            assert!(spec_of(c).p.abs_diff(4) <= 1);
            assert!(spec_of(c).q.abs_diff(2) <= 1);
        }
    }

    #[test]
    fn neighbourhood_clamps_at_grid_edges() {
        // p = 1 cannot go below 1; q = 0 cannot go below 0.
        let base = SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0));
        let grid = ModelGrid::neighbourhood(&base, 1);
        assert_eq!(*grid.candidates[0].as_sarimax().unwrap(), base);
        assert_eq!(grid.len(), 4); // p ∈ {1,2} × q ∈ {0,1}
        assert!(grid
            .candidates
            .iter()
            .all(|c| c.family == ModelFamily::Arima && spec_of(c).p >= 1));
    }

    #[test]
    fn neighbourhood_of_hes_keeps_champion_first() {
        let champion = ModelConfig::Ets(EtsConfig::holt_winters(24));
        let grid = ModelGrid::neighbourhood_of(&champion, 1, 24);
        assert_eq!(grid.candidates[0].config, champion);
        assert_eq!(grid.len(), 5); // the full menu, champion hoisted first
        assert!(grid.candidates.iter().all(|c| c.family == ModelFamily::Hes));
        // A non-seasonal champion falls back to the supplied period.
        let ses = ModelConfig::Ets(EtsConfig::ses());
        let grid = ModelGrid::neighbourhood_of(&ses, 1, 12);
        assert_eq!(grid.candidates[0].config, ses);
        assert!(grid.candidates.iter().any(|c| {
            matches!(
                c.config.as_ets().map(|e| e.seasonal),
                Some(SeasonalKind::Additive(12))
            )
        }));
    }

    #[test]
    fn neighbourhood_of_tbats_varies_arma_and_harmonics() {
        let mut champion = TbatsConfig::seasonal(24.0, 2);
        champion.arma = (1, 0);
        let base = ModelConfig::Tbats(champion.clone());
        let grid = ModelGrid::neighbourhood_of(&base, 1, 24);
        assert_eq!(grid.candidates[0].config, base);
        // 2 other ARMA orders + harmonics {1, 3}.
        assert_eq!(grid.len(), 5);
        for c in &grid.candidates {
            let cfg = c.config.as_tbats().unwrap();
            assert_eq!(cfg.use_trend, champion.use_trend);
            assert_eq!(cfg.lambda, champion.lambda);
        }
    }

    #[test]
    fn neighbourhood_of_sarimax_delegates() {
        let base = SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0));
        let via_enum = ModelGrid::neighbourhood_of(&ModelConfig::Sarimax(base.clone()), 1, 24);
        assert_eq!(via_enum.len(), ModelGrid::neighbourhood(&base, 1).len());
    }

    #[test]
    fn canonical_normalises_degenerate_components() {
        // Holt-Winters at period 1 is effectively Holt.
        let hw1 = ModelConfig::Ets(EtsConfig::holt_winters(1));
        assert_eq!(hw1.canonical(), ModelConfig::Ets(EtsConfig::holt()));
        // Period ≥ 2 is already canonical.
        let hw24 = ModelConfig::Ets(EtsConfig::holt_winters(24));
        assert_eq!(hw24.canonical(), hw24);
        // TBATS: sub-period blocks drop, trendless damping clears.
        let tb = ModelConfig::Tbats(TbatsConfig {
            use_damping: true,
            seasons: vec![TbatsSeason {
                period: 1.5,
                harmonics: 1,
            }],
            ..TbatsConfig::level_only()
        });
        let canon = tb.canonical();
        let cfg = canon.as_tbats().unwrap();
        assert!(cfg.seasons.is_empty());
        assert!(!cfg.use_damping);
        // SARIMAX passes through unchanged.
        let sx = ModelConfig::Sarimax(SarimaxConfig::plain(ArimaSpec::arima(2, 1, 1)));
        assert_eq!(sx.canonical(), sx);
    }

    #[test]
    fn dedupe_collapses_equivalent_candidates() {
        let mut cands = vec![
            CandidateModel::new(ModelConfig::Ets(EtsConfig::holt())),
            // Collapses to Holt under canonicalisation.
            CandidateModel::new(ModelConfig::Ets(EtsConfig::holt_winters(1))),
            CandidateModel::new(ModelConfig::Ets(EtsConfig::ses())),
            // Exact duplicate.
            CandidateModel::new(ModelConfig::Ets(EtsConfig::holt())),
        ];
        dedupe_candidates(&mut cands);
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].config, ModelConfig::Ets(EtsConfig::holt()));
        assert_eq!(cands[1].config, ModelConfig::Ets(EtsConfig::ses()));
    }

    #[test]
    fn dedupe_preserves_distinct_union_grid() {
        // The real union menus are already duplicate-free: dedupe must not
        // drop or reorder anything.
        let mut union: Vec<CandidateModel> = ModelGrid::arima()
            .candidates
            .into_iter()
            .chain(ModelGrid::sarimax(24).candidates)
            .chain(ModelGrid::ets(24, true, 0.95).candidates)
            .chain(ModelGrid::tbats(&[24.0], None, 0.95).candidates)
            .collect();
        let before = union.clone();
        dedupe_candidates(&mut union);
        assert_eq!(union.len(), before.len());
        for (a, b) in union.iter().zip(&before) {
            assert_eq!(a.config, b.config);
        }
    }

    #[test]
    fn family_index_follows_all_order() {
        for (i, family) in ModelFamily::ALL.iter().enumerate() {
            assert_eq!(family.index(), i);
        }
        assert_eq!(ModelFamily::COUNT, 5);
    }

    #[test]
    fn family_labels_match_tables() {
        assert_eq!(ModelFamily::Arima.label(), "ARIMA");
        assert_eq!(ModelFamily::Sarimax.label(), "SARIMAX");
        assert_eq!(
            ModelFamily::SarimaxFftExogenous.label(),
            "SARIMAX FFT Exogenous"
        );
        assert_eq!(ModelFamily::Hes.label(), "HES");
        assert_eq!(ModelFamily::Tbats.label(), "TBATS");
    }

    #[test]
    fn model_config_round_trips_through_serde() {
        let configs = [
            ModelConfig::Sarimax(SarimaxConfig::plain(ArimaSpec::sarima(
                2, 1, 1, 1, 1, 1, 24,
            ))),
            ModelConfig::Ets(EtsConfig::holt_winters_multiplicative(12)),
            ModelConfig::Tbats(TbatsConfig::seasonal(24.0, 3)),
        ];
        for config in &configs {
            let json = serde_json::to_string(config).unwrap();
            let back: ModelConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(&back, config, "{json}");
        }
    }
}
