//! Data-driven shock detection.
//!
//! The scenario builders *know* their backup schedules, but a live system
//! does not hand the planner a calendar: §5.1 says the pipeline's data
//! analysis discovers "stationarity, seasonality, multiple seasonality and
//! **shocks**", and §9's policy only admits an event as behaviour after it
//! recurs more than three times.
//!
//! The detector works on the recurrence structure: a backup is a phase of
//! the daily cycle that sticks far above its neighbouring phases, every
//! cycle. Classical decomposition cannot find it (a nightly spike *is*
//! seasonal and is absorbed into the seasonal component), so instead the
//! detector compares each phase's typical level against a smooth
//! cross-phase baseline and counts per-cycle occurrences into a
//! [`ShockTracker`], emitting exogenous indicator columns once the
//! >threshold-occurrence rule admits the slot as behaviour.

// lint: allow-file(indexing) — phase-grid folds; phase and cycle indices are bounded by the period/cycle counts derived from the series length on entry

use crate::repository::ShockTracker;
use crate::{PlannerError, Result};
use dwcp_series::rolling::{mad, median, robust_z_scores};

/// One detected recurring shock slot.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectedShock {
    /// Phase within the period (e.g. hour-of-day 0 for a midnight backup).
    pub phase: usize,
    /// The recurrence period in observations (24 for daily in hourly data).
    pub period: usize,
    /// How many cycles actually exhibited the spike.
    pub occurrences: u32,
    /// Typical magnitude above the smooth baseline, in series units.
    pub magnitude: f64,
}

impl DetectedShock {
    /// Tracker key for this slot.
    pub fn key(&self) -> String {
        format!("p{}-phase{}", self.period, self.phase)
    }

    /// The 0/1 exogenous indicator column for `len` observations starting
    /// at absolute index `start`.
    pub fn indicator(&self, start: usize, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                if (start + i) % self.period == self.phase {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }
}

/// Configuration of the shock detector.
#[derive(Debug, Clone)]
pub struct ShockDetector {
    /// Recurrence period to scan (usually the primary seasonal period).
    pub period: usize,
    /// Robust z-score a phase must exceed against the cross-phase baseline.
    pub z_threshold: f64,
    /// Also detect recurring *dips* (negative deviations) — the signature
    /// of a scheduled failover drill on the node that goes down (§9's
    /// "perfectly plausible that the system fails over to a new site to
    /// test disaster recovery"). Dips report a negative magnitude.
    pub detect_dips: bool,
    /// Occurrence counting: the >N-times rule (§9). Shared tracker so
    /// repeated scans accumulate evidence.
    pub tracker: ShockTracker,
}

impl ShockDetector {
    /// Detector with the paper's defaults: >3 occurrences, z > 4,
    /// spikes only.
    pub fn new(period: usize) -> ShockDetector {
        ShockDetector {
            period,
            z_threshold: 4.0,
            detect_dips: false,
            tracker: ShockTracker::new(),
        }
    }

    /// Scan a gap-free series and return the slots that have crossed the
    /// behaviour threshold. Re-scanning accumulates occurrences in the
    /// tracker (streaming use), so pass disjoint windows when replaying.
    pub fn detect(&mut self, values: &[f64]) -> Result<Vec<DetectedShock>> {
        let m = self.period;
        if m < 4 {
            return Err(PlannerError::Series(
                dwcp_series::SeriesError::InvalidParameter {
                    context: "ShockDetector: period must be at least 4",
                },
            ));
        }
        if values.len() < 3 * m {
            return Err(PlannerError::Series(dwcp_series::SeriesError::TooShort {
                needed: 3 * m,
                got: values.len(),
            }));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(PlannerError::Series(dwcp_series::SeriesError::NonFinite));
        }

        // 1. Linear detrend so growth does not masquerade as phase offsets.
        let detrended = detrend(values);

        // 2. Typical level per phase (median across cycles — robust to the
        //    odd missed backup).
        let mut per_phase: Vec<Vec<f64>> = vec![Vec::new(); m];
        for (t, &v) in detrended.iter().enumerate() {
            per_phase[t % m].push(v);
        }
        let pattern: Vec<f64> = per_phase.iter().map(|vs| median(vs)).collect();

        // 3. Smooth cross-phase baseline in two passes. Pass one uses the
        //    median of the cyclic neighbours; but a −30 dip sitting in a
        //    neighbour set shifts the rank statistics of every adjacent
        //    phase on a sloped seasonal pattern, so pass two recomputes
        //    each baseline with the suspect slots excluded.
        let baseline_pass = |suspect: &[bool]| -> Vec<f64> {
            (0..m)
                .map(|k| {
                    let mut neigh: Vec<f64> = [2, 1]
                        .iter()
                        .map(|&d| (k + m - d) % m)
                        .chain([1usize, 2, 3].iter().map(|&d| (k + d) % m))
                        .chain(std::iter::once((k + m - 3) % m))
                        .filter(|&idx| !suspect[idx])
                        .map(|idx| pattern[idx])
                        .collect();
                    if neigh.len() < 2 {
                        // Everything nearby is suspect: fall back to the
                        // full neighbour set.
                        neigh = (1..=3)
                            .flat_map(|d| [(k + m - d) % m, (k + d) % m])
                            .map(|idx| pattern[idx])
                            .collect();
                    }
                    median(&neigh)
                })
                .collect()
        };
        let deviations_of = |baseline: &[f64]| -> Vec<f64> {
            pattern.iter().zip(baseline).map(|(p, b)| p - b).collect()
        };
        let no_suspects = vec![false; m];
        let first_baseline = baseline_pass(&no_suspects);
        let first_dev = deviations_of(&first_baseline);
        let first_z = robust_z_scores(&first_dev);
        let prelim_scale = residual_scale(&detrended, &pattern, m);
        let suspects: Vec<bool> = (0..m)
            .map(|k| first_z[k].abs() > self.z_threshold && first_dev[k].abs() > 3.0 * prelim_scale)
            .collect();
        let baseline = baseline_pass(&suspects);
        let deviations = deviations_of(&baseline);
        let z = robust_z_scores(&deviations);

        // 4. Candidate slots, then per-cycle occurrence counting. The
        // z-score (relative to the other phases' deviations) must be
        // extreme AND the deviation must dwarf the within-phase residual
        // noise — one huge genuine shock otherwise compresses the MAD so
        // far that ordinary phase-to-phase wobble starts scoring z > 4.
        let resid_scale = residual_scale(&detrended, &pattern, m);
        let material = 3.0 * resid_scale;
        let mut out = Vec::new();
        for k in 0..m {
            let is_spike = z[k] > self.z_threshold && deviations[k] > material;
            let is_dip = self.detect_dips && z[k] < -self.z_threshold && deviations[k] < -material;
            if !is_spike && !is_dip {
                continue;
            }
            // A cycle "exhibits" the shock when its value at this phase is
            // closer to the shocked pattern than to the smooth baseline
            // (sign-aware for dips).
            let midpoint = baseline[k] + 0.5 * deviations[k];
            let mut occurrences = 0u32;
            for &v in &per_phase[k] {
                let fired = if is_spike {
                    v > midpoint && v > baseline[k] + 2.0 * resid_scale
                } else {
                    v < midpoint && v < baseline[k] - 2.0 * resid_scale
                };
                if fired {
                    occurrences += 1;
                }
            }
            let shock = DetectedShock {
                phase: k,
                period: m,
                occurrences,
                magnitude: deviations[k],
            };
            for _ in 0..occurrences {
                self.tracker.record(&shock.key());
            }
            if self.tracker.is_behaviour(&shock.key()) {
                out.push(shock);
            }
        }
        out.sort_by(|a, b| dwcp_math::total_cmp_f64(b.magnitude.abs(), a.magnitude.abs()));
        Ok(out)
    }

    /// Indicator columns for a set of detected shocks.
    pub fn indicator_columns(shocks: &[DetectedShock], start: usize, len: usize) -> Vec<Vec<f64>> {
        shocks.iter().map(|s| s.indicator(start, len)).collect()
    }
}

/// Remove the least-squares line.
fn detrend(values: &[f64]) -> Vec<f64> {
    let n = values.len() as f64;
    let mean_t = (n - 1.0) / 2.0;
    let mean_y = values.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (t, &y) in values.iter().enumerate() {
        let dt = t as f64 - mean_t;
        sxy += dt * (y - mean_y);
        sxx += dt * dt;
    }
    let slope = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    values
        .iter()
        .enumerate()
        .map(|(t, &y)| y - mean_y - slope * (t as f64 - mean_t))
        .collect()
}

/// Robust residual scale after removing the per-phase pattern.
fn residual_scale(detrended: &[f64], pattern: &[f64], m: usize) -> f64 {
    let residuals: Vec<f64> = detrended
        .iter()
        .enumerate()
        .map(|(t, &v)| v - pattern[t % m])
        .collect();
    mad(&residuals).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly series: daily sinusoid + trend + a backup spike at given
    /// hours-of-day.
    fn series_with_spikes(days: usize, spike_hours: &[usize], magnitude: f64) -> Vec<f64> {
        (0..days * 24)
            .map(|t| {
                let tf = t as f64;
                let mut v = 50.0
                    + 0.02 * tf
                    + 10.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                    + ((t.wrapping_mul(2654435761) % 97) as f64) / 40.0;
                if spike_hours.contains(&(t % 24)) {
                    v += magnitude;
                }
                v
            })
            .collect()
    }

    #[test]
    fn detects_midnight_backup() {
        let y = series_with_spikes(21, &[0], 30.0);
        let mut det = ShockDetector::new(24);
        let shocks = det.detect(&y).unwrap();
        assert_eq!(shocks.len(), 1, "{shocks:?}");
        assert_eq!(shocks[0].phase, 0);
        assert!(shocks[0].occurrences >= 18);
        assert!((shocks[0].magnitude - 30.0).abs() < 8.0);
    }

    #[test]
    fn detects_six_hourly_backups_as_four_slots() {
        let y = series_with_spikes(21, &[0, 6, 12, 18], 25.0);
        let mut det = ShockDetector::new(24);
        let shocks = det.detect(&y).unwrap();
        let phases: Vec<usize> = shocks.iter().map(|s| s.phase).collect();
        for expect in [0usize, 6, 12, 18] {
            assert!(phases.contains(&expect), "missing {expect} in {phases:?}");
        }
        assert_eq!(shocks.len(), 4, "{shocks:?}");
    }

    #[test]
    fn clean_series_has_no_shocks() {
        let y = series_with_spikes(21, &[], 0.0);
        let mut det = ShockDetector::new(24);
        assert!(det.detect(&y).unwrap().is_empty());
    }

    #[test]
    fn rare_event_is_discarded_until_it_recurs() {
        // Spike only in the first 3 of 21 days: a few occurrences, enough
        // for the tracker… build manually: spikes on days 0-2 only.
        let mut y = series_with_spikes(21, &[], 0.0);
        for day in 0..3 {
            y[day * 24] += 30.0;
        }
        let mut det = ShockDetector::new(24);
        let shocks = det.detect(&y).unwrap();
        // Three occurrences do not clear the >3 rule; also the per-phase
        // median over 21 days is barely moved by 3 spiked days.
        assert!(shocks.is_empty(), "{shocks:?}");
    }

    #[test]
    fn occurrences_accumulate_across_scans() {
        // Two consecutive 10-day windows, spike in both: tracker totals.
        let y1 = series_with_spikes(10, &[5], 28.0);
        let y2 = series_with_spikes(10, &[5], 28.0);
        let mut det = ShockDetector::new(24);
        let first = det.detect(&y1).unwrap();
        assert!(!first.is_empty()); // 10 days already clears the rule
        let count_after_one = det.tracker.count("p24-phase5");
        det.detect(&y2).unwrap();
        assert!(det.tracker.count("p24-phase5") > count_after_one);
    }

    #[test]
    fn indicator_matches_phase() {
        let shock = DetectedShock {
            phase: 6,
            period: 24,
            occurrences: 10,
            magnitude: 20.0,
        };
        let ind = shock.indicator(0, 48);
        assert_eq!(ind.iter().sum::<f64>(), 2.0);
        assert_eq!(ind[6], 1.0);
        assert_eq!(ind[30], 1.0);
        // Start offset shifts the phase.
        let ind2 = shock.indicator(6, 24);
        assert_eq!(ind2[0], 1.0);
    }

    #[test]
    fn dips_require_opt_in_and_report_negative_magnitude() {
        // A recurring failover dip at hour 4: value drops by 30.
        let y: Vec<f64> = (0..24usize * 21)
            .map(|t| {
                let tf = t as f64;
                let mut v = 100.0
                    + 10.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                    + ((t.wrapping_mul(2654435761) % 97) as f64) / 40.0;
                if t % 24 == 4 {
                    v -= 30.0;
                }
                v
            })
            .collect();
        // Default detector: spikes only, sees nothing.
        let mut spikes_only = ShockDetector::new(24);
        assert!(spikes_only.detect(&y).unwrap().is_empty());
        // Dip-aware detector finds the failover slot.
        let mut dip_aware = ShockDetector {
            detect_dips: true,
            ..ShockDetector::new(24)
        };
        let shocks = dip_aware.detect(&y).unwrap();
        assert_eq!(shocks.len(), 1, "{shocks:?}");
        assert_eq!(shocks[0].phase, 4);
        assert!(shocks[0].magnitude < -20.0, "{}", shocks[0].magnitude);
    }

    #[test]
    fn mixed_spikes_and_dips_rank_by_absolute_magnitude() {
        let y: Vec<f64> = (0..24usize * 21)
            .map(|t| {
                let mut v = 100.0 + ((t * 7919 % 101) as f64) / 40.0;
                if t % 24 == 2 {
                    v += 20.0; // smaller spike
                }
                if t % 24 == 10 {
                    v -= 45.0; // bigger dip
                }
                v
            })
            .collect();
        let mut det = ShockDetector {
            detect_dips: true,
            ..ShockDetector::new(24)
        };
        let shocks = det.detect(&y).unwrap();
        assert_eq!(shocks.len(), 2, "{shocks:?}");
        assert_eq!(shocks[0].phase, 10, "biggest first: {shocks:?}");
        assert!(shocks[0].magnitude < 0.0);
        assert_eq!(shocks[1].phase, 2);
        assert!(shocks[1].magnitude > 0.0);
    }

    #[test]
    fn trend_does_not_create_false_positives() {
        let y: Vec<f64> = (0..24usize * 21)
            .map(|t| 10.0 + 0.5 * t as f64 + ((t * 31 % 13) as f64) / 10.0)
            .collect();
        let mut det = ShockDetector::new(24);
        assert!(det.detect(&y).unwrap().is_empty());
    }

    #[test]
    fn rejects_short_or_invalid_input() {
        let mut det = ShockDetector::new(24);
        assert!(det.detect(&[1.0; 30]).is_err());
        let mut det2 = ShockDetector::new(2);
        assert!(det2.detect(&[1.0; 100]).is_err());
        let mut y = series_with_spikes(10, &[], 0.0);
        y[5] = f64::NAN;
        assert!(det.detect(&y).is_err());
    }

    #[test]
    fn detected_shock_improves_downstream_forecast() {
        // End-to-end within the module: feed detected indicators into a
        // SARIMAX and verify the shock hour is predicted.
        let y = series_with_spikes(30, &[0], 35.0);
        let mut det = ShockDetector::new(24);
        let shocks = det.detect(&y[..600]).unwrap();
        assert!(!shocks.is_empty());
        let cols_train = ShockDetector::indicator_columns(&shocks, 0, 600);
        let cols_test = ShockDetector::indicator_columns(&shocks, 600, 24);
        let config = dwcp_models::SarimaxConfig {
            spec: dwcp_models::ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 24),
            fourier: Default::default(),
            n_exog: shocks.len(),
        };
        let fit = dwcp_models::FittedSarimax::fit(
            &y[..600],
            &config,
            &cols_train,
            0,
            &dwcp_models::arima::ArimaOptions {
                max_evals: 150,
                restarts: 0,
                interval_level: 0.95,
                ..Default::default()
            },
        )
        .unwrap();
        let forecast = fit.forecast(24, &cols_test).unwrap();
        let actual = &y[600..624];
        let rmse = dwcp_series::accuracy::rmse(actual, &forecast.mean).unwrap();
        assert!(rmse < 8.0, "rmse = {rmse}");
    }
}
