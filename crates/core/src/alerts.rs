//! Capacity alerting from live forecasts (§8, §9).
//!
//! The paper's deployment goal is *proactive* monitoring: "utilising these
//! techniques to predict when a threshold is likely to be breached is an
//! advisable way to implement this approach". [`crate::advisor`] owns the
//! single-forecast breach scan; this module is the resident layer above it
//! — named [`AlertRule`]s evaluated against each re-forecast of each
//! workload, with de-duplication so a daemon re-scoring every hour does
//! not re-fire an identical alert every hour.
//!
//! Firing policy: an alert fires when a rule first detects a breach, and
//! again only when the situation *worsens* — the breach moves earlier,
//! escalates from [`BreachSeverity::Possible`] to
//! [`BreachSeverity::Expected`], or reappears after a clear scan. A
//! breach that merely persists unchanged stays silent.

use crate::advisor::{Advisory, BreachSeverity, ThresholdAdvisor};
use dwcp_models::Forecast;
use std::collections::BTreeMap;

/// A named capacity threshold watched by the alert engine.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, echoed on every alert (e.g. `"cpu-85"`).
    pub name: String,
    /// The capacity threshold being watched.
    pub threshold: f64,
}

impl AlertRule {
    /// A rule named `name` watching `threshold`.
    pub fn new(name: impl Into<String>, threshold: f64) -> AlertRule {
        AlertRule {
            name: name.into(),
            threshold,
        }
    }
}

/// A fired capacity alert: one rule breached by one workload's forecast.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityAlert {
    /// Workload key the forecast belongs to (e.g. `"cdbm012/CPU"`).
    pub workload: String,
    /// Name of the rule that fired.
    pub rule: String,
    /// Threshold that was breached.
    pub threshold: f64,
    /// Severity of the breach call.
    pub severity: BreachSeverity,
    /// Horizon step (0-based) of the first crossing.
    pub step: usize,
    /// Epoch-seconds timestamp of the crossing.
    pub timestamp: u64,
    /// Forecast mean at the crossing.
    pub forecast_mean: f64,
    /// Upper interval bound at the crossing.
    pub forecast_upper: f64,
}

impl CapacityAlert {
    fn from_advisory(workload: &str, rule: &AlertRule, adv: &Advisory) -> CapacityAlert {
        CapacityAlert {
            workload: workload.to_string(),
            rule: rule.name.clone(),
            threshold: rule.threshold,
            severity: adv.severity,
            step: adv.step,
            timestamp: adv.timestamp,
            forecast_mean: adv.forecast_mean,
            forecast_upper: adv.forecast_upper,
        }
    }
}

/// The last breach state seen per (workload, rule), for de-duplication.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BreachState {
    step: usize,
    severity: BreachSeverity,
}

/// Resident alert stage: rules × workloads, with re-fire hysteresis.
///
/// ```
/// use dwcp_core::alerts::{AlertEngine, AlertRule};
/// use dwcp_models::Forecast;
///
/// let mut engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
/// let forecast =
///     Forecast::with_normal_intervals(vec![70.0, 90.0], vec![1.0, 1.0], 0.95);
/// let fired = engine.scan("db1/CPU", &forecast, 0, 3600);
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].rule, "cpu-85");
/// // The identical breach on the next scan is de-duplicated.
/// assert!(engine.scan("db1/CPU", &forecast, 0, 3600).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    /// Last-fired breach per `(workload, rule)` pair.
    last: BTreeMap<(String, String), BreachState>,
    fired: u64,
    suppressed: u64,
}

impl AlertEngine {
    /// An engine evaluating `rules` on every scan.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules,
            last: BTreeMap::new(),
            fired: 0,
            suppressed: 0,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Add a rule to subsequent scans.
    pub fn add_rule(&mut self, rule: AlertRule) {
        self.rules.push(rule);
    }

    /// Total alerts fired so far.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Breach detections suppressed as duplicates of the last fired state.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Evaluate every rule against one workload's fresh forecast
    /// (`start_ts` = timestamp of horizon step 0, `step_seconds` between
    /// steps). Returns the alerts that fire — breaches that are new,
    /// earlier, or escalated relative to the last fired state. A clear
    /// scan resets the rule so a returning breach fires again.
    pub fn scan(
        &mut self,
        workload: &str,
        forecast: &Forecast,
        start_ts: u64,
        step_seconds: u64,
    ) -> Vec<CapacityAlert> {
        let mut alerts = Vec::new();
        for rule in &self.rules {
            let advisor = ThresholdAdvisor::new(rule.threshold);
            let key = (workload.to_string(), rule.name.clone());
            match advisor.analyze(forecast, start_ts, step_seconds) {
                Some(adv) => {
                    let state = BreachState {
                        step: adv.step,
                        severity: adv.severity,
                    };
                    // The decision itself lives in the protocol module so
                    // the model checker exercises this exact policy.
                    let worsened = crate::protocol::alert_refire(
                        self.last.get(&key).map(|p| (p.step, p.severity)),
                        state.step,
                        state.severity,
                    );
                    if worsened {
                        self.last.insert(key, state);
                        self.fired += 1;
                        alerts.push(CapacityAlert::from_advisory(workload, rule, &adv));
                    } else {
                        self.suppressed += 1;
                    }
                }
                None => {
                    // Breach cleared: forget it so a recurrence re-fires.
                    self.last.remove(&key);
                }
            }
        }
        alerts
    }

    /// Evaluate every rule against a forecast without recording state —
    /// the one-shot (batch CLI / example) view of the same rules.
    pub fn evaluate(
        &self,
        workload: &str,
        forecast: &Forecast,
        start_ts: u64,
        step_seconds: u64,
    ) -> Vec<CapacityAlert> {
        self.rules
            .iter()
            .filter_map(|rule| {
                ThresholdAdvisor::new(rule.threshold)
                    .analyze(forecast, start_ts, step_seconds)
                    .map(|adv| CapacityAlert::from_advisory(workload, rule, &adv))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising() -> Forecast {
        Forecast::with_normal_intervals(
            vec![70.0, 80.0, 90.0, 100.0],
            vec![5.0, 5.0, 5.0, 5.0],
            0.95,
        )
    }

    fn flat(level: f64) -> Forecast {
        Forecast::with_normal_intervals(vec![level; 4], vec![1.0; 4], 0.95)
    }

    #[test]
    fn first_breach_fires_duplicate_is_suppressed() {
        let mut engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
        let fired = engine.scan("db1/CPU", &rising(), 0, 3600);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].workload, "db1/CPU");
        assert_eq!(fired[0].rule, "cpu-85");
        assert_eq!(fired[0].severity, BreachSeverity::Possible);
        assert!(engine.scan("db1/CPU", &rising(), 0, 3600).is_empty());
        assert_eq!(engine.fired(), 1);
        assert_eq!(engine.suppressed(), 1);
    }

    #[test]
    fn escalation_to_expected_refires() {
        let mut engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
        // First scan: upper band crosses at step 1 (Possible).
        let first = engine.scan("db1/CPU", &rising(), 0, 3600);
        assert_eq!(first[0].severity, BreachSeverity::Possible);
        // Mean now crosses at the same step: escalation fires.
        let hotter =
            Forecast::with_normal_intervals(vec![70.0, 90.0, 95.0, 100.0], vec![5.0; 4], 0.95);
        let second = engine.scan("db1/CPU", &hotter, 0, 3600);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].severity, BreachSeverity::Expected);
    }

    #[test]
    fn earlier_breach_refires() {
        let mut engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
        assert_eq!(engine.scan("db1/CPU", &rising(), 0, 3600)[0].step, 1);
        // The breach moves to step 0: worse news, fire again.
        let sooner =
            Forecast::with_normal_intervals(vec![86.0, 90.0, 95.0, 100.0], vec![5.0; 4], 0.95);
        let again = engine.scan("db1/CPU", &sooner, 0, 3600);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].step, 0);
        assert_eq!(again[0].severity, BreachSeverity::Expected);
    }

    #[test]
    fn clear_then_return_refires() {
        let mut engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
        assert_eq!(engine.scan("db1/CPU", &rising(), 0, 3600).len(), 1);
        // Breach clears…
        assert!(engine.scan("db1/CPU", &flat(10.0), 0, 3600).is_empty());
        // …and comes back: fire again.
        assert_eq!(engine.scan("db1/CPU", &rising(), 0, 3600).len(), 1);
        assert_eq!(engine.fired(), 2);
    }

    #[test]
    fn rules_and_workloads_are_independent() {
        let mut engine = AlertEngine::new(vec![
            AlertRule::new("cpu-85", 85.0),
            AlertRule::new("cpu-95", 95.0),
        ]);
        let fired = engine.scan("db1/CPU", &rising(), 0, 3600);
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].rule, "cpu-85");
        assert_eq!(fired[1].rule, "cpu-95");
        // A different workload with the same forecast fires independently.
        assert_eq!(engine.scan("db2/CPU", &rising(), 0, 3600).len(), 2);
        // Both are now de-duplicated.
        assert!(engine.scan("db1/CPU", &rising(), 0, 3600).is_empty());
        assert!(engine.scan("db2/CPU", &rising(), 0, 3600).is_empty());
    }

    #[test]
    fn one_shot_evaluate_records_no_state() {
        let engine = AlertEngine::new(vec![AlertRule::new("cpu-85", 85.0)]);
        let a = engine.evaluate("db1/CPU", &rising(), 500, 60);
        let b = engine.evaluate("db1/CPU", &rising(), 500, 60);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].timestamp, 500 + 60);
        assert_eq!(engine.fired(), 0);
    }
}
