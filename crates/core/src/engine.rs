//! The staged forecasting engine: ingest → aggregate → score → alert.
//!
//! The paper's deployment loop is continuous (§5.1): agents poll every
//! instance on a 15-minute cadence, hourly aggregates accumulate, the
//! repository champion is re-scored as data arrives and relearned only
//! when the Figure 4 retention rules fire. The batch pipeline ran that
//! loop one CSV at a time; this module decomposes it into four
//! first-class stages shared by both callers:
//!
//! * **ingest** — [`IngestStage`]: out-of-order 15-minute points folded
//!   into hourly buckets in place ([`dwcp_series::ingest`]),
//! * **aggregate** — [`AggregateStage`]: interpolation, shock discovery,
//!   the Table 1 split and the profiled candidate grid (what
//!   `Pipeline::plan` used to do inline),
//! * **score** — [`ScoreStage`]: grid evaluation with the auto-order
//!   benchmark fallback and the §6.3 Fourier stage (the former body of
//!   `Pipeline::run` / `finish`),
//! * **alert** — [`AlertStage`]: threshold rules over the live forecast
//!   ([`crate::alerts`]).
//!
//! [`crate::pipeline::Pipeline::run`] is now a thin composition of
//! aggregate + score, so
//! the batch `forecast`/`fleet` paths and the resident [`Engine`] under
//! `dwcp serve` produce **bit-identical champions** from the same data —
//! the stages are the single implementation, not a parallel one.
//!
//! The resident [`Engine`] adds the incremental contract on top: each
//! appended hour re-scores the stored champion **frozen**
//! (`freeze_warm_start`: the stored parameters are evaluated verbatim, one
//! objective evaluation, no optimiser) and only a
//! [`RelearnReason`] — missing, one-week stale, or RMSE degraded past the
//! policy factor — triggers a grid search, which runs through the same
//! champion-seeded fleet machinery as the weekly batch relearn.

use crate::alerts::{AlertEngine, AlertRule, CapacityAlert};
use crate::auto_order::{naive_benchmark_rmse, AutoOrderOptions, AutoOrderPlan};
use crate::candidates::{CandidateSet, DataProfile};
use crate::evaluate::{evaluate_candidates, evaluate_fleet, EvalTask, EvaluationOptions};
use crate::evaluate::{EvaluationReport, ModelScore};
use crate::fleet::{run_batch_on, FleetOptions, SeriesJob};
use crate::grid::{CandidateModel, ModelConfig, ModelGrid};
use crate::pipeline::{ForecastOutcome, GridStrategy, PipelineConfig};
use crate::repository::{ModelRecord, ModelRepository, RelearnReason};
use crate::{PlannerError, Result};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::{
    EtsFitOptions, FittedEts, FittedSarimax, FittedTbats, Forecast, TbatsFitOptions,
};
use dwcp_series::boxcox::{select_lambda, shift_to_positive};
use dwcp_series::ingest::{IngestBuffer, PointOrder, SeriesPage};
use dwcp_series::interpolate::interpolate_series;
use dwcp_series::{TimeSeries, TrainTestSplit};
use std::collections::BTreeMap;

/// Everything the aggregate stage prepares before any model is fitted:
/// the split, its aligned exogenous columns, the profiled candidate set
/// for the configured method and the evaluation options. Produced by
/// [`AggregateStage::prepare`] and consumed by [`ScoreStage`] / the fleet
/// scheduler.
pub(crate) struct EvalPlan {
    pub split: TrainTestSplit,
    pub exog_train: Vec<Vec<f64>>,
    pub exog_test: Vec<Vec<f64>>,
    #[allow(dead_code)]
    pub offset: usize,
    pub gaps_filled: usize,
    pub set: CandidateSet,
    pub eval_opts: EvaluationOptions,
    /// Present only under [`GridStrategy::AutoOrder`]: the differencing
    /// order the seeded grid was built with (for the drift benchmark) and
    /// the full-strategy SARIMAX models to fall back to when the seeded
    /// champion degrades past the naive benchmark.
    pub auto_fallback: Option<AutoFallback>,
}

/// The insurance attached to an auto-order plan (see [`EvalPlan`]).
pub(crate) struct AutoFallback {
    /// Differencing order the auto plan diagnosed.
    pub d: usize,
    /// The full-strategy candidates to evaluate on degradation.
    pub models: Vec<CandidateModel>,
}

/// The **aggregate** stage: everything between raw observations and a
/// ready-to-fit evaluation plan — interpolation, optional shock discovery,
/// the Table 1 split with aligned exogenous columns, profiling, and the
/// candidate grid for the configured method.
pub struct AggregateStage;

impl AggregateStage {
    /// Prepare an [`EvalPlan`] for one series under one configuration.
    /// This is the former body of `Pipeline::plan`, moved verbatim so the
    /// batch pipeline, the fleet scheduler and the resident engine share
    /// one implementation.
    pub(crate) fn prepare(
        config: &PipelineConfig,
        series: &TimeSeries,
        exog_full: &[Vec<f64>],
    ) -> Result<EvalPlan> {
        let method = config.method;
        // 1. Gather + missing-value check + interpolation (§5.1).
        let mut working = series.clone();
        let gaps_filled = if working.has_gaps() {
            interpolate_series(&mut working)?
        } else {
            0
        };

        // Exogenous columns only matter when SARIMAX candidates are in
        // play; the smoothing families ignore them entirely.
        let exog_full: &[Vec<f64>] = if method.includes_sarimax() {
            exog_full
        } else {
            &[]
        };

        // 1b. Optional shock discovery: when the caller has no shock
        // calendar, mine the recurring spikes from the data itself and use
        // the admitted slots as exogenous indicators.
        let detected_exog: Vec<Vec<f64>>;
        let exog_full: &[Vec<f64>] = if exog_full.is_empty()
            && config.auto_detect_shocks
            && method.includes_sarimax()
        {
            let period = config.granularity.seasonal_period();
            let mut detector = crate::shocks::ShockDetector::new(period);
            match detector.detect(working.values()) {
                Ok(shocks) if !shocks.is_empty() => {
                    detected_exog =
                        crate::shocks::ShockDetector::indicator_columns(&shocks, 0, working.len());
                    &detected_exog
                }
                _ => exog_full,
            }
        } else {
            exog_full
        };

        // 2. Table 1 split.
        let split = TrainTestSplit::from_series(&working, config.granularity)?;
        // Exogenous columns must be sliced to the same trailing window.
        let window = config.granularity.observations();
        let offset = working.len() - window;
        let train_len = split.train.len();
        let (exog_train, exog_test) = split_exog_window(exog_full, offset, window, train_len)?;

        // 3. Profile + the candidate grid for the chosen families.
        let train = split.train.values();
        let profile = DataProfile::analyze(train)?;
        let fallback_period = config.granularity.seasonal_period();
        let mut models: Vec<CandidateModel> = Vec::new();
        let mut auto_fallback = None;
        if method.includes_sarimax() {
            let set = CandidateSet::sarimax(
                profile.clone(),
                fallback_period,
                exog_train.len(),
                config.max_candidates,
            );
            match config.grid {
                GridStrategy::Full => models.extend(set.models),
                GridStrategy::AutoOrder => {
                    // Seed the grid from the order diagnostics — seasonal
                    // orders included when the granularity names a period —
                    // and keep the full strategy's models as the
                    // degradation fallback.
                    let period = profile.primary_period(fallback_period);
                    let auto = AutoOrderPlan::analyze_seasonal(
                        train,
                        AutoOrderOptions::default().max_candidates,
                        (period >= 2).then_some(period),
                    )?;
                    models.extend(auto.grid.candidates);
                    auto_fallback = Some(AutoFallback {
                        d: auto.d,
                        models: set.models,
                    });
                }
            }
        }
        let interval_level = config.eval.fit.interval_level;
        if method.includes_hes() {
            let period = profile.primary_period(fallback_period);
            let positive = train.iter().all(|&v| v > 0.0);
            models.extend(ModelGrid::ets(period, positive, interval_level).candidates);
        }
        if method.includes_tbats() {
            let periods = tbats_periods(&profile, fallback_period);
            // Same Box-Cox λ the standalone TBATS selector would estimate.
            let lambda = {
                let (shifted, _) = shift_to_positive(train, 1.0);
                select_lambda(&shifted, 0.0, 1.0).ok()
            };
            models.extend(ModelGrid::tbats(&periods, lambda, interval_level).candidates);
        }
        // The union grid can contain structural duplicates (e.g. a
        // degenerate Holt-Winters candidate collapsing onto plain Holt);
        // canonicalise and drop them before they reach the work queue.
        crate::grid::dedupe_candidates(&mut models);
        let set = CandidateSet { models, profile };
        let mut eval_opts = config.eval.clone();
        eval_opts.start_index = offset;
        Ok(EvalPlan {
            split,
            exog_train,
            exog_test,
            offset,
            gaps_filled,
            set,
            eval_opts,
            auto_fallback,
        })
    }
}

/// The **score** stage: grid evaluation, the auto-order naive-benchmark
/// fallback, the §6.3 Fourier stage and outcome assembly — the former
/// bodies of `Pipeline::run` / `finish` / `outcome_from_report`.
pub struct ScoreStage;

impl ScoreStage {
    /// Evaluate a plan's primary grid, applying the auto-order insurance:
    /// a seeded champion that cannot beat the naive benchmark (seasonal
    /// repeat at the detected period) forfeits the pruning bet, and the
    /// full-strategy grid is raced too. Both passes' work is counted; the
    /// champion is the best of both.
    pub(crate) fn evaluate(
        config: &PipelineConfig,
        plan: &mut EvalPlan,
    ) -> Result<EvaluationReport> {
        let mut report = evaluate_candidates(
            plan.split.train.values(),
            plan.split.test.values(),
            &plan.exog_train,
            &plan.exog_test,
            &plan.set.models,
            &plan.eval_opts,
        )?;
        if let Some(fallback) = plan.auto_fallback.take() {
            let auto_opts = AutoOrderOptions::default();
            let period = plan
                .set
                .profile
                .primary_period(config.granularity.seasonal_period());
            let benchmark = naive_benchmark_rmse(
                plan.split.train.values(),
                plan.split.test.values(),
                fallback.d,
                Some(period),
            );
            let threshold = benchmark * auto_opts.degradation_factor;
            // NaN-greatest ordering: a NaN champion RMSE counts as degraded.
            let degraded = report
                .champion()
                .map(|c| dwcp_math::total_cmp_f64(c.accuracy.rmse, threshold).is_gt())
                .unwrap_or(true);
            if degraded {
                let full = evaluate_candidates(
                    plan.split.train.values(),
                    plan.split.test.values(),
                    &plan.exog_train,
                    &plan.exog_test,
                    &fallback.models,
                    &plan.eval_opts,
                )?;
                report.absorb(full);
            }
        }
        Ok(report)
    }

    /// The §6.3 Fourier stage's candidate list: the six Fourier variants of
    /// the current champion. Empty when the stage is disabled or the
    /// champion is not a SARIMAX-family member (the smoothing families
    /// carry no exogenous regressors).
    pub(crate) fn fourier_candidates(
        config: &PipelineConfig,
        plan: &EvalPlan,
        report: &EvaluationReport,
    ) -> Vec<CandidateModel> {
        if !config.fourier_stage {
            return Vec::new();
        }
        let Some(champion) = report.champion() else {
            return Vec::new();
        };
        let Some(sarimax) = champion.candidate.as_sarimax() else {
            return Vec::new();
        };
        let fallback_period = config.granularity.seasonal_period();
        let periods = plan.set.profile.fourier_periods(fallback_period);
        ModelGrid::fourier_variants(sarimax, &periods)
    }

    /// Complete a run from an evaluated primary grid: run the Fourier
    /// stage (when configured and the champion is SARIMAX) and assemble
    /// the outcome.
    pub(crate) fn finish(
        config: &PipelineConfig,
        plan: EvalPlan,
        mut report: EvaluationReport,
    ) -> Result<ForecastOutcome> {
        // §6.3 Fourier stage: take the champion and try the six Fourier
        // variants; keep whichever wins.
        let variants = Self::fourier_candidates(config, &plan, &report);
        if !variants.is_empty() {
            if let Ok(fourier_report) = evaluate_candidates(
                plan.split.train.values(),
                plan.split.test.values(),
                &plan.exog_train,
                &plan.exog_test,
                &variants,
                &plan.eval_opts,
            ) {
                report.absorb(fourier_report);
            }
        }
        Self::outcome_from_report(plan, report)
    }

    /// Run the whole score stage on a prepared plan: primary grid +
    /// auto-order insurance + Fourier stage + outcome assembly.
    pub(crate) fn score(config: &PipelineConfig, mut plan: EvalPlan) -> Result<ForecastOutcome> {
        let report = Self::evaluate(config, &mut plan)?;
        Self::finish(config, plan, report)
    }

    /// Assemble a [`ForecastOutcome`] from a finished evaluation. A report
    /// with no champion (every candidate failed) is `NoViableModel`.
    pub(crate) fn outcome_from_report(
        plan: EvalPlan,
        report: EvaluationReport,
    ) -> Result<ForecastOutcome> {
        let Some(champion_score) = report.champion() else {
            return Err(PlannerError::NoViableModel {
                attempted: report.attempted,
            });
        };
        Ok(ForecastOutcome {
            champion: champion_score.candidate.config.describe(),
            family: Some(champion_score.candidate.family),
            accuracy: champion_score.accuracy,
            test_forecast: champion_score.forecast.clone(),
            warm_seed: champion_score.warm_params.clone(),
            warm_beta: champion_score.warm_beta.clone(),
            champion_spec: champion_score.candidate.config.clone(),
            test: plan.split.test,
            train: plan.split.train,
            evaluated: report.attempted - report.failures - report.abandoned,
            failures: report.failures,
            gaps_filled: plan.gaps_filled,
            profile: Some(plan.set.profile),
            stats: report.stats,
        })
    }
}

/// The seasonal periods TBATS candidates model: the detected cycles
/// (strongest first, at most two — TBATS handles at most a couple of
/// seasonal blocks gracefully), or the granularity's natural period when
/// nothing was detected.
pub(crate) fn tbats_periods(profile: &DataProfile, fallback_period: usize) -> Vec<f64> {
    if profile.seasonal_periods.is_empty() {
        vec![fallback_period as f64]
    } else {
        profile
            .fourier_periods(fallback_period)
            .into_iter()
            .take(2)
            .collect()
    }
}

/// Exogenous columns split at the train/test boundary.
type ExogSplit = (Vec<Vec<f64>>, Vec<Vec<f64>>);

/// Slice each full-history exogenous column to the trailing evaluation
/// window and split it at the train/test boundary. A column shorter than
/// the window is a caller error, reported as `ExogenousMismatch` instead
/// of a slice panic.
pub(crate) fn split_exog_window(
    exog_full: &[Vec<f64>],
    offset: usize,
    window: usize,
    train_len: usize,
) -> Result<ExogSplit> {
    let mut exog_train = Vec::with_capacity(exog_full.len());
    let mut exog_test = Vec::with_capacity(exog_full.len());
    for (idx, col) in exog_full.iter().enumerate() {
        let w = col.get(offset..offset + window).ok_or_else(|| {
            PlannerError::Model(dwcp_models::ModelError::ExogenousMismatch {
                context: format!(
                    "exogenous column {idx} has {} observations, the evaluation window needs {}",
                    col.len(),
                    offset + window
                ),
            })
        })?;
        let train = w.get(..train_len).unwrap_or(w);
        let test = w.get(train_len..).unwrap_or(&[]);
        exog_train.push(train.to_vec());
        exog_test.push(test.to_vec());
    }
    Ok((exog_train, exog_test))
}

/// The **ingest** stage: one workload's raw-point accumulator, wrapping
/// [`IngestBuffer`] with the planner's error type so the resident engine
/// and server speak one error language.
#[derive(Debug, Clone)]
pub struct IngestStage {
    buffer: IngestBuffer,
}

impl IngestStage {
    /// An hourly ingest stage (the paper's deployment cadence).
    pub fn hourly() -> IngestStage {
        IngestStage {
            buffer: IngestBuffer::hourly(),
        }
    }

    /// Fold one raw point into its bucket (out-of-order points fold in
    /// place; see [`IngestBuffer::push`]).
    pub fn push(&mut self, timestamp: u64, value: f64) -> Result<PointOrder> {
        Ok(self.buffer.push(timestamp, value)?)
    }

    /// The aggregated series over every complete bucket.
    pub fn aggregated(&self) -> TimeSeries {
        self.buffer.aggregated_series()
    }

    /// One cursor-paged read of the aggregated series.
    pub fn read_page(&self, cursor: usize, limit: usize) -> SeriesPage {
        self.buffer.read_page(cursor, limit)
    }

    /// The underlying buffer (counters, origin, bucket width).
    pub fn buffer(&self) -> &IngestBuffer {
        &self.buffer
    }
}

/// The **alert** stage: threshold rules scanned over each fresh forecast,
/// with the [`AlertEngine`]'s re-fire hysteresis.
#[derive(Debug, Clone, Default)]
pub struct AlertStage {
    engine: AlertEngine,
}

impl AlertStage {
    /// An alert stage evaluating `rules`.
    pub fn new(rules: Vec<AlertRule>) -> AlertStage {
        AlertStage {
            engine: AlertEngine::new(rules),
        }
    }

    /// Scan one workload's fresh forecast; returns newly fired alerts.
    pub fn scan(
        &mut self,
        workload: &str,
        forecast: &Forecast,
        start_ts: u64,
        step_seconds: u64,
    ) -> Vec<CapacityAlert> {
        self.engine.scan(workload, forecast, start_ts, step_seconds)
    }

    /// The underlying alert engine (rules, fired/suppressed counters).
    pub fn engine(&self) -> &AlertEngine {
        &self.engine
    }
}

/// Resident-engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The pipeline configuration full fits and relearns run under (the
    /// same type the batch CLI uses — that is the parity guarantee).
    pub pipeline: PipelineConfig,
    /// Alert rules scanned after every score.
    pub rules: Vec<AlertRule>,
    /// Future-forecast horizon in aggregation steps (hours).
    pub horizon: usize,
    /// Neighbourhood radius for champion-seeded relearns.
    pub neighbourhood_radius: usize,
}

impl EngineConfig {
    /// Hourly defaults over a pipeline configuration: 24-hour horizon,
    /// radius-1 relearn neighbourhood, no rules.
    pub fn new(pipeline: PipelineConfig) -> EngineConfig {
        EngineConfig {
            pipeline,
            rules: Vec::new(),
            horizon: 24,
            neighbourhood_radius: 1,
        }
    }
}

/// How a [`StepOutcome::Scored`] step obtained its champion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreAction {
    /// First fit for this workload: the full configured grid.
    Learned,
    /// The stored champion was re-scored frozen — one objective
    /// evaluation, no optimiser, no grid.
    Rescored,
    /// The retention rules fired and a grid search ran (champion-seeded
    /// neighbourhood with full-grid fallback, or full grid when stale).
    Relearned(RelearnReason),
}

/// What one engine step did for a workload.
#[derive(Debug)]
pub enum StepOutcome {
    /// Not enough complete hours for the Table 1 protocol yet.
    NeedData {
        /// Complete aggregates available.
        have: usize,
        /// Observations the protocol row requires.
        need: usize,
    },
    /// No new complete aggregate since the last score — nothing to do.
    Unchanged,
    /// The champion was (re-)scored.
    Scored(ScoreSummary),
}

/// The result of a scoring step.
#[derive(Debug)]
pub struct ScoreSummary {
    /// How the champion was obtained.
    pub action: ScoreAction,
    /// Champion descriptor.
    pub champion: String,
    /// Held-out RMSE of this step's score (frozen re-score or fresh fit).
    pub live_rmse: f64,
    /// The stored baseline RMSE the degradation rule compares against.
    pub baseline_rmse: f64,
    /// Alerts newly fired by this step's forecast.
    pub alerts: Vec<CapacityAlert>,
}

/// A public snapshot of one workload's engine state.
#[derive(Debug, Clone)]
pub struct WorkloadStatus {
    /// Workload key.
    pub workload: String,
    /// Raw points accepted.
    pub points: u64,
    /// Points that arrived out of order.
    pub late: u64,
    /// Complete hourly aggregates.
    pub complete_hours: usize,
    /// Aggregates covered by the last score.
    pub scored_hours: usize,
    /// Champion descriptor, once fitted.
    pub champion: Option<String>,
    /// Last frozen re-score RMSE.
    pub live_rmse: Option<f64>,
    /// Stored baseline RMSE.
    pub baseline_rmse: Option<f64>,
    /// Frozen re-scores performed.
    pub rescores: u64,
    /// Grid searches performed (first fit + relearns).
    pub relearns: u64,
    /// Alerts fired for this workload so far.
    pub alerts_fired: usize,
}

/// A forecast beyond the ingested data, with its time geometry.
#[derive(Debug, Clone)]
pub struct LiveForecast {
    /// Timestamp of horizon step 0 (first hour past the data).
    pub start: u64,
    /// Seconds between horizon steps.
    pub step_seconds: u64,
    /// The forecast itself.
    pub forecast: Forecast,
}

/// Per-workload resident state.
#[derive(Debug)]
struct WorkloadState {
    ingest: IngestStage,
    /// Complete aggregates covered by the last successful score.
    scored_hours: usize,
    live_rmse: Option<f64>,
    future: Option<LiveForecast>,
    champion: Option<String>,
    rescores: u64,
    relearns: u64,
    alerts: Vec<CapacityAlert>,
}

impl WorkloadState {
    fn new() -> WorkloadState {
        WorkloadState {
            ingest: IngestStage::hourly(),
            scored_hours: 0,
            live_rmse: None,
            future: None,
            champion: None,
            rescores: 0,
            relearns: 0,
            alerts: Vec::new(),
        }
    }
}

/// Cap on the per-workload fired-alert log the engine retains.
const ALERT_LOG_CAP: usize = 256;

/// The resident ingest→aggregate→score→alert engine behind `dwcp serve`.
///
/// Incremental contract: pushing points never fits anything until a
/// workload has the protocol's observation count; the first score is a
/// full grid fit (identical to [`crate::pipeline::Pipeline::run`] on the
/// same aggregates);
/// every later complete hour re-scores the stored champion **frozen** and
/// only a [`RelearnReason`] triggers another grid search — never a full
/// refit per point.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    repository: ModelRepository,
    alert_stage: AlertStage,
    workloads: BTreeMap<String, WorkloadState>,
}

impl Engine {
    /// A resident engine with an empty repository.
    pub fn new(config: EngineConfig) -> Engine {
        let alert_stage = AlertStage::new(config.rules.clone());
        Engine {
            config,
            repository: ModelRepository::new(),
            alert_stage,
            workloads: BTreeMap::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The champion repository (stored champions, retention policy).
    pub fn repository(&self) -> &ModelRepository {
        &self.repository
    }

    /// Workload keys seen so far.
    pub fn workloads(&self) -> Vec<&str> {
        self.workloads.keys().map(String::as_str).collect()
    }

    /// Push one raw point and run one engine step for the workload.
    pub fn push(&mut self, workload: &str, timestamp: u64, value: f64) -> Result<StepOutcome> {
        self.ingest_point(workload, timestamp, value)?;
        self.step(workload)
    }

    /// Push a batch of raw points, then run **one** engine step — the
    /// bulk-ingest path (one frozen re-score per batch, not per point).
    pub fn push_batch(&mut self, workload: &str, points: &[(u64, f64)]) -> Result<StepOutcome> {
        for &(timestamp, value) in points {
            self.ingest_point(workload, timestamp, value)?;
        }
        self.step(workload)
    }

    /// Ingest without scoring.
    fn ingest_point(&mut self, workload: &str, timestamp: u64, value: f64) -> Result<()> {
        let state = self
            .workloads
            .entry(workload.to_string())
            .or_insert_with(WorkloadState::new);
        state.ingest.push(timestamp, value)?;
        Ok(())
    }

    /// One cursor-paged read of a workload's aggregated series.
    pub fn read_page(&self, workload: &str, cursor: usize, limit: usize) -> Option<SeriesPage> {
        self.workloads
            .get(workload)
            .map(|s| s.ingest.read_page(cursor, limit))
    }

    /// The latest beyond-the-data forecast for a workload, if scored.
    pub fn forecast(&self, workload: &str) -> Option<&LiveForecast> {
        self.workloads.get(workload).and_then(|s| s.future.as_ref())
    }

    /// The fired-alert log for a workload (most recent last).
    pub fn alerts(&self, workload: &str) -> &[CapacityAlert] {
        self.workloads
            .get(workload)
            .map(|s| s.alerts.as_slice())
            .unwrap_or(&[])
    }

    /// A status snapshot for a workload.
    pub fn status(&self, workload: &str) -> Option<WorkloadStatus> {
        let state = self.workloads.get(workload)?;
        let record = self.repository.get(workload);
        Some(WorkloadStatus {
            workload: workload.to_string(),
            points: state.ingest.buffer().accepted(),
            late: state.ingest.buffer().late(),
            complete_hours: state.ingest.buffer().complete_buckets(),
            scored_hours: state.scored_hours,
            champion: state.champion.clone(),
            live_rmse: state.live_rmse,
            baseline_rmse: record.map(|r| r.baseline_rmse),
            rescores: state.rescores,
            relearns: state.relearns,
            alerts_fired: state.alerts.len(),
        })
    }

    /// Run one engine step for a workload: score when a new complete hour
    /// is available and the protocol's observation count is met.
    pub fn step(&mut self, workload: &str) -> Result<StepOutcome> {
        self.step_inner(workload, false)
    }

    /// Like [`Engine::step`], but re-scores even when no new aggregate has
    /// completed — the parity probe used by tests and the status endpoint.
    pub fn force_rescore(&mut self, workload: &str) -> Result<StepOutcome> {
        self.step_inner(workload, true)
    }

    fn step_inner(&mut self, workload: &str, force: bool) -> Result<StepOutcome> {
        let need = self.config.pipeline.granularity.observations();
        let Some(state) = self.workloads.get_mut(workload) else {
            return Ok(StepOutcome::NeedData { have: 0, need });
        };
        let series = state.ingest.aggregated();
        let have = series.len();
        if have < need {
            return Ok(StepOutcome::NeedData { have, need });
        }
        if !force && have == state.scored_hours && state.champion.is_some() {
            return Ok(StepOutcome::Unchanged);
        }
        let now = series.next_timestamp();
        let step_seconds = state.ingest.buffer().bucket_seconds();

        // Frozen re-score when the repository holds a scoreable champion;
        // otherwise (first sight, legacy record, or an exogenous champion
        // whose columns the stream cannot supply) a grid search.
        let seed = self.repository.get(workload).and_then(scoreable_seed);
        let (action, score) = match seed {
            Some(seed) => {
                let live = rescore_frozen(&self.config.pipeline, &seed, &series)?;
                let verdict = self
                    .repository
                    .needs_relearn(workload, now, Some(live.rmse));
                match verdict {
                    None => (ScoreAction::Rescored, live),
                    Some(reason) => {
                        let outcome = self.learn(workload, &series, now)?;
                        (ScoreAction::Relearned(reason), score_of_outcome(&outcome))
                    }
                }
            }
            None => {
                let outcome = self.learn(workload, &series, now)?;
                (ScoreAction::Learned, score_of_outcome(&outcome))
            }
        };

        // Forecast beyond the data with the (possibly refreshed) stored
        // champion, frozen — then run the alert stage over it.
        let record = self
            .repository
            .get(workload)
            .ok_or(PlannerError::Internal {
                context: "engine scored a workload but the repository holds no record for it",
            })?
            .clone();
        let future =
            frozen_future_forecast(&self.config.pipeline, &record, &series, self.config.horizon)?;
        let fired = self.alert_stage.scan(workload, &future, now, step_seconds);

        let Some(state) = self.workloads.get_mut(workload) else {
            return Err(PlannerError::Internal {
                context: "engine workload state vanished mid-step",
            });
        };
        state.scored_hours = have;
        state.live_rmse = Some(score.rmse);
        state.champion = Some(score.champion.clone());
        state.future = Some(LiveForecast {
            start: now,
            step_seconds,
            forecast: future,
        });
        match action {
            ScoreAction::Rescored => state.rescores += 1,
            ScoreAction::Learned | ScoreAction::Relearned(_) => state.relearns += 1,
        }
        state.alerts.extend(fired.iter().cloned());
        if state.alerts.len() > ALERT_LOG_CAP {
            let drop = state.alerts.len() - ALERT_LOG_CAP;
            state.alerts.drain(..drop);
        }
        Ok(StepOutcome::Scored(ScoreSummary {
            action,
            champion: score.champion,
            live_rmse: score.rmse,
            baseline_rmse: record.baseline_rmse,
            alerts: fired,
        }))
    }

    /// A grid search for one workload, through the same champion-seeded
    /// fleet machinery as the batch relearn: cold workloads run the full
    /// configured grid (bit-identical to
    /// [`crate::pipeline::Pipeline::run`]); workloads
    /// with a fresh stored champion relearn on its neighbourhood with the
    /// full-grid degradation fallback. The repository is updated.
    fn learn(&mut self, workload: &str, series: &TimeSeries, now: u64) -> Result<ForecastOutcome> {
        let options = FleetOptions {
            threads: self.config.pipeline.eval.threads,
            reuse_champions: true,
            neighbourhood_radius: self.config.neighbourhood_radius,
            now,
        };
        let job = SeriesJob::new(workload, series.clone(), self.config.pipeline.clone());
        let mut report = run_batch_on(&options, &mut self.repository, &[job]);
        let Some(result) = report.jobs.pop() else {
            return Err(PlannerError::Internal {
                context: "single-job fleet batch returned no job result",
            });
        };
        result.outcome
    }
}

/// The frozen re-score inputs extracted from a stored record, when the
/// record can actually be re-scored on an exogenous-free stream: the
/// configuration plus its converged parameters. `None` sends the workload
/// down the grid-search path instead.
struct FrozenSeed {
    config: ModelConfig,
    params: Vec<f64>,
    beta: Vec<f64>,
}

fn scoreable_seed(record: &ModelRecord) -> Option<FrozenSeed> {
    let (config, params, beta) = record.champion_seed()?;
    if params.is_empty() {
        return None;
    }
    // An exogenous champion needs its indicator columns to re-score; the
    // streaming path carries none, so such a record is relearned instead.
    if config.as_sarimax().is_some_and(|c| c.n_exog > 0) {
        return None;
    }
    Some(FrozenSeed {
        config: config.clone(),
        params: params.to_vec(),
        beta: beta.to_vec(),
    })
}

fn score_of_outcome(outcome: &ForecastOutcome) -> LiveScore {
    LiveScore {
        champion: outcome.champion.clone(),
        rmse: outcome.accuracy.rmse,
    }
}

/// The champion identity + held-out accuracy one scoring path produced.
struct LiveScore {
    champion: String,
    rmse: f64,
}

/// Re-score a stored champion on the current aggregates, **frozen**: the
/// stored parameters are evaluated verbatim through the shared evaluation
/// engine (`EvalTask.seed` + a single candidate equal to the stored
/// configuration), producing the same held-out RMSE a batch fit of that
/// configuration would report — one objective evaluation, no optimiser.
fn rescore_frozen(
    config: &PipelineConfig,
    seed: &FrozenSeed,
    series: &TimeSeries,
) -> Result<LiveScore> {
    let mut working = series.clone();
    if working.has_gaps() {
        interpolate_series(&mut working)?;
    }
    let split = TrainTestSplit::from_series(&working, config.granularity)?;
    let offset = working.len() - config.granularity.observations();
    let candidates = [CandidateModel::new(seed.config.clone())];
    let mut eval_opts = config.eval.clone();
    eval_opts.start_index = offset;
    let task = EvalTask {
        train: split.train.values(),
        test: split.test.values(),
        exog_train: &[],
        exog_test: &[],
        candidates: &candidates,
        opts: eval_opts,
        seed: Some((seed.config.clone(), seed.params.clone(), seed.beta.clone())),
    };
    let mut reports = evaluate_fleet(&[task], 1);
    let Some(report) = reports.pop() else {
        return Err(PlannerError::Internal {
            context: "single-task fleet evaluation returned no report",
        });
    };
    let report = report?;
    let Some(champion) = report.champion() else {
        return Err(PlannerError::NoViableModel {
            attempted: report.attempted,
        });
    };
    Ok(score_of_model(champion))
}

fn score_of_model(score: &ModelScore) -> LiveScore {
    LiveScore {
        champion: score.candidate.config.describe(),
        rmse: score.accuracy.rmse,
    }
}

/// Fit the stored champion **frozen** on the full aggregated window and
/// forecast `horizon` steps beyond the data — the live forecast the alert
/// stage scans and `/forecast` serves. The stored parameters are taken
/// verbatim (one filter pass, no optimisation), whichever family the
/// champion belongs to.
fn frozen_future_forecast(
    config: &PipelineConfig,
    record: &ModelRecord,
    series: &TimeSeries,
    horizon: usize,
) -> Result<Forecast> {
    let Some((champion, params, beta)) = record.champion_seed() else {
        return Err(PlannerError::Internal {
            context: "stored record has no champion configuration to forecast with",
        });
    };
    let mut working = series.clone();
    if working.has_gaps() {
        interpolate_series(&mut working)?;
    }
    let frozen = !params.is_empty();
    match champion {
        ModelConfig::Sarimax(sarimax) => {
            if sarimax.n_exog > 0 {
                return Err(PlannerError::Model(
                    dwcp_models::ModelError::ExogenousMismatch {
                        context: format!(
                            "champion needs {} exogenous columns the stream does not carry",
                            sarimax.n_exog
                        ),
                    },
                ));
            }
            let opts = ArimaOptions {
                warm_start: frozen.then(|| params.to_vec()),
                freeze_warm_start: frozen,
                freeze_beta: frozen.then(|| beta.to_vec()),
                ..config.eval.fit.clone()
            };
            let fit = FittedSarimax::fit(working.values(), sarimax, &[], 0, &opts)?;
            Ok(fit.forecast(horizon, &[])?)
        }
        ModelConfig::Ets(ets) => {
            let opts = EtsFitOptions {
                warm_start: frozen.then(|| params.to_vec()),
                freeze_warm_start: frozen,
            };
            Ok(FittedEts::fit_with(working.values(), *ets, &opts)?.forecast(horizon))
        }
        ModelConfig::Tbats(tbats) => {
            let opts = TbatsFitOptions {
                warm_start: frozen.then(|| params.to_vec()),
                freeze_warm_start: frozen,
            };
            Ok(FittedTbats::fit_with(working.values(), tbats.clone(), &opts)?.forecast(horizon))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{MethodChoice, Pipeline};
    use dwcp_series::{Frequency, Granularity};

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            method: MethodChoice::Hes,
            grid: GridStrategy::Full,
            granularity: Granularity::Hourly,
            max_candidates: 4,
            fourier_stage: false,
            auto_detect_shocks: false,
            eval: EvaluationOptions {
                threads: 1,
                fit: ArimaOptions {
                    max_evals: 120,
                    restarts: 0,
                    interval_level: 0.95,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    /// Quarter-hour points whose hourly means form a clean daily cycle.
    fn quarter_hour_points(hours: usize) -> Vec<(u64, f64)> {
        let mut pts = Vec::with_capacity(hours * 4);
        for h in 0..hours {
            let base = 60.0
                + 20.0 * (2.0 * std::f64::consts::PI * h as f64 / 24.0).sin()
                + ((h * 2654435761 % 97) as f64) / 25.0;
            for q in 0..4 {
                let ts = (h * 3600 + q * 900) as u64;
                pts.push((ts, base + (q as f64 - 1.5) * 0.2));
            }
        }
        pts
    }

    #[test]
    fn engine_needs_protocol_observations_before_scoring() {
        let mut engine = Engine::new(EngineConfig::new(fast_config()));
        let out = engine.push("db/CPU", 0, 50.0).unwrap();
        assert!(matches!(
            out,
            StepOutcome::NeedData {
                have: 0,
                need: 1008
            }
        ));
    }

    #[test]
    fn first_score_is_a_learn_then_rescores_stay_frozen() {
        let mut engine = Engine::new(EngineConfig::new(fast_config()));
        // 1009 complete hours (last bucket stays live).
        let pts = quarter_hour_points(1010);
        let out = engine.push_batch("db/CPU", &pts).unwrap();
        let StepOutcome::Scored(summary) = out else {
            panic!("expected a scored step");
        };
        assert_eq!(summary.action, ScoreAction::Learned);
        assert!(summary.live_rmse.is_finite());
        // The baseline equals the first fit's RMSE.
        assert_eq!(summary.baseline_rmse, summary.live_rmse);

        // One more on-pattern complete hour: frozen re-score, no grid.
        let next: Vec<(u64, f64)> = quarter_hour_points(1012)
            .into_iter()
            .skip(1010 * 4)
            .collect();
        let out = engine.push_batch("db/CPU", &next).unwrap();
        let StepOutcome::Scored(summary) = out else {
            panic!("expected a scored step");
        };
        assert_eq!(summary.action, ScoreAction::Rescored);
        let status = engine.status("db/CPU").unwrap();
        assert_eq!(status.relearns, 1);
        assert_eq!(status.rescores, 1);
        // Nothing new → Unchanged, no extra score.
        assert!(matches!(
            engine.step("db/CPU").unwrap(),
            StepOutcome::Unchanged
        ));
    }

    #[test]
    fn frozen_rescore_matches_batch_fit_on_same_data() {
        let mut engine = Engine::new(EngineConfig::new(fast_config()));
        let pts = quarter_hour_points(1010);
        engine.push_batch("db/CPU", &pts).unwrap();

        // A batch pipeline run over the same aggregated hours must select
        // the same champion with the same RMSE, bit for bit.
        let series = {
            let state_page = engine.read_page("db/CPU", 0, 4096).unwrap();
            TimeSeries::new(state_page.values, Frequency::Hourly, 0)
        };
        let batch = Pipeline::new(fast_config()).run(&series, &[]).unwrap();
        let status = engine.status("db/CPU").unwrap();
        assert_eq!(status.champion.as_deref(), Some(batch.champion.as_str()));
        assert_eq!(status.live_rmse, Some(batch.accuracy.rmse));

        // Forcing a frozen re-score on unchanged data reproduces the
        // stored baseline exactly.
        let StepOutcome::Scored(summary) = engine.force_rescore("db/CPU").unwrap() else {
            panic!("expected a scored step");
        };
        assert_eq!(summary.action, ScoreAction::Rescored);
        assert_eq!(summary.live_rmse, batch.accuracy.rmse);
    }

    #[test]
    fn frozen_rescore_matches_batch_fit_for_tbats() {
        // Same contract as the HES test above, for the other batched
        // exponential-smoothing family: the serve engine's frozen TBATS
        // re-score (solo kernel path) must reproduce the batch pipeline's
        // champion RMSE bit for bit.
        let config = PipelineConfig {
            method: MethodChoice::Tbats,
            ..fast_config()
        };
        let mut engine = Engine::new(EngineConfig::new(config.clone()));
        let pts = quarter_hour_points(1010);
        engine.push_batch("db/CPU", &pts).unwrap();

        let series = {
            let state_page = engine.read_page("db/CPU", 0, 4096).unwrap();
            TimeSeries::new(state_page.values, Frequency::Hourly, 0)
        };
        let batch = Pipeline::new(config).run(&series, &[]).unwrap();
        let status = engine.status("db/CPU").unwrap();
        assert_eq!(status.champion.as_deref(), Some(batch.champion.as_str()));
        assert_eq!(status.live_rmse, Some(batch.accuracy.rmse));

        let StepOutcome::Scored(summary) = engine.force_rescore("db/CPU").unwrap() else {
            panic!("expected a scored step");
        };
        assert_eq!(summary.action, ScoreAction::Rescored);
        assert_eq!(summary.live_rmse, batch.accuracy.rmse);
    }

    #[test]
    fn alerts_fire_from_the_live_forecast() {
        let mut config = EngineConfig::new(fast_config());
        // The series lives around 40–80; a threshold of 1 must breach.
        config.rules = vec![AlertRule::new("cpu-low", 1.0)];
        let mut engine = Engine::new(config);
        let pts = quarter_hour_points(1010);
        let StepOutcome::Scored(summary) = engine.push_batch("db/CPU", &pts).unwrap() else {
            panic!("expected a scored step");
        };
        assert_eq!(summary.alerts.len(), 1);
        assert_eq!(summary.alerts[0].rule, "cpu-low");
        assert_eq!(engine.alerts("db/CPU").len(), 1);
        let forecast = engine.forecast("db/CPU").unwrap();
        assert_eq!(forecast.forecast.len(), 24);
        assert_eq!(forecast.step_seconds, 3600);
        // The forecast starts just past the ingested data.
        assert_eq!(forecast.start, 1009 * 3600);
    }

    #[test]
    fn paged_reads_reconstruct_the_aggregates() {
        let mut engine = Engine::new(EngineConfig::new(fast_config()));
        let pts = quarter_hour_points(30);
        engine.push_batch("db/CPU", &pts).unwrap();
        let mut cursor = 0usize;
        let mut collected = Vec::new();
        loop {
            let page = engine.read_page("db/CPU", cursor, 7).unwrap();
            collected.extend(page.values);
            match page.next_cursor {
                Some(next) => cursor = next,
                None => break,
            }
        }
        assert_eq!(collected.len(), 29); // hour 29 is live
        let expected: Vec<f64> = quarter_hour_points(30)
            .chunks(4)
            .take(29)
            .map(|c| c.iter().map(|&(_, v)| v).sum::<f64>() / 4.0)
            .collect();
        for (got, want) in collected.iter().zip(&expected) {
            assert!((got - want).abs() < 1e-12);
        }
    }
}
