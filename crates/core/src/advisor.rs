//! Proactive threshold advice (§8, §9).
//!
//! "Utilising these techniques to predict when a threshold is likely to be
//! breached is an advisable way to implement this approach for proactive
//! monitoring … The approach proposed in this paper could advise through a
//! prediction that there is likely to be an issue soon." The advisor takes
//! a forecast with error bars and a capacity threshold and reports when the
//! workload will (certainly / possibly) cross it.

use dwcp_models::Forecast;

/// How confident the breach call is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreachSeverity {
    /// The forecast *mean* crosses the threshold — expected breach.
    Expected,
    /// Only the upper interval bound crosses — possible breach.
    Possible,
}

/// A breach advisory.
#[derive(Debug, Clone, PartialEq)]
pub struct Advisory {
    /// Horizon step (0-based) of the first crossing.
    pub step: usize,
    /// Epoch-seconds timestamp of the crossing.
    pub timestamp: u64,
    /// Forecast mean at the crossing.
    pub forecast_mean: f64,
    /// Upper interval bound at the crossing.
    pub forecast_upper: f64,
    /// Severity of the call.
    pub severity: BreachSeverity,
}

/// Threshold-watching advisor.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdAdvisor {
    /// The capacity threshold being watched.
    pub threshold: f64,
}

impl ThresholdAdvisor {
    /// Create an advisor for a threshold.
    pub fn new(threshold: f64) -> ThresholdAdvisor {
        ThresholdAdvisor { threshold }
    }

    /// Scan a forecast starting at `start_ts` with `step_seconds` between
    /// horizon steps; returns the first breach, preferring the earliest
    /// step and, within a step, the stronger severity.
    pub fn analyze(
        &self,
        forecast: &Forecast,
        start_ts: u64,
        step_seconds: u64,
    ) -> Option<Advisory> {
        for (h, (&mean, &upper)) in forecast.mean.iter().zip(&forecast.upper).enumerate() {
            let severity = if mean > self.threshold {
                Some(BreachSeverity::Expected)
            } else if upper > self.threshold {
                Some(BreachSeverity::Possible)
            } else {
                None
            };
            if let Some(severity) = severity {
                return Some(Advisory {
                    step: h,
                    timestamp: start_ts + h as u64 * step_seconds,
                    forecast_mean: mean,
                    forecast_upper: upper,
                    severity,
                });
            }
        }
        None
    }

    /// Steps of headroom before the first expected breach; `None` when the
    /// mean never crosses within the horizon.
    pub fn headroom_steps(&self, forecast: &Forecast) -> Option<usize> {
        forecast.mean.iter().position(|&m| m > self.threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising_forecast() -> Forecast {
        // Mean climbs 70, 80, 90, 100; constant se = 5.
        Forecast::with_normal_intervals(
            vec![70.0, 80.0, 90.0, 100.0],
            vec![5.0, 5.0, 5.0, 5.0],
            0.95,
        )
    }

    #[test]
    fn earliest_warning_wins_upper_band_first() {
        // Threshold 85: the upper band (80 + 9.8) crosses at step 1 before
        // the mean crosses at step 2 — early warning is the whole point, so
        // the possible-breach call comes first.
        let advisor = ThresholdAdvisor::new(85.0);
        let adv = advisor.analyze(&rising_forecast(), 1000, 3600).unwrap();
        assert_eq!(adv.step, 1);
        assert_eq!(adv.timestamp, 1000 + 3600);
        assert_eq!(adv.severity, BreachSeverity::Possible);
        // headroom_steps still reports the mean crossing.
        assert_eq!(advisor.headroom_steps(&rising_forecast()), Some(2));
    }

    #[test]
    fn possible_breach_from_upper_band() {
        // Threshold between mean and upper at step 1: 80 < 88 < 80+9.8.
        let advisor = ThresholdAdvisor::new(88.0);
        let adv = advisor.analyze(&rising_forecast(), 0, 3600).unwrap();
        assert_eq!(adv.step, 1);
        assert_eq!(adv.severity, BreachSeverity::Possible);
    }

    #[test]
    fn no_breach_below_all_bands() {
        let advisor = ThresholdAdvisor::new(1000.0);
        assert!(advisor.analyze(&rising_forecast(), 0, 3600).is_none());
    }

    #[test]
    fn headroom_counts_steps_to_mean_crossing() {
        let advisor = ThresholdAdvisor::new(85.0);
        assert_eq!(advisor.headroom_steps(&rising_forecast()), Some(2));
        let safe = ThresholdAdvisor::new(500.0);
        assert_eq!(safe.headroom_steps(&rising_forecast()), None);
    }

    #[test]
    fn expected_takes_precedence_over_possible_at_same_step() {
        // Threshold below the first mean: expected right away.
        let advisor = ThresholdAdvisor::new(60.0);
        let adv = advisor.analyze(&rising_forecast(), 0, 60).unwrap();
        assert_eq!(adv.step, 0);
        assert_eq!(adv.severity, BreachSeverity::Expected);
    }
}
