//! The model repository and its retention policies.
//!
//! §5.1: "That model is then stored in a central repository and used for a
//! period of one week or until the model's RMSE drops to a point where it
//! is rendered useless." §9: "we suggest … that the event needs to happen
//! more than 3 times for it to be a behaviour … if a system crashes we
//! discard it, however if the system continually crashes the learning
//! engine will see it as a behaviour."

use crate::grid::ModelConfig;
use crate::pipeline::ForecastOutcome;
use crate::{PlannerError, Result};
use dwcp_series::Granularity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// One week in seconds — the paper's staleness horizon.
pub const ONE_WEEK_SECONDS: u64 = 7 * 86_400;

/// A stored champion model descriptor.
///
/// The repository stores descriptors plus a *warm seed*, not a serving
/// model: re-fitting a known-good configuration on fresh data is exactly
/// what the weekly relearn does, so persisted coefficients are never used
/// to forecast — they only let the relearn's optimiser start from last
/// week's optimum instead of from cold (champion-seeded relearning).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Workload key, e.g. `cdbm011/CPU`.
    pub workload: String,
    /// Champion descriptor, e.g. `SARIMAX FFT Exogenous (4,1,2)(1,1,1,24)`.
    pub champion: String,
    /// Protocol row the model was fitted under.
    pub granularity: Granularity,
    /// Test RMSE at fit time — the baseline the degradation rule compares
    /// against.
    pub baseline_rmse: f64,
    /// Epoch-seconds the model was fitted.
    pub fitted_at: u64,
    /// Machine-readable champion configuration — any model family
    /// (`None` only in legacy records that predate family-agnostic
    /// persistence).
    pub champion_config: Option<ModelConfig>,
    /// The champion's converged unconstrained optimiser parameters at fit
    /// time — the warm seed for the next relearn. Empty when unknown.
    pub warm_params: Vec<f64>,
    /// The champion's regression coefficients at fit time (empty for
    /// plain champions), so a regression champion is re-scored verbatim.
    pub warm_beta: Vec<f64>,
}

impl ModelRecord {
    /// Build the record a pipeline outcome should persist.
    pub fn from_outcome(
        workload: &str,
        outcome: &ForecastOutcome,
        granularity: Granularity,
        now: u64,
    ) -> ModelRecord {
        ModelRecord {
            workload: workload.to_string(),
            champion: outcome.champion.clone(),
            granularity,
            baseline_rmse: outcome.accuracy.rmse,
            fitted_at: now,
            champion_config: Some(outcome.champion_spec.clone()),
            warm_params: outcome.warm_seed.clone(),
            warm_beta: outcome.warm_beta.clone(),
        }
    }

    /// The champion-seeded relearning inputs: the stored configuration to
    /// centre the neighbourhood grid on, the converged parameters to
    /// warm-start from, and the regression coefficients (both empty when
    /// only the configuration is known). `None` only for legacy records
    /// with no stored configuration.
    pub fn champion_seed(&self) -> Option<(&ModelConfig, &[f64], &[f64])> {
        self.champion_config.as_ref().map(|config| {
            (
                config,
                self.warm_params.as_slice(),
                self.warm_beta.as_slice(),
            )
        })
    }
}

/// Why a stored model needs relearning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelearnReason {
    /// No model stored for this workload yet.
    Missing,
    /// Older than the retention window (one week by default).
    Stale,
    /// Live RMSE degraded beyond the tolerated factor.
    Degraded,
}

/// Retention policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Maximum model age before a relearn (paper: one week).
    pub max_age_seconds: u64,
    /// Relearn when live RMSE exceeds `baseline × factor`.
    pub rmse_degradation_factor: f64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_age_seconds: ONE_WEEK_SECONDS,
            rmse_degradation_factor: 2.0,
        }
    }
}

/// The central model repository.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRepository {
    records: BTreeMap<String, ModelRecord>,
    /// Policy applied by [`ModelRepository::needs_relearn`].
    pub policy: RetentionPolicy,
}

impl ModelRepository {
    /// An empty repository with the default policy.
    pub fn new() -> ModelRepository {
        ModelRepository {
            records: BTreeMap::new(),
            policy: RetentionPolicy::default(),
        }
    }

    /// Store (or replace) the champion for a workload.
    pub fn store(&mut self, record: ModelRecord) {
        self.records.insert(record.workload.clone(), record);
    }

    /// Fetch the stored champion for a workload.
    pub fn get(&self, workload: &str) -> Option<&ModelRecord> {
        self.records.get(workload)
    }

    /// Number of stored champions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Apply the Figure 4 retention rules: relearn when missing, when older
    /// than a week, or when the live RMSE has degraded past the policy
    /// factor. `current_rmse = None` means no fresh accuracy reading is
    /// available (the age rule still applies).
    pub fn needs_relearn(
        &self,
        workload: &str,
        now: u64,
        current_rmse: Option<f64>,
    ) -> Option<RelearnReason> {
        let record = match self.records.get(workload) {
            None => return Some(RelearnReason::Missing),
            Some(r) => r,
        };
        if now.saturating_sub(record.fitted_at) > self.policy.max_age_seconds {
            return Some(RelearnReason::Stale);
        }
        if let Some(rmse) = current_rmse {
            if rmse > record.baseline_rmse * self.policy.rmse_degradation_factor {
                return Some(RelearnReason::Degraded);
            }
        }
        None
    }

    /// Persist to JSON.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| PlannerError::Persistence(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| PlannerError::Persistence(e.to_string()))
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> Result<ModelRepository> {
        let json =
            std::fs::read_to_string(path).map_err(|e| PlannerError::Persistence(e.to_string()))?;
        serde_json::from_str(&json).map_err(|e| PlannerError::Persistence(e.to_string()))
    }

    /// Load from JSON, degrading gracefully: a corrupt or truncated file
    /// (interrupted write, disk fault) yields an **empty** repository plus
    /// the parse error, instead of aborting the scheduler run. Losing the
    /// repository is recoverable by design — every workload simply takes
    /// the full-relearn path, exactly as on first boot (§5.1's weekly
    /// relearn needs no history to proceed). A *missing* file is not
    /// degradation at all, just first boot: `(empty, None)`.
    pub fn load_lenient(path: &Path) -> (ModelRepository, Option<PlannerError>) {
        if !path.exists() {
            return (ModelRepository::new(), None);
        }
        match ModelRepository::load(path) {
            Ok(repo) => (repo, None),
            Err(err) => (ModelRepository::new(), Some(err)),
        }
    }
}

/// The >3-occurrence shock policy (§9): an anomalous event is discarded
/// until it has been seen more than `threshold` times, after which it is a
/// *behaviour* the models must account for (e.g. a new exogenous column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShockTracker {
    counts: BTreeMap<String, u32>,
    /// Occurrences needed before an event becomes a behaviour
    /// (paper default: "more than 3 times", "which can be changed
    /// manually").
    pub threshold: u32,
}

impl Default for ShockTracker {
    fn default() -> Self {
        ShockTracker {
            counts: BTreeMap::new(),
            threshold: 3,
        }
    }
}

impl ShockTracker {
    /// Tracker with the paper's default threshold of 3.
    pub fn new() -> ShockTracker {
        ShockTracker::default()
    }

    /// Record one occurrence of an event; returns the updated count.
    pub fn record(&mut self, event: &str) -> u32 {
        let c = self.counts.entry(event.to_string()).or_insert(0);
        *c += 1;
        *c
    }

    /// Whether the event has crossed the behaviour threshold (strictly more
    /// than `threshold` occurrences).
    pub fn is_behaviour(&self, event: &str) -> bool {
        self.counts.get(event).copied().unwrap_or(0) > self.threshold
    }

    /// Forget an event (manual override for systems *in fault*, §9).
    pub fn discard(&mut self, event: &str) {
        self.counts.remove(event);
    }

    /// Occurrence count for an event.
    pub fn count(&self, event: &str) -> u32 {
        self.counts.get(event).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, rmse: f64, fitted_at: u64) -> ModelRecord {
        ModelRecord {
            workload: workload.to_string(),
            champion: "SARIMAX (1,1,1)(0,1,1,24)".to_string(),
            granularity: Granularity::Hourly,
            baseline_rmse: rmse,
            fitted_at,
            champion_config: None,
            warm_params: Vec::new(),
            warm_beta: Vec::new(),
        }
    }

    #[test]
    fn champion_seed_requires_a_stored_config() {
        let mut r = record("cdbm011/CPU", 10.0, 0);
        assert!(r.champion_seed().is_none(), "legacy records have no seed");
        let config =
            dwcp_models::SarimaxConfig::plain(dwcp_models::ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24));
        r.champion_config = Some(config.clone().into());
        r.warm_params = vec![0.2, -0.1, 0.05];
        let (stored, params, beta) = r.champion_seed().unwrap();
        assert_eq!(stored.as_sarimax(), Some(&config));
        assert_eq!(params, [0.2, -0.1, 0.05]);
        assert!(beta.is_empty());
    }

    #[test]
    fn record_with_seed_roundtrips_through_json() {
        let mut repo = ModelRepository::new();
        let mut r = record("cdbm011/CPU", 8.42, 1_700_000_000);
        r.champion_config = Some(
            dwcp_models::SarimaxConfig::plain(dwcp_models::ArimaSpec::sarima(4, 1, 2, 1, 1, 1, 24))
                .into(),
        );
        r.warm_params = vec![0.25, -0.5, 1.5];
        repo.store(r);
        let dir = std::env::temp_dir().join("dwcp_repo_seed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    /// A short seasonal trace for the smoothing-family round-trip tests.
    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tf = t as f64;
                60.0 + 10.0 * (2.0 * std::f64::consts::PI * tf / 12.0).sin()
                    + ((t * 7919 % 101) as f64) / 50.0
            })
            .collect()
    }

    /// Store a champion, round-trip it through JSON, then re-score the
    /// loaded seed frozen: the stored RMSE must reproduce bit-for-bit.
    fn roundtrip_and_rescore_frozen(workload: &str, candidates: Vec<crate::grid::CandidateModel>) {
        use crate::evaluate::{evaluate_candidates, evaluate_fleet, EvalTask};
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let cold =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        let champion = cold.champion().unwrap().clone();
        let mut repo = ModelRepository::new();
        repo.store(ModelRecord {
            workload: workload.to_string(),
            champion: champion.candidate.config.describe(),
            granularity: Granularity::Hourly,
            baseline_rmse: champion.accuracy.rmse,
            fitted_at: 7,
            champion_config: Some(champion.candidate.config.clone()),
            warm_params: champion.warm_params.clone(),
            warm_beta: champion.warm_beta.clone(),
        });
        let dir = std::env::temp_dir().join("dwcp_repo_family_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.json", workload.replace('/', "_")));
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let loaded = back.get(workload).unwrap();
        assert_eq!(loaded, repo.get(workload).unwrap());
        let (config, params, beta) = loaded.champion_seed().unwrap();
        assert_eq!(config, &champion.candidate.config);
        // Frozen re-score from the loaded seed reproduces the stored RMSE.
        let task = EvalTask {
            train,
            test,
            exog_train: &[],
            exog_test: &[],
            candidates: &candidates,
            opts: Default::default(),
            seed: Some((config.clone(), params.to_vec(), beta.to_vec())),
        };
        let seeded = evaluate_fleet(std::slice::from_ref(&task), 1)
            .pop()
            .unwrap()
            .unwrap();
        let re_scored = seeded
            .scores
            .iter()
            .find(|s| s.candidate.config == champion.candidate.config)
            .unwrap();
        assert_eq!(
            re_scored.accuracy.rmse.to_bits(),
            loaded.baseline_rmse.to_bits()
        );
        assert_eq!(re_scored.warm_params, loaded.warm_params);
    }

    #[test]
    fn hes_champion_roundtrips_and_rescores_frozen() {
        let grid = crate::grid::ModelGrid::ets(12, true, 0.95);
        roundtrip_and_rescore_frozen("cdbm014/CPU/hourly", grid.candidates);
    }

    #[test]
    fn tbats_champion_roundtrips_and_rescores_frozen() {
        use crate::grid::{CandidateModel, ModelConfig};
        let config = dwcp_models::TbatsConfig::seasonal(12.0, 2);
        let candidates = vec![CandidateModel::new(ModelConfig::Tbats(config))];
        roundtrip_and_rescore_frozen("cdbm014/IOPS/hourly", candidates);
    }

    #[test]
    fn missing_model_needs_relearn() {
        let repo = ModelRepository::new();
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 0, None),
            Some(RelearnReason::Missing)
        );
    }

    #[test]
    fn fresh_accurate_model_is_kept() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 86_400, Some(12.0)),
            None
        );
    }

    #[test]
    fn week_old_model_is_stale() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        let now = 1_000_000 + ONE_WEEK_SECONDS + 1;
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", now, Some(10.0)),
            Some(RelearnReason::Stale)
        );
    }

    #[test]
    fn degraded_rmse_triggers_relearn() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 3600, Some(25.0)),
            Some(RelearnReason::Degraded)
        );
        // Exactly at the boundary: kept.
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 3600, Some(20.0)),
            None
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        repo.store(record("cdbm012/Memory", 61.3, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_repository_file_degrades_to_full_relearn() {
        // Simulate an interrupted write: persist a real repository, then
        // chop the JSON mid-record. The lenient load must hand back an
        // empty repository (every workload relearns from scratch) and
        // surface the parse error — never abort.
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_truncated_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        assert!(ModelRepository::load(&path).is_err(), "strict load fails");
        let (recovered, warning) = ModelRepository::load_lenient(&path);
        assert!(recovered.is_empty(), "corrupt file yields an empty repo");
        assert!(warning.is_some(), "the parse error is surfaced, not eaten");
        assert_eq!(
            recovered.needs_relearn("cdbm011/CPU", 0, None),
            Some(RelearnReason::Missing),
            "every workload takes the full-relearn path"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_repository_file_degrades_to_full_relearn() {
        let dir = std::env::temp_dir().join("dwcp_repo_garbage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let (recovered, warning) = ModelRepository::load_lenient(&path);
        assert!(recovered.is_empty());
        assert!(warning.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_repository_file_is_first_boot_not_degradation() {
        let path = std::env::temp_dir().join("dwcp_repo_never_written.json");
        std::fs::remove_file(&path).ok();
        let (repo, warning) = ModelRepository::load_lenient(&path);
        assert!(repo.is_empty());
        assert!(warning.is_none(), "a missing file is not a warning");
    }

    #[test]
    fn intact_repository_file_loads_leniently_without_warning() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_lenient_ok_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let (back, warning) = ModelRepository::load_lenient(&path);
        assert!(warning.is_none());
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shock_becomes_behaviour_after_threshold() {
        let mut tracker = ShockTracker::new();
        for i in 1..=3 {
            assert_eq!(tracker.record("failover"), i);
            assert!(!tracker.is_behaviour("failover"), "at count {i}");
        }
        tracker.record("failover"); // 4th occurrence — "more than 3 times"
        assert!(tracker.is_behaviour("failover"));
    }

    #[test]
    fn shock_discard_resets_the_count() {
        let mut tracker = ShockTracker::new();
        for _ in 0..5 {
            tracker.record("crash");
        }
        assert!(tracker.is_behaviour("crash"));
        tracker.discard("crash");
        assert!(!tracker.is_behaviour("crash"));
        assert_eq!(tracker.count("crash"), 0);
    }

    #[test]
    fn shock_threshold_is_adjustable() {
        let mut tracker = ShockTracker {
            threshold: 1,
            ..ShockTracker::new()
        };
        tracker.record("batch");
        assert!(!tracker.is_behaviour("batch"));
        tracker.record("batch");
        assert!(tracker.is_behaviour("batch"));
    }

    #[test]
    fn distinct_events_tracked_independently() {
        let mut tracker = ShockTracker::new();
        for _ in 0..10 {
            tracker.record("a");
        }
        tracker.record("b");
        assert!(tracker.is_behaviour("a"));
        assert!(!tracker.is_behaviour("b"));
    }
}
