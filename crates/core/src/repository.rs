//! The model repository and its retention policies.
//!
//! §5.1: "That model is then stored in a central repository and used for a
//! period of one week or until the model's RMSE drops to a point where it
//! is rendered useless." §9: "we suggest … that the event needs to happen
//! more than 3 times for it to be a behaviour … if a system crashes we
//! discard it, however if the system continually crashes the learning
//! engine will see it as a behaviour."

use crate::grid::ModelConfig;
use crate::pipeline::ForecastOutcome;
use crate::{PlannerError, Result};
use dwcp_series::Granularity;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One week in seconds — the paper's staleness horizon.
pub const ONE_WEEK_SECONDS: u64 = 7 * 86_400;

/// A stored champion model descriptor.
///
/// The repository stores descriptors plus a *warm seed*, not a serving
/// model: re-fitting a known-good configuration on fresh data is exactly
/// what the weekly relearn does, so persisted coefficients are never used
/// to forecast — they only let the relearn's optimiser start from last
/// week's optimum instead of from cold (champion-seeded relearning).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Workload key, e.g. `cdbm011/CPU`.
    pub workload: String,
    /// Champion descriptor, e.g. `SARIMAX FFT Exogenous (4,1,2)(1,1,1,24)`.
    pub champion: String,
    /// Protocol row the model was fitted under.
    pub granularity: Granularity,
    /// Test RMSE at fit time — the baseline the degradation rule compares
    /// against.
    pub baseline_rmse: f64,
    /// Epoch-seconds the model was fitted.
    pub fitted_at: u64,
    /// Machine-readable champion configuration — any model family
    /// (`None` only in legacy records that predate family-agnostic
    /// persistence).
    pub champion_config: Option<ModelConfig>,
    /// The champion's converged unconstrained optimiser parameters at fit
    /// time — the warm seed for the next relearn. Empty when unknown.
    pub warm_params: Vec<f64>,
    /// The champion's regression coefficients at fit time (empty for
    /// plain champions), so a regression champion is re-scored verbatim.
    pub warm_beta: Vec<f64>,
}

impl ModelRecord {
    /// Build the record a pipeline outcome should persist.
    pub fn from_outcome(
        workload: &str,
        outcome: &ForecastOutcome,
        granularity: Granularity,
        now: u64,
    ) -> ModelRecord {
        ModelRecord {
            workload: workload.to_string(),
            champion: outcome.champion.clone(),
            granularity,
            baseline_rmse: outcome.accuracy.rmse,
            fitted_at: now,
            champion_config: Some(outcome.champion_spec.clone()),
            warm_params: outcome.warm_seed.clone(),
            warm_beta: outcome.warm_beta.clone(),
        }
    }

    /// The champion-seeded relearning inputs: the stored configuration to
    /// centre the neighbourhood grid on, the converged parameters to
    /// warm-start from, and the regression coefficients (both empty when
    /// only the configuration is known). `None` only for legacy records
    /// with no stored configuration.
    pub fn champion_seed(&self) -> Option<(&ModelConfig, &[f64], &[f64])> {
        self.champion_config.as_ref().map(|config| {
            (
                config,
                self.warm_params.as_slice(),
                self.warm_beta.as_slice(),
            )
        })
    }
}

/// Why a stored model needs relearning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelearnReason {
    /// No model stored for this workload yet.
    Missing,
    /// Older than the retention window (one week by default).
    Stale,
    /// Live RMSE degraded beyond the tolerated factor.
    Degraded,
}

/// Retention policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Maximum model age before a relearn (paper: one week).
    pub max_age_seconds: u64,
    /// Relearn when live RMSE exceeds `baseline × factor`.
    pub rmse_degradation_factor: f64,
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy {
            max_age_seconds: ONE_WEEK_SECONDS,
            rmse_degradation_factor: 2.0,
        }
    }
}

/// The central model repository.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ModelRepository {
    records: BTreeMap<String, ModelRecord>,
    /// Policy applied by [`ModelRepository::needs_relearn`].
    pub policy: RetentionPolicy,
}

impl ModelRepository {
    /// An empty repository with the default policy.
    pub fn new() -> ModelRepository {
        ModelRepository {
            records: BTreeMap::new(),
            policy: RetentionPolicy::default(),
        }
    }

    /// Store (or replace) the champion for a workload.
    pub fn store(&mut self, record: ModelRecord) {
        self.records.insert(record.workload.clone(), record);
    }

    /// Fetch the stored champion for a workload.
    pub fn get(&self, workload: &str) -> Option<&ModelRecord> {
        self.records.get(workload)
    }

    /// Number of stored champions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Apply the Figure 4 retention rules: relearn when missing, when older
    /// than a week, or when the live RMSE has degraded past the policy
    /// factor. `current_rmse = None` means no fresh accuracy reading is
    /// available (the age rule still applies).
    pub fn needs_relearn(
        &self,
        workload: &str,
        now: u64,
        current_rmse: Option<f64>,
    ) -> Option<RelearnReason> {
        let record = match self.records.get(workload) {
            None => return Some(RelearnReason::Missing),
            Some(r) => r,
        };
        if now.saturating_sub(record.fitted_at) > self.policy.max_age_seconds {
            return Some(RelearnReason::Stale);
        }
        if let Some(rmse) = current_rmse {
            if rmse > record.baseline_rmse * self.policy.rmse_degradation_factor {
                return Some(RelearnReason::Degraded);
            }
        }
        None
    }

    /// Persist to JSON.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| PlannerError::Persistence(e.to_string()))?;
        std::fs::write(path, json).map_err(|e| PlannerError::Persistence(e.to_string()))
    }

    /// Load from JSON.
    pub fn load(path: &Path) -> Result<ModelRepository> {
        let json =
            std::fs::read_to_string(path).map_err(|e| PlannerError::Persistence(e.to_string()))?;
        serde_json::from_str(&json).map_err(|e| PlannerError::Persistence(e.to_string()))
    }

    /// Load from JSON, degrading gracefully: a corrupt or truncated file
    /// (interrupted write, disk fault) yields an **empty** repository plus
    /// the parse error, instead of aborting the scheduler run. Losing the
    /// repository is recoverable by design — every workload simply takes
    /// the full-relearn path, exactly as on first boot (§5.1's weekly
    /// relearn needs no history to proceed). A *missing* file is not
    /// degradation at all, just first boot: `(empty, None)`.
    pub fn load_lenient(path: &Path) -> (ModelRepository, Option<PlannerError>) {
        if !path.exists() {
            return (ModelRepository::new(), None);
        }
        match ModelRepository::load(path) {
            Ok(repo) => (repo, None),
            Err(err) => (ModelRepository::new(), Some(err)),
        }
    }
}

/// Anything the fleet scheduler can read champions from and write
/// champions to: the in-memory [`ModelRepository`], the on-disk
/// [`ShardedRepository`], or a per-wave working set extracted from one.
///
/// `fetch` hands back an owned record (a sharded store may have to load
/// and later evict the shard the record lives in, so borrowed returns
/// are impossible); `put` replaces the stored champion for the record's
/// workload key.
pub trait ChampionStore {
    /// The retention policy relearn decisions are made under.
    fn retention(&self) -> RetentionPolicy;
    /// The stored champion for a workload, if any.
    fn fetch(&mut self, workload: &str) -> Option<ModelRecord>;
    /// Store (or replace) the champion for the record's workload.
    fn put(&mut self, record: ModelRecord);
}

impl ChampionStore for ModelRepository {
    fn retention(&self) -> RetentionPolicy {
        self.policy
    }

    fn fetch(&mut self, workload: &str) -> Option<ModelRecord> {
        self.get(workload).cloned()
    }

    fn put(&mut self, record: ModelRecord) {
        self.store(record);
    }
}

/// Stable FNV-1a 64-bit hash of a workload key. The shard assignment must
/// never change across builds or platforms — records written by one
/// version of the binary must be found by every later one — so the hash
/// is pinned here rather than delegated to `std`'s unspecified hasher.
pub fn shard_of(workload: &str, n_shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in workload.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % n_shards.max(1) as u64) as usize
}

/// When an append-only shard log is rewritten in place.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Logs below this many entries are never compacted (rewriting a tiny
    /// file buys nothing).
    pub min_log_entries: usize,
    /// Compact once the log holds more than `live × ratio` entries — i.e.
    /// once at least half the log (at the default 2.0) is dead weight
    /// (superseded records and tombstones).
    pub max_dead_ratio: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            min_log_entries: 1024,
            max_dead_ratio: 2.0,
        }
    }
}

/// One line of a shard log: a champion record, or a tombstone for a
/// removed workload. Append-only — replaying the log in order with
/// latest-wins semantics reconstructs the shard's live records.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum LogEntry {
    /// Store (or supersede) the champion for the record's workload.
    Put(ModelRecord),
    /// Remove the workload's champion.
    Del(String),
}

/// I/O counters for a sharded repository — what the lazy loading actually
/// did, so benches and examples can show their working set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardIoStats {
    /// Shard log files read and replayed.
    pub shard_loads: usize,
    /// Log entries appended across all flushes.
    pub entries_appended: usize,
    /// Compaction rewrites performed.
    pub compactions: usize,
    /// Unparseable log lines skipped by the lenient per-shard load.
    pub lenient_skips: usize,
    /// Resident shards dropped by eviction.
    pub evictions: usize,
}

/// One resident shard: the replayed live records plus not-yet-flushed
/// mutations.
#[derive(Debug)]
struct ShardState {
    /// Live records after latest-wins replay of the on-disk log and every
    /// pending mutation.
    records: BTreeMap<String, ModelRecord>,
    /// Entries currently in the on-disk log (drives the compaction
    /// trigger).
    log_entries: usize,
    /// Mutations not yet appended to the log.
    pending: Vec<LogEntry>,
    /// The on-disk log ends without a trailing newline (torn tail); the
    /// next append must start with one so the first new entry is not
    /// swallowed by the torn line.
    needs_newline: bool,
}

impl ShardState {
    fn empty() -> ShardState {
        ShardState {
            records: BTreeMap::new(),
            log_entries: 0,
            pending: Vec::new(),
            needs_newline: false,
        }
    }
}

/// The manifest persisted at the root of a sharded repository. The shard
/// count is fixed at creation (re-hashing an estate in place is a
/// migration, not a config change), the policies travel with the data.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct EstateManifest {
    version: u32,
    n_shards: usize,
    policy: RetentionPolicy,
    compaction: CompactionPolicy,
}

/// The estate-scale model repository: champions hashed across `N`
/// append-only shard logs, loaded lazily one shard at a time.
///
/// Looking up or persisting one champion touches exactly one shard file;
/// a full-estate scan loads shards one at a time and evicts them clean —
/// peak memory is one shard, never the estate. The [`ModelRepository`]'s
/// lenient-load semantics hold **per shard**: a corrupt or truncated
/// shard log degrades only its own workloads to the full-relearn path
/// (the parseable prefix of the log is kept, the torn tail is skipped
/// with a warning) while every other shard is untouched.
///
/// Each shard is an append-only JSON-lines log of put/delete entries with
/// tombstones; once a log exceeds [`CompactionPolicy`]'s dead-entry
/// ratio it is rewritten to just its live records via a temp-file +
/// atomic-rename pass, so a crash mid-compaction can never leave a
/// half-written shard — the old log stays in place until the rename.
#[derive(Debug)]
pub struct ShardedRepository {
    root: PathBuf,
    n_shards: usize,
    /// Policy applied by [`ShardedRepository::needs_relearn`].
    pub policy: RetentionPolicy,
    /// When shard logs are compacted.
    pub compaction: CompactionPolicy,
    shards: Vec<Option<ShardState>>,
    warnings: Vec<String>,
    io: ShardIoStats,
}

impl ShardedRepository {
    /// Manifest version written by this build.
    const VERSION: u32 = 1;

    /// Create a new sharded repository at `root` (the directory is
    /// created; an existing manifest there is an error — use
    /// [`ShardedRepository::open`] or [`ShardedRepository::open_or_create`]).
    pub fn create(root: &Path, n_shards: usize) -> Result<ShardedRepository> {
        let n_shards = n_shards.max(1);
        let manifest_path = root.join("MANIFEST.json");
        if manifest_path.exists() {
            return Err(PlannerError::Persistence(format!(
                "sharded repository already exists at {}",
                root.display()
            )));
        }
        std::fs::create_dir_all(root.join("shards")).map_err(persistence)?;
        let manifest = EstateManifest {
            version: Self::VERSION,
            n_shards,
            policy: RetentionPolicy::default(),
            compaction: CompactionPolicy::default(),
        };
        let json = serde_json::to_string_pretty(&manifest).map_err(persistence)?;
        write_atomic(&manifest_path, json.as_bytes())?;
        Ok(ShardedRepository {
            root: root.to_path_buf(),
            n_shards,
            policy: manifest.policy,
            compaction: manifest.compaction,
            shards: (0..n_shards).map(|_| None).collect(),
            warnings: Vec::new(),
            io: ShardIoStats::default(),
        })
    }

    /// Open an existing sharded repository. The manifest is the one file
    /// read strictly: without the shard count nothing can be located, so
    /// a corrupt manifest is an error rather than a degradation.
    pub fn open(root: &Path) -> Result<ShardedRepository> {
        let manifest_path = root.join("MANIFEST.json");
        let json = std::fs::read_to_string(&manifest_path).map_err(persistence)?;
        let manifest: EstateManifest = serde_json::from_str(&json).map_err(persistence)?;
        if manifest.version != Self::VERSION || manifest.n_shards == 0 {
            return Err(PlannerError::Persistence(format!(
                "unsupported repository manifest at {} (version {}, {} shards)",
                manifest_path.display(),
                manifest.version,
                manifest.n_shards
            )));
        }
        Ok(ShardedRepository {
            root: root.to_path_buf(),
            n_shards: manifest.n_shards,
            policy: manifest.policy,
            compaction: manifest.compaction,
            shards: (0..manifest.n_shards).map(|_| None).collect(),
            warnings: Vec::new(),
            io: ShardIoStats::default(),
        })
    }

    /// Open the repository at `root`, creating it with `n_shards` shards
    /// if no manifest exists yet (first boot). An existing repository
    /// keeps its own shard count — `n_shards` is only a creation default.
    pub fn open_or_create(root: &Path, n_shards: usize) -> Result<ShardedRepository> {
        if root.join("MANIFEST.json").exists() {
            ShardedRepository::open(root)
        } else {
            ShardedRepository::create(root, n_shards)
        }
    }

    /// The repository's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The fixed shard count.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Cumulative I/O counters.
    pub fn io_stats(&self) -> ShardIoStats {
        self.io
    }

    /// Drain the warnings accumulated by lenient shard loads.
    pub fn take_warnings(&mut self) -> Vec<String> {
        std::mem::take(&mut self.warnings)
    }

    /// Number of currently resident (loaded) shards.
    pub fn resident_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.is_some()).count()
    }

    fn shard_log_path(&self, idx: usize) -> PathBuf {
        self.root.join("shards").join(format!("shard-{idx:04}.log"))
    }

    /// Load shard `idx` if it is not already resident, replaying its log
    /// leniently: unreadable files and unparseable lines degrade to
    /// warnings and skipped entries, never to an error — exactly the
    /// [`ModelRepository::load_lenient`] contract, scoped to one shard.
    fn load_shard(&mut self, idx: usize) -> Result<&mut ShardState> {
        let path = self.shard_log_path(idx);
        let slot = self.shards.get_mut(idx).ok_or(PlannerError::Internal {
            context: "shard index out of range",
        })?;
        if slot.is_none() {
            let mut state = ShardState::empty();
            // A stale `.tmp` from a crashed compaction is dead weight: the
            // rename never happened, so the original log is authoritative.
            let tmp = path.with_extension("log.tmp");
            if tmp.exists() {
                std::fs::remove_file(&tmp).ok();
            }
            match std::fs::read_to_string(&path) {
                Ok(content) => {
                    self.io.shard_loads += 1;
                    state.needs_newline = !content.is_empty() && !content.ends_with('\n');
                    let mut skipped = 0usize;
                    for line in content.lines() {
                        if line.trim().is_empty() {
                            continue;
                        }
                        state.log_entries += 1;
                        match serde_json::from_str::<LogEntry>(line) {
                            Ok(LogEntry::Put(record)) => {
                                state.records.insert(record.workload.clone(), record);
                            }
                            Ok(LogEntry::Del(workload)) => {
                                state.records.remove(&workload);
                            }
                            Err(_) => skipped += 1,
                        }
                    }
                    if skipped > 0 {
                        self.io.lenient_skips += skipped;
                        self.warnings.push(format!(
                            "shard {idx}: skipped {skipped} unparseable log line(s); \
                             the affected workloads relearn from scratch"
                        ));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => {
                    self.warnings.push(format!(
                        "shard {idx}: unreadable ({e}); its workloads relearn from scratch"
                    ));
                }
            }
            *slot = Some(state);
        }
        slot.as_mut().ok_or(PlannerError::Internal {
            context: "shard vanished after load",
        })
    }

    /// Fetch the stored champion for a workload, loading only its shard.
    pub fn get(&mut self, workload: &str) -> Result<Option<&ModelRecord>> {
        let idx = shard_of(workload, self.n_shards);
        Ok(self.load_shard(idx)?.records.get(workload))
    }

    /// Store (or replace) the champion for a workload. The mutation is
    /// buffered in the shard until [`ShardedRepository::flush`].
    pub fn store(&mut self, record: ModelRecord) -> Result<()> {
        let idx = shard_of(&record.workload, self.n_shards);
        let shard = self.load_shard(idx)?;
        shard
            .records
            .insert(record.workload.clone(), record.clone());
        shard.pending.push(LogEntry::Put(record));
        Ok(())
    }

    /// Remove a workload's champion (a tombstone is appended on flush).
    /// Returns whether a record existed.
    pub fn remove(&mut self, workload: &str) -> Result<bool> {
        let idx = shard_of(workload, self.n_shards);
        let shard = self.load_shard(idx)?;
        let existed = shard.records.remove(workload).is_some();
        shard.pending.push(LogEntry::Del(workload.to_string()));
        Ok(existed)
    }

    /// Apply the Figure 4 retention rules against the sharded store —
    /// same contract as [`ModelRepository::needs_relearn`], loading only
    /// the workload's shard.
    pub fn needs_relearn(
        &mut self,
        workload: &str,
        now: u64,
        current_rmse: Option<f64>,
    ) -> Result<Option<RelearnReason>> {
        let policy = self.policy;
        let record = match self.get(workload)? {
            None => return Ok(Some(RelearnReason::Missing)),
            Some(r) => r,
        };
        if now.saturating_sub(record.fitted_at) > policy.max_age_seconds {
            return Ok(Some(RelearnReason::Stale));
        }
        if let Some(rmse) = current_rmse {
            if rmse > record.baseline_rmse * policy.rmse_degradation_factor {
                return Ok(Some(RelearnReason::Degraded));
            }
        }
        Ok(None)
    }

    /// Append every pending mutation to its shard log (one write per
    /// dirty shard), then compact any log that crossed the dead-entry
    /// threshold. Nothing is rewritten unless compaction triggers.
    pub fn flush(&mut self) -> Result<()> {
        for idx in 0..self.n_shards {
            let path = self.shard_log_path(idx);
            let Some(Some(shard)) = self.shards.get_mut(idx) else {
                continue;
            };
            if shard.pending.is_empty() {
                continue;
            }
            let mut batch = String::new();
            if shard.needs_newline {
                batch.push('\n');
                shard.needs_newline = false;
            }
            for entry in &shard.pending {
                batch.push_str(&serde_json::to_string(entry).map_err(persistence)?);
                batch.push('\n');
            }
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .map_err(persistence)?;
            file.write_all(batch.as_bytes()).map_err(persistence)?;
            let appended = shard.pending.len();
            shard.log_entries += appended;
            shard.pending.clear();
            self.io.entries_appended += appended;

            let live = shard.records.len();
            let dead_heavy =
                shard.log_entries as f64 > (live as f64) * self.compaction.max_dead_ratio;
            if shard.log_entries >= self.compaction.min_log_entries && dead_heavy {
                let mut rewritten = String::new();
                for record in shard.records.values() {
                    rewritten.push_str(
                        &serde_json::to_string(&LogEntry::Put(record.clone()))
                            .map_err(persistence)?,
                    );
                    rewritten.push('\n');
                }
                write_atomic(&path, rewritten.as_bytes())?;
                shard.log_entries = live;
                self.io.compactions += 1;
            }
        }
        Ok(())
    }

    /// Drop every resident shard with no pending mutations. Call after
    /// [`ShardedRepository::flush`] to keep a long scan's memory bounded
    /// by one wave's shards instead of the whole estate.
    pub fn evict_clean(&mut self) {
        for slot in self.shards.iter_mut() {
            if slot.as_ref().is_some_and(|s| s.pending.is_empty()) {
                *slot = None;
                self.io.evictions += 1;
            }
        }
    }

    /// Clone the stored records for `workloads`, loading each involved
    /// shard at most once and evicting every clean shard afterwards —
    /// the per-wave champion prefetch. Memory is O(result + one shard).
    pub fn fetch_many(&mut self, workloads: &[String]) -> Result<BTreeMap<String, ModelRecord>> {
        let mut by_shard: BTreeMap<usize, Vec<&String>> = BTreeMap::new();
        for key in workloads {
            by_shard
                .entry(shard_of(key, self.n_shards))
                .or_default()
                .push(key);
        }
        let mut out = BTreeMap::new();
        for (idx, keys) in by_shard {
            let shard = self.load_shard(idx)?;
            for key in keys {
                if let Some(record) = shard.records.get(key.as_str()) {
                    out.insert(key.clone(), record.clone());
                }
            }
            self.evict_clean();
        }
        Ok(out)
    }

    /// `fitted_at` for each workload (`None` when no record exists),
    /// aligned with the input order. Loads each involved shard at most
    /// once and evicts clean shards as it goes — the staleness scan for
    /// wave prioritisation, O(keys × 8 bytes) instead of O(records).
    pub fn fitted_at_many(&mut self, workloads: &[String]) -> Result<Vec<Option<u64>>> {
        let mut out = vec![None; workloads.len()];
        let mut by_shard: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (i, key) in workloads.iter().enumerate() {
            by_shard
                .entry(shard_of(key, self.n_shards))
                .or_default()
                .push(i);
        }
        for (idx, positions) in by_shard {
            let shard = self.load_shard(idx)?;
            for pos in positions {
                let (Some(key), Some(slot)) = (workloads.get(pos), out.get_mut(pos)) else {
                    continue;
                };
                *slot = shard.records.get(key.as_str()).map(|r| r.fitted_at);
            }
            self.evict_clean();
        }
        Ok(out)
    }

    /// Total live records across every shard, loading (and evicting)
    /// shards one at a time.
    pub fn count_records(&mut self) -> Result<usize> {
        let mut total = 0usize;
        for idx in 0..self.n_shards {
            total += self.load_shard(idx)?.records.len();
            self.evict_clean();
        }
        Ok(total)
    }
}

impl ChampionStore for ShardedRepository {
    fn retention(&self) -> RetentionPolicy {
        self.policy
    }

    /// Lenient by design: an I/O failure degrades the workload to the
    /// full-relearn path (`None`) instead of aborting the batch — the
    /// shard's warning records what happened.
    fn fetch(&mut self, workload: &str) -> Option<ModelRecord> {
        match self.get(workload) {
            Ok(record) => record.cloned(),
            Err(_) => None,
        }
    }

    fn put(&mut self, record: ModelRecord) {
        if self.store(record).is_err() {
            // Unreachable in practice (store only errors on an
            // out-of-range shard index); the record is simply not
            // persisted and the workload relearns next run.
        }
    }
}

fn persistence(e: impl std::fmt::Display) -> PlannerError {
    PlannerError::Persistence(e.to_string())
}

/// Write via a temp file + atomic rename: readers never observe a
/// half-written file, and a crash leaves either the old file or the new
/// one — never a hybrid.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = path.with_extension(match path.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{ext}.tmp"),
        None => "tmp".to_string(),
    });
    std::fs::write(&tmp, bytes).map_err(persistence)?;
    std::fs::rename(&tmp, path).map_err(persistence)
}

/// The >3-occurrence shock policy (§9): an anomalous event is discarded
/// until it has been seen more than `threshold` times, after which it is a
/// *behaviour* the models must account for (e.g. a new exogenous column).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShockTracker {
    counts: BTreeMap<String, u32>,
    /// Occurrences needed before an event becomes a behaviour
    /// (paper default: "more than 3 times", "which can be changed
    /// manually").
    pub threshold: u32,
}

impl Default for ShockTracker {
    fn default() -> Self {
        ShockTracker {
            counts: BTreeMap::new(),
            threshold: 3,
        }
    }
}

impl ShockTracker {
    /// Tracker with the paper's default threshold of 3.
    pub fn new() -> ShockTracker {
        ShockTracker::default()
    }

    /// Record one occurrence of an event; returns the updated count.
    pub fn record(&mut self, event: &str) -> u32 {
        let c = self.counts.entry(event.to_string()).or_insert(0);
        *c += 1;
        *c
    }

    /// Whether the event has crossed the behaviour threshold (strictly more
    /// than `threshold` occurrences).
    pub fn is_behaviour(&self, event: &str) -> bool {
        self.counts.get(event).copied().unwrap_or(0) > self.threshold
    }

    /// Forget an event (manual override for systems *in fault*, §9).
    pub fn discard(&mut self, event: &str) {
        self.counts.remove(event);
    }

    /// Occurrence count for an event.
    pub fn count(&self, event: &str) -> u32 {
        self.counts.get(event).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(workload: &str, rmse: f64, fitted_at: u64) -> ModelRecord {
        ModelRecord {
            workload: workload.to_string(),
            champion: "SARIMAX (1,1,1)(0,1,1,24)".to_string(),
            granularity: Granularity::Hourly,
            baseline_rmse: rmse,
            fitted_at,
            champion_config: None,
            warm_params: Vec::new(),
            warm_beta: Vec::new(),
        }
    }

    #[test]
    fn champion_seed_requires_a_stored_config() {
        let mut r = record("cdbm011/CPU", 10.0, 0);
        assert!(r.champion_seed().is_none(), "legacy records have no seed");
        let config =
            dwcp_models::SarimaxConfig::plain(dwcp_models::ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24));
        r.champion_config = Some(config.clone().into());
        r.warm_params = vec![0.2, -0.1, 0.05];
        let (stored, params, beta) = r.champion_seed().unwrap();
        assert_eq!(stored.as_sarimax(), Some(&config));
        assert_eq!(params, [0.2, -0.1, 0.05]);
        assert!(beta.is_empty());
    }

    #[test]
    fn record_with_seed_roundtrips_through_json() {
        let mut repo = ModelRepository::new();
        let mut r = record("cdbm011/CPU", 8.42, 1_700_000_000);
        r.champion_config = Some(
            dwcp_models::SarimaxConfig::plain(dwcp_models::ArimaSpec::sarima(4, 1, 2, 1, 1, 1, 24))
                .into(),
        );
        r.warm_params = vec![0.25, -0.5, 1.5];
        repo.store(r);
        let dir = std::env::temp_dir().join("dwcp_repo_seed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    /// A short seasonal trace for the smoothing-family round-trip tests.
    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tf = t as f64;
                60.0 + 10.0 * (2.0 * std::f64::consts::PI * tf / 12.0).sin()
                    + ((t * 7919 % 101) as f64) / 50.0
            })
            .collect()
    }

    /// Store a champion, round-trip it through JSON, then re-score the
    /// loaded seed frozen: the stored RMSE must reproduce bit-for-bit.
    fn roundtrip_and_rescore_frozen(workload: &str, candidates: Vec<crate::grid::CandidateModel>) {
        use crate::evaluate::{evaluate_candidates, evaluate_fleet, EvalTask};
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let cold =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        let champion = cold.champion().unwrap().clone();
        let mut repo = ModelRepository::new();
        repo.store(ModelRecord {
            workload: workload.to_string(),
            champion: champion.candidate.config.describe(),
            granularity: Granularity::Hourly,
            baseline_rmse: champion.accuracy.rmse,
            fitted_at: 7,
            champion_config: Some(champion.candidate.config.clone()),
            warm_params: champion.warm_params.clone(),
            warm_beta: champion.warm_beta.clone(),
        });
        let dir = std::env::temp_dir().join("dwcp_repo_family_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}.json", workload.replace('/', "_")));
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let loaded = back.get(workload).unwrap();
        assert_eq!(loaded, repo.get(workload).unwrap());
        let (config, params, beta) = loaded.champion_seed().unwrap();
        assert_eq!(config, &champion.candidate.config);
        // Frozen re-score from the loaded seed reproduces the stored RMSE.
        let task = EvalTask {
            train,
            test,
            exog_train: &[],
            exog_test: &[],
            candidates: &candidates,
            opts: Default::default(),
            seed: Some((config.clone(), params.to_vec(), beta.to_vec())),
        };
        let seeded = evaluate_fleet(std::slice::from_ref(&task), 1)
            .pop()
            .unwrap()
            .unwrap();
        let re_scored = seeded
            .scores
            .iter()
            .find(|s| s.candidate.config == champion.candidate.config)
            .unwrap();
        assert_eq!(
            re_scored.accuracy.rmse.to_bits(),
            loaded.baseline_rmse.to_bits()
        );
        assert_eq!(re_scored.warm_params, loaded.warm_params);
    }

    #[test]
    fn hes_champion_roundtrips_and_rescores_frozen() {
        let grid = crate::grid::ModelGrid::ets(12, true, 0.95);
        roundtrip_and_rescore_frozen("cdbm014/CPU/hourly", grid.candidates);
    }

    #[test]
    fn tbats_champion_roundtrips_and_rescores_frozen() {
        use crate::grid::{CandidateModel, ModelConfig};
        let config = dwcp_models::TbatsConfig::seasonal(12.0, 2);
        let candidates = vec![CandidateModel::new(ModelConfig::Tbats(config))];
        roundtrip_and_rescore_frozen("cdbm014/IOPS/hourly", candidates);
    }

    #[test]
    fn missing_model_needs_relearn() {
        let repo = ModelRepository::new();
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 0, None),
            Some(RelearnReason::Missing)
        );
    }

    #[test]
    fn fresh_accurate_model_is_kept() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 86_400, Some(12.0)),
            None
        );
    }

    #[test]
    fn week_old_model_is_stale() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        let now = 1_000_000 + ONE_WEEK_SECONDS + 1;
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", now, Some(10.0)),
            Some(RelearnReason::Stale)
        );
    }

    #[test]
    fn degraded_rmse_triggers_relearn() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 10.0, 1_000_000));
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 3600, Some(25.0)),
            Some(RelearnReason::Degraded)
        );
        // Exactly at the boundary: kept.
        assert_eq!(
            repo.needs_relearn("cdbm011/CPU", 1_000_000 + 3600, Some(20.0)),
            None
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        repo.store(record("cdbm012/Memory", 61.3, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let back = ModelRepository::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_repository_file_degrades_to_full_relearn() {
        // Simulate an interrupted write: persist a real repository, then
        // chop the JSON mid-record. The lenient load must hand back an
        // empty repository (every workload relearns from scratch) and
        // surface the parse error — never abort.
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_truncated_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();

        assert!(ModelRepository::load(&path).is_err(), "strict load fails");
        let (recovered, warning) = ModelRepository::load_lenient(&path);
        assert!(recovered.is_empty(), "corrupt file yields an empty repo");
        assert!(warning.is_some(), "the parse error is surfaced, not eaten");
        assert_eq!(
            recovered.needs_relearn("cdbm011/CPU", 0, None),
            Some(RelearnReason::Missing),
            "every workload takes the full-relearn path"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_repository_file_degrades_to_full_relearn() {
        let dir = std::env::temp_dir().join("dwcp_repo_garbage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        std::fs::write(&path, "not json at all {{{").unwrap();
        let (recovered, warning) = ModelRepository::load_lenient(&path);
        assert!(recovered.is_empty());
        assert!(warning.is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_repository_file_is_first_boot_not_degradation() {
        let path = std::env::temp_dir().join("dwcp_repo_never_written.json");
        std::fs::remove_file(&path).ok();
        let (repo, warning) = ModelRepository::load_lenient(&path);
        assert!(repo.is_empty());
        assert!(warning.is_none(), "a missing file is not a warning");
    }

    #[test]
    fn intact_repository_file_loads_leniently_without_warning() {
        let mut repo = ModelRepository::new();
        repo.store(record("cdbm011/CPU", 8.42, 1_700_000_000));
        let dir = std::env::temp_dir().join("dwcp_repo_lenient_ok_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        repo.save(&path).unwrap();
        let (back, warning) = ModelRepository::load_lenient(&path);
        assert!(warning.is_none());
        assert_eq!(back.get("cdbm011/CPU"), repo.get("cdbm011/CPU"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shock_becomes_behaviour_after_threshold() {
        let mut tracker = ShockTracker::new();
        for i in 1..=3 {
            assert_eq!(tracker.record("failover"), i);
            assert!(!tracker.is_behaviour("failover"), "at count {i}");
        }
        tracker.record("failover"); // 4th occurrence — "more than 3 times"
        assert!(tracker.is_behaviour("failover"));
    }

    #[test]
    fn shock_discard_resets_the_count() {
        let mut tracker = ShockTracker::new();
        for _ in 0..5 {
            tracker.record("crash");
        }
        assert!(tracker.is_behaviour("crash"));
        tracker.discard("crash");
        assert!(!tracker.is_behaviour("crash"));
        assert_eq!(tracker.count("crash"), 0);
    }

    #[test]
    fn shock_threshold_is_adjustable() {
        let mut tracker = ShockTracker {
            threshold: 1,
            ..ShockTracker::new()
        };
        tracker.record("batch");
        assert!(!tracker.is_behaviour("batch"));
        tracker.record("batch");
        assert!(tracker.is_behaviour("batch"));
    }

    #[test]
    fn distinct_events_tracked_independently() {
        let mut tracker = ShockTracker::new();
        for _ in 0..10 {
            tracker.record("a");
        }
        tracker.record("b");
        assert!(tracker.is_behaviour("a"));
        assert!(!tracker.is_behaviour("b"));
    }

    /// Fresh scratch directory for a sharded-repository test.
    fn estate_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dwcp_estate_{}_{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn shard_hash_is_pinned() {
        // The on-disk shard assignment must never move between builds:
        // these are FNV-1a 64 values computed once and frozen here.
        assert_eq!(shard_of("cdbm011/CPU/hourly", 16), 10);
        assert_eq!(shard_of("cdbm011/Memory/hourly", 16), 9);
        assert_eq!(shard_of("est000000/CPU/daily", 64), 36);
        assert_eq!(shard_of("", 16), shard_of("", 16));
        assert_eq!(shard_of("anything", 1), 0);
        assert_eq!(shard_of("anything", 0), 0, "zero shards clamps to one");
    }

    #[test]
    fn sharded_roundtrip_touches_one_shard_per_lookup() {
        let dir = estate_dir("roundtrip");
        let mut repo = ShardedRepository::create(&dir, 8).unwrap();
        for i in 0..40 {
            repo.store(record(&format!("w{i:03}/CPU"), 5.0 + i as f64, 100))
                .unwrap();
        }
        repo.flush().unwrap();

        let mut back = ShardedRepository::open(&dir).unwrap();
        assert_eq!(back.n_shards(), 8);
        let got = back.get("w007/CPU").unwrap().cloned().unwrap();
        assert_eq!(got.baseline_rmse, 12.0);
        assert_eq!(
            back.io_stats().shard_loads,
            1,
            "one lookup must load exactly one shard, not the estate"
        );
        assert_eq!(back.count_records().unwrap(), 40);
        back.evict_clean();
        assert_eq!(back.resident_shards(), 0);
        assert!(back.take_warnings().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_degrades_only_its_own_workloads() {
        let dir = estate_dir("corrupt");
        let mut repo = ShardedRepository::create(&dir, 4).unwrap();
        for i in 0..20 {
            repo.store(record(&format!("w{i:03}/CPU"), 1.0, 100))
                .unwrap();
        }
        repo.flush().unwrap();

        // Garbage one shard log wholesale.
        let victim = dir.join("shards").join("shard-0002.log");
        assert!(victim.exists());
        std::fs::write(&victim, b"this is not json\nneither is this\n").unwrap();

        let mut back = ShardedRepository::open(&dir).unwrap();
        let survivors = back.count_records().unwrap();
        let lost = (0..20)
            .filter(|i| shard_of(&format!("w{i:03}/CPU"), 4) == 2)
            .count();
        assert!(lost > 0, "test needs at least one key in the victim shard");
        assert_eq!(
            survivors,
            20 - lost,
            "only the corrupt shard's records vanish"
        );
        let warnings = back.take_warnings();
        assert_eq!(warnings.len(), 1, "one warning for the one bad shard");
        assert!(
            warnings.iter().any(|w| w.contains("shard 2")),
            "{warnings:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_keeps_parseable_prefix_and_later_appends_survive() {
        let dir = estate_dir("torn");
        let mut repo = ShardedRepository::create(&dir, 1).unwrap();
        repo.store(record("a/CPU", 1.0, 100)).unwrap();
        repo.store(record("b/CPU", 2.0, 100)).unwrap();
        repo.flush().unwrap();

        // Simulate a crash mid-append: chop the log mid-line.
        let log = dir.join("shards").join("shard-0000.log");
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 30]).unwrap();

        // Appending after the torn tail must not merge into the torn line.
        let mut again = ShardedRepository::open(&dir).unwrap();
        again.store(record("c/CPU", 3.0, 100)).unwrap();
        again.flush().unwrap();

        let mut back = ShardedRepository::open(&dir).unwrap();
        assert!(
            back.get("a/CPU").unwrap().is_some(),
            "parseable prefix kept"
        );
        assert!(back.get("b/CPU").unwrap().is_none(), "torn record lost");
        assert!(
            back.get("c/CPU").unwrap().is_some(),
            "post-tear append intact"
        );
        assert_eq!(back.io_stats().lenient_skips, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_preserves_latest_wins_and_tombstones() {
        let dir = estate_dir("compact");
        let mut repo = ShardedRepository::create(&dir, 1).unwrap();
        repo.compaction = CompactionPolicy {
            min_log_entries: 8,
            max_dead_ratio: 2.0,
        };
        // Rewrite the same two keys repeatedly, delete a third.
        repo.store(record("gone/CPU", 9.0, 50)).unwrap();
        for round in 0..6u64 {
            repo.store(record("a/CPU", 1.0 + round as f64, 100 + round))
                .unwrap();
            repo.store(record("b/CPU", 2.0 + round as f64, 200 + round))
                .unwrap();
            repo.flush().unwrap();
        }
        repo.remove("gone/CPU").unwrap();
        repo.flush().unwrap();
        assert!(
            repo.io_stats().compactions > 0,
            "dead-heavy log must compact"
        );

        // The compacted log holds exactly the live records.
        let log = dir.join("shards").join("shard-0000.log");
        let content = std::fs::read_to_string(&log).unwrap();
        assert_eq!(
            content.lines().count(),
            2,
            "two live records after compaction"
        );

        let mut back = ShardedRepository::open(&dir).unwrap();
        assert_eq!(back.get("a/CPU").unwrap().unwrap().fitted_at, 105);
        assert_eq!(back.get("b/CPU").unwrap().unwrap().fitted_at, 205);
        assert!(
            back.get("gone/CPU").unwrap().is_none(),
            "tombstone honoured"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_compaction_tmp_is_ignored_and_cleaned() {
        let dir = estate_dir("staletmp");
        let mut repo = ShardedRepository::create(&dir, 1).unwrap();
        repo.store(record("a/CPU", 1.0, 100)).unwrap();
        repo.flush().unwrap();

        // A crash between writing the temp file and the rename leaves a
        // `.tmp` next to the authoritative log.
        let tmp = dir.join("shards").join("shard-0000.log.tmp");
        std::fs::write(&tmp, b"half-written garbage").unwrap();

        let mut back = ShardedRepository::open(&dir).unwrap();
        assert!(back.get("a/CPU").unwrap().is_some(), "original log wins");
        assert!(
            back.take_warnings().is_empty(),
            "stale tmp is not a warning"
        );
        assert!(!tmp.exists(), "stale tmp removed on load");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fetch_many_and_fitted_at_many_stay_lazy() {
        let dir = estate_dir("fetchmany");
        let mut repo = ShardedRepository::create(&dir, 8).unwrap();
        for i in 0..30 {
            repo.store(record(&format!("w{i:03}/CPU"), 1.0, 100 + i as u64))
                .unwrap();
        }
        repo.flush().unwrap();

        let mut back = ShardedRepository::open(&dir).unwrap();
        let keys: Vec<String> = vec![
            "w001/CPU".to_string(),
            "w002/CPU".to_string(),
            "missing/CPU".to_string(),
        ];
        let fetched = back.fetch_many(&keys).unwrap();
        assert_eq!(fetched.len(), 2);
        assert!(fetched.contains_key("w001/CPU"));
        let ages = back.fitted_at_many(&keys).unwrap();
        assert_eq!(ages, vec![Some(101), Some(102), None]);
        assert_eq!(back.resident_shards(), 0, "scans evict as they go");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn champion_store_trait_matches_direct_access() {
        let dir = estate_dir("trait");
        let mut sharded = ShardedRepository::create(&dir, 4).unwrap();
        let mut in_memory = ModelRepository::new();
        let r = record("w/CPU", 3.0, 100);
        ChampionStore::put(&mut sharded, r.clone());
        ChampionStore::put(&mut in_memory, r.clone());
        assert_eq!(ChampionStore::fetch(&mut sharded, "w/CPU"), Some(r.clone()));
        assert_eq!(ChampionStore::fetch(&mut in_memory, "w/CPU"), Some(r));
        assert_eq!(ChampionStore::fetch(&mut sharded, "absent"), None);
        assert_eq!(
            sharded.retention().max_age_seconds,
            in_memory.retention().max_age_seconds
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_needs_relearn_applies_figure4_rules() {
        let dir = estate_dir("relearn");
        let mut repo = ShardedRepository::create(&dir, 2).unwrap();
        repo.store(record("fresh/CPU", 10.0, 1_000_000)).unwrap();
        repo.flush().unwrap();
        let now = 1_000_000 + 3600;
        assert_eq!(
            repo.needs_relearn("absent/CPU", now, None).unwrap(),
            Some(RelearnReason::Missing)
        );
        assert_eq!(
            repo.needs_relearn("fresh/CPU", now, Some(10.0)).unwrap(),
            None
        );
        assert_eq!(
            repo.needs_relearn("fresh/CPU", now, Some(25.0)).unwrap(),
            Some(RelearnReason::Degraded)
        );
        assert_eq!(
            repo.needs_relearn("fresh/CPU", 1_000_000 + ONE_WEEK_SECONDS + 1, None)
                .unwrap(),
            Some(RelearnReason::Stale)
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn create_refuses_to_clobber_and_open_or_create_reopens() {
        let dir = estate_dir("manifest");
        let mut repo = ShardedRepository::create(&dir, 8).unwrap();
        repo.store(record("w/CPU", 1.0, 100)).unwrap();
        repo.flush().unwrap();
        assert!(ShardedRepository::create(&dir, 8).is_err());
        // Reopen keeps the persisted shard count, ignoring the default.
        let back = ShardedRepository::open_or_create(&dir, 99).unwrap();
        assert_eq!(back.n_shards(), 8);
        std::fs::remove_dir_all(&dir).ok();
    }
}
