//! Rolling-origin backtesting.
//!
//! §9: "we continually assess the models performance through Machine
//! Learning". A single Table 1 split scores a champion once; a rolling-
//! origin backtest replays history — fit on everything before origin `t`,
//! forecast `h` steps, slide forward — and reports how accuracy holds up
//! across many origins, per horizon step. This is the evidence behind the
//! repository's one-week reuse window: if step-24 accuracy were already
//! collapsing, a week of reuse would be indefensible.

// lint: allow-file(indexing) — rolling-origin window arithmetic; every origin/horizon slice is bounded by the min_train and horizon admission checks before the replay loop

use crate::{PlannerError, Result};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::{FittedSarimax, SarimaxConfig};
use dwcp_series::Accuracy;

/// Configuration of a rolling-origin backtest.
#[derive(Debug, Clone)]
pub struct BacktestConfig {
    /// Minimum training length before the first origin.
    pub min_train: usize,
    /// Forecast horizon evaluated at each origin.
    pub horizon: usize,
    /// Observations to advance the origin by between folds.
    pub stride: usize,
    /// Per-fold fit options.
    pub fit: ArimaOptions,
}

impl Default for BacktestConfig {
    fn default() -> Self {
        BacktestConfig {
            min_train: 336, // two weeks of hourly data
            horizon: 24,
            stride: 24,
            fit: ArimaOptions::default(),
        }
    }
}

/// The aggregate result of a rolling-origin backtest.
#[derive(Debug, Clone)]
pub struct BacktestReport {
    /// Overall accuracy across every (origin, step) pair.
    pub overall: Accuracy,
    /// RMSE per horizon step (index 0 = one step ahead), averaged over
    /// origins.
    pub rmse_by_step: Vec<f64>,
    /// Accuracy per fold, in origin order.
    pub per_fold: Vec<Accuracy>,
    /// Number of folds evaluated.
    pub folds: usize,
    /// Folds whose fit failed (skipped).
    pub failures: usize,
}

impl BacktestReport {
    /// Ratio of the last horizon step's RMSE to the first's — how much the
    /// model decays across the horizon (1.0 = no decay).
    pub fn horizon_decay(&self) -> f64 {
        match (self.rmse_by_step.first(), self.rmse_by_step.last()) {
            (Some(&first), Some(&last)) if first > 0.0 => last / first,
            _ => 1.0,
        }
    }
}

/// Run a rolling-origin backtest of one SARIMAX configuration.
///
/// `exog` must span the full series (sliced per fold); pass `&[]` when the
/// config uses no exogenous columns.
pub fn backtest(
    values: &[f64],
    config: &SarimaxConfig,
    exog: &[Vec<f64>],
    bt: &BacktestConfig,
) -> Result<BacktestReport> {
    if bt.horizon == 0 || bt.stride == 0 {
        return Err(PlannerError::Series(
            dwcp_series::SeriesError::InvalidParameter {
                context: "backtest: horizon and stride must be positive",
            },
        ));
    }
    let needed = bt.min_train + bt.horizon;
    if values.len() < needed {
        return Err(PlannerError::Series(dwcp_series::SeriesError::TooShort {
            needed,
            got: values.len(),
        }));
    }
    for col in exog {
        if col.len() != values.len() {
            return Err(PlannerError::Model(
                dwcp_models::ModelError::ExogenousMismatch {
                    context: format!(
                        "backtest: exogenous column length {} != series length {}",
                        col.len(),
                        values.len()
                    ),
                },
            ));
        }
    }

    let n_exog = config.n_exog;
    let mut per_fold = Vec::new();
    let mut failures = 0usize;
    let mut se_by_step = vec![0.0f64; bt.horizon];
    let mut count_by_step = vec![0usize; bt.horizon];
    let mut all_actual = Vec::new();
    let mut all_forecast = Vec::new();

    let mut origin = bt.min_train;
    while origin + bt.horizon <= values.len() {
        let train = &values[..origin];
        let actual = &values[origin..origin + bt.horizon];
        let exog_train: Vec<Vec<f64>> = exog[..n_exog]
            .iter()
            .map(|c| c[..origin].to_vec())
            .collect();
        let exog_future: Vec<Vec<f64>> = exog[..n_exog]
            .iter()
            .map(|c| c[origin..origin + bt.horizon].to_vec())
            .collect();
        let fold = FittedSarimax::fit(train, config, &exog_train, 0, &bt.fit)
            .and_then(|fit| fit.forecast(bt.horizon, &exog_future));
        match fold {
            Ok(forecast) => {
                if let Ok(acc) = Accuracy::compute(actual, &forecast.mean) {
                    for (h, (&a, &f)) in actual.iter().zip(&forecast.mean).enumerate() {
                        se_by_step[h] += (a - f) * (a - f);
                        count_by_step[h] += 1;
                    }
                    all_actual.extend_from_slice(actual);
                    all_forecast.extend_from_slice(&forecast.mean);
                    per_fold.push(acc);
                } else {
                    failures += 1;
                }
            }
            Err(_) => failures += 1,
        }
        origin += bt.stride;
    }

    if per_fold.is_empty() {
        return Err(PlannerError::NoViableModel {
            attempted: failures,
        });
    }
    let overall = Accuracy::compute(&all_actual, &all_forecast)?;
    let rmse_by_step = se_by_step
        .iter()
        .zip(&count_by_step)
        .map(|(&se, &c)| {
            if c == 0 {
                f64::NAN
            } else {
                (se / c as f64).sqrt()
            }
        })
        .collect();
    Ok(BacktestReport {
        overall,
        rmse_by_step,
        folds: per_fold.len(),
        per_fold,
        failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcp_models::ArimaSpec;

    fn fast() -> BacktestConfig {
        BacktestConfig {
            min_train: 120,
            horizon: 12,
            stride: 48,
            fit: ArimaOptions {
                max_evals: 100,
                restarts: 0,
                interval_level: 0.95,
                ..Default::default()
            },
        }
    }

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                100.0
                    + 15.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
                    + ((t.wrapping_mul(2654435761) % 89) as f64) / 25.0
            })
            .collect()
    }

    #[test]
    fn backtest_covers_expected_folds() {
        let y = seasonal_series(400);
        let config = SarimaxConfig::plain(ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 12));
        let report = backtest(&y, &config, &[], &fast()).unwrap();
        // Origins: 120, 168, …, ≤ 388 → ⌈(400−12−120+1)/48⌉ = 6 folds.
        assert_eq!(report.folds, 6);
        assert_eq!(report.failures, 0);
        assert_eq!(report.rmse_by_step.len(), 12);
        assert!(report.overall.rmse < 6.0, "rmse = {}", report.overall.rmse);
    }

    #[test]
    fn horizon_decay_is_mild_for_a_well_specified_model() {
        let y = seasonal_series(500);
        let config = SarimaxConfig::plain(ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 12));
        let report = backtest(&y, &config, &[], &fast()).unwrap();
        assert!(
            report.horizon_decay() < 3.0,
            "decay = {}",
            report.horizon_decay()
        );
    }

    #[test]
    fn misspecified_model_scores_worse() {
        let y = seasonal_series(400);
        let good = SarimaxConfig::plain(ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 12));
        let bad = SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0)); // ignores seasonality
        let r_good = backtest(&y, &good, &[], &fast()).unwrap();
        let r_bad = backtest(&y, &bad, &[], &fast()).unwrap();
        assert!(
            r_good.overall.rmse < r_bad.overall.rmse,
            "{} vs {}",
            r_good.overall.rmse,
            r_bad.overall.rmse
        );
    }

    #[test]
    fn exogenous_columns_slide_with_the_origin() {
        let n = 400;
        let shock: Vec<f64> = (0..n)
            .map(|t| if t % 12 == 0 { 1.0 } else { 0.0 })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|t| 20.0 + 35.0 * shock[t] + ((t.wrapping_mul(31) % 17) as f64) / 10.0)
            .collect();
        let config = SarimaxConfig {
            spec: ArimaSpec::arima(1, 0, 0),
            fourier: Default::default(),
            n_exog: 1,
        };
        let report = backtest(&y, &config, &[shock], &fast()).unwrap();
        assert!(report.overall.rmse < 5.0, "rmse = {}", report.overall.rmse);
    }

    #[test]
    fn input_validation() {
        let y = seasonal_series(50);
        let config = SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0));
        assert!(backtest(&y, &config, &[], &fast()).is_err()); // too short
        let mut bt = fast();
        bt.horizon = 0;
        assert!(backtest(&seasonal_series(400), &config, &[], &bt).is_err());
        let config_exog = SarimaxConfig {
            n_exog: 1,
            ..config
        };
        let short_exog = vec![vec![0.0; 10]];
        assert!(backtest(&seasonal_series(400), &config_exog, &short_exog, &fast()).is_err());
    }
}
