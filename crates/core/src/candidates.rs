//! Data-driven self-configuration (§5's "self-selection and
//! self-configuration of models").
//!
//! Before any model is fitted, the pipeline profiles the series: is it
//! stationary (ADF)? What differencing does it need? What seasonal periods
//! does it exhibit (periodogram + ACF)? Which ACF/PACF lags are
//! significant? The [`DataProfile`] answers those questions and a
//! [`CandidateSet`] turns them into a focused model list.

use crate::grid::{CandidateModel, ModelGrid};
use crate::Result;
use dwcp_series::stationarity::{adf_test, AdfRegression};
use dwcp_series::{detect_seasonality, suggest_differencing, Correlogram};

/// Everything the pipeline learned about a series before model fitting.
#[derive(Debug, Clone)]
pub struct DataProfile {
    /// Suggested regular differencing order from repeated ADF testing.
    pub suggested_d: usize,
    /// Whether the undifferenced series already looks stationary.
    pub stationary: bool,
    /// Detected seasonal periods, strongest first.
    pub seasonal_periods: Vec<usize>,
    /// Whether more than one distinct cycle was confirmed — triggers
    /// Fourier terms per §4.4.
    pub multi_seasonal: bool,
    /// The correlogram over 30 lags (the paper's diagnostic window).
    pub correlogram: Correlogram,
    /// Number of observations profiled.
    pub n: usize,
}

impl DataProfile {
    /// Profile `values` (gap-free; interpolate first).
    pub fn analyze(values: &[f64]) -> Result<DataProfile> {
        let suggested_d = suggest_differencing(values, 2)?;
        let stationary = adf_test(values, None, AdfRegression::Constant)
            .map(|r| r.stationary)
            .unwrap_or(false);
        let season_report = detect_seasonality(values, values.len() / 2)?;
        let correlogram = Correlogram::compute(values, 30)?;
        Ok(DataProfile {
            suggested_d,
            stationary,
            seasonal_periods: season_report.periods(),
            multi_seasonal: season_report.is_multi_seasonal(),
            correlogram,
            n: values.len(),
        })
    }

    /// The seasonal period used for the SARIMA `F` parameter.
    ///
    /// The paper ties `F` to the monitoring frequency ("12 months,
    /// 24 hours"), so when the granularity's natural period (`fallback`)
    /// is among the confirmed cycles it wins even if a shorter
    /// shock-driven cycle carries more spectral power — sub-daily backup
    /// cycles are modelled by Fourier terms and exogenous indicators, not
    /// by the seasonal ARIMA block. Only when the natural period is
    /// absent does the strongest detected cycle take over.
    pub fn primary_period(&self, fallback: usize) -> usize {
        let tolerance = 1 + fallback / 12;
        if self
            .seasonal_periods
            .iter()
            .any(|&p| p.abs_diff(fallback) <= tolerance)
        {
            return fallback;
        }
        self.seasonal_periods.first().copied().unwrap_or(fallback)
    }

    /// The detected periods as `f64`s for Fourier specs.
    pub fn fourier_periods(&self, fallback: usize) -> Vec<f64> {
        if self.seasonal_periods.is_empty() {
            vec![fallback as f64]
        } else {
            self.seasonal_periods.iter().map(|&p| p as f64).collect()
        }
    }
}

/// A focused candidate list derived from a [`DataProfile`].
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// The models to evaluate, deterministic order.
    pub models: Vec<CandidateModel>,
    /// The profile they were derived from.
    pub profile: DataProfile,
}

impl CandidateSet {
    /// Build the pruned ARIMA candidate set for a profiled series.
    pub fn arima(profile: DataProfile, max_candidates: usize) -> CandidateSet {
        let grid = ModelGrid::arima().prune(&profile.correlogram, max_candidates);
        // Prefer the ADF-suggested differencing order: move matching d
        // values to the front so truncation keeps them.
        let mut models = grid.candidates;
        models.sort_by_key(|c| {
            // A non-SARIMAX candidate (none in today's ARIMA grid) sorts
            // last, deterministically, instead of panicking the sort.
            let Some(cand) = c.as_sarimax() else {
                return (true, usize::MAX, usize::MAX);
            };
            let spec = &cand.spec;
            (spec.d != profile.suggested_d.min(1), spec.p, spec.q)
        });
        models.truncate(max_candidates);
        CandidateSet { models, profile }
    }

    /// Build the pruned SARIMAX candidate set (optionally with exogenous
    /// columns) for a profiled series.
    pub fn sarimax(
        profile: DataProfile,
        fallback_period: usize,
        n_exog: usize,
        max_candidates: usize,
    ) -> CandidateSet {
        let period = profile.primary_period(fallback_period);
        let grid = if n_exog > 0 {
            ModelGrid::sarimax_exogenous(period, n_exog)
        } else {
            ModelGrid::sarimax(period)
        };
        let grid = grid.prune(&profile.correlogram, max_candidates * 4);
        let mut models = grid.candidates;
        models.sort_by_key(|c| {
            // Same quarantine as the ARIMA sort: unknown shapes go last.
            let Some(cand) = c.as_sarimax() else {
                return (true, usize::MAX, usize::MAX);
            };
            let spec = &cand.spec;
            (
                spec.d != profile.suggested_d.min(1),
                spec.p,
                spec.q + spec.seasonal_p + spec.seasonal_q,
            )
        });
        models.truncate(max_candidates);
        CandidateSet { models, profile }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seasonal_trending_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tf = t as f64;
                50.0 + 0.3 * tf
                    + 15.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                    + ((t * 7919 % 101) as f64) / 40.0
            })
            .collect()
    }

    #[test]
    fn profile_detects_trend_and_season() {
        let y = seasonal_trending_series(720);
        let p = DataProfile::analyze(&y).unwrap();
        assert_eq!(p.suggested_d, 1, "trend should force d = 1");
        assert_eq!(p.primary_period(99), 24);
    }

    #[test]
    fn profile_of_stationary_noise() {
        let mut state = 5u64;
        let y: Vec<f64> = (0..400)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let p = DataProfile::analyze(&y).unwrap();
        assert!(p.stationary);
        assert_eq!(p.suggested_d, 0);
        assert_eq!(p.primary_period(24), 24); // fallback used
    }

    #[test]
    fn arima_candidates_prefer_suggested_d() {
        let y = seasonal_trending_series(720);
        let profile = DataProfile::analyze(&y).unwrap();
        let set = CandidateSet::arima(profile, 12);
        assert!(!set.models.is_empty());
        assert!(set.models.len() <= 12);
        // The first candidates carry the suggested differencing.
        assert_eq!(set.models[0].as_sarimax().unwrap().spec.d, 1);
    }

    #[test]
    fn natural_period_preferred_over_stronger_short_cycle() {
        // A 6-hourly spike train dominates the spectrum, but the daily
        // cycle is also confirmed: F must stay 24 for hourly data.
        let y: Vec<f64> = (0..720)
            .map(|t| {
                let tf = t as f64;
                let mut v = 100.0
                    + 8.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                    + ((t * 7919 % 101) as f64) / 40.0;
                if t % 6 == 0 {
                    v += 60.0; // spike amplitude dwarfs the daily swing
                }
                v
            })
            .collect();
        let p = DataProfile::analyze(&y).unwrap();
        assert!(p.seasonal_periods.contains(&24), "{:?}", p.seasonal_periods);
        assert_eq!(p.primary_period(24), 24);
    }

    #[test]
    fn strongest_cycle_used_when_natural_period_absent() {
        // Pure 12-cycle data at "hourly" granularity: no period-24 cycle
        // confirmed, so the detected 12 wins over the fallback 24.
        let y: Vec<f64> = (0..480)
            .map(|t| {
                50.0 + 20.0 * (2.0 * std::f64::consts::PI * t as f64 / 12.0).sin()
                    + ((t * 31 % 17) as f64) / 20.0
            })
            .collect();
        let p = DataProfile::analyze(&y).unwrap();
        assert_eq!(p.primary_period(24), 12, "{:?}", p.seasonal_periods);
    }

    #[test]
    fn sarimax_candidates_use_detected_period() {
        let y = seasonal_trending_series(720);
        let profile = DataProfile::analyze(&y).unwrap();
        let set = CandidateSet::sarimax(profile, 99, 0, 16);
        assert!(set
            .models
            .iter()
            .all(|c| c.as_sarimax().unwrap().spec.period == 24));
    }

    #[test]
    fn exogenous_columns_flow_through() {
        let y = seasonal_trending_series(720);
        let profile = DataProfile::analyze(&y).unwrap();
        let set = CandidateSet::sarimax(profile, 24, 4, 10);
        assert!(set
            .models
            .iter()
            .all(|c| c.as_sarimax().unwrap().n_exog == 4));
    }

    #[test]
    fn fourier_periods_fall_back() {
        let mut state = 11u64;
        let y: Vec<f64> = (0..300)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 33) as f64 / (1u64 << 31) as f64
            })
            .collect();
        let p = DataProfile::analyze(&y).unwrap();
        assert_eq!(p.fourier_periods(24), vec![24.0]);
    }
}
