//! The Figure 4 workflow: gather → interpolate → split → candidate grid →
//! parallel evaluation → champion, for **every** model family.
//!
//! "Depending on whether the user chooses Holt-Winters Exponential
//! Smoothing (HES) … or SARIMAX, a different branch of the algorithm will
//! be followed. If SARIMAX is selected the algorithm then analyses the time
//! series data … and computes the ACF/PACF to determine which models are
//! probably a good fit … each model is then computed to obtain an RMSE.
//! The model with the best RMSE is the most accurate."
//!
//! Where the paper branches per family, this implementation unifies: the
//! method choice only decides which candidate configurations enter the
//! grid ([`ModelGrid::ets`], [`ModelGrid::tbats`], the pruned SARIMAX set,
//! or all of them for [`MethodChoice::Auto`]); evaluation, champion
//! selection, persistence and champion-seeded relearning are one
//! family-agnostic plane.

use crate::candidates::{CandidateSet, DataProfile};
use crate::engine::{split_exog_window, tbats_periods, AggregateStage, ScoreStage};
use crate::evaluate::{evaluate_candidates, EvalStats, EvaluationOptions, EvaluationReport};
use crate::grid::{CandidateModel, ModelConfig, ModelFamily, ModelGrid};
use crate::{PlannerError, Result};
use dwcp_models::Forecast;
use dwcp_series::interpolate::interpolate_series;
use dwcp_series::{Accuracy, Granularity, TimeSeries, TrainTestSplit};

pub(crate) use crate::engine::EvalPlan;

/// The user's model-family choice (Figure 8 lets the user "select between
/// SARIMAX or HES").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodChoice {
    /// Holt-Winters exponential smoothing family.
    Hes,
    /// The SARIMAX family (optionally with exogenous shocks and Fourier
    /// terms).
    Sarimax,
    /// TBATS (§4.3): Box-Cox, trend damping, trigonometric seasonality and
    /// ARMA errors over the paper's configuration lattice.
    Tbats,
    /// Race every family through one grid and keep the best held-out RMSE
    /// — the fully self-selecting mode of §5.
    Auto,
}

impl MethodChoice {
    /// Whether SARIMAX-family candidates participate in this method's grid.
    pub(crate) fn includes_sarimax(self) -> bool {
        matches!(self, MethodChoice::Sarimax | MethodChoice::Auto)
    }

    /// Whether exponential-smoothing candidates participate.
    pub(crate) fn includes_hes(self) -> bool {
        matches!(self, MethodChoice::Hes | MethodChoice::Auto)
    }

    /// Whether TBATS candidates participate.
    pub(crate) fn includes_tbats(self) -> bool {
        matches!(self, MethodChoice::Tbats | MethodChoice::Auto)
    }
}

/// How the SARIMAX-family candidate grid is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GridStrategy {
    /// The standard correlogram-pruned sweep ([`CandidateSet::sarimax`]).
    #[default]
    Full,
    /// Interpretable auto order selection ([`crate::auto_order`]):
    /// ADF/KPSS-chosen differencing plus PACF/ACF cut-offs seed a small
    /// neighbourhood grid. If the seeded champion cannot beat the naive
    /// benchmark forecast, the run falls back to the full strategy — the
    /// `--grid auto-order` CLI mode.
    AutoOrder,
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which families enter the candidate grid.
    pub method: MethodChoice,
    /// How the SARIMAX-family grid is built (ignored by the pure smoothing
    /// methods, which have no order grid to prune).
    pub grid: GridStrategy,
    /// Table 1 protocol row to apply.
    pub granularity: Granularity,
    /// Cap on SARIMAX candidates after correlogram pruning.
    pub max_candidates: usize,
    /// Whether to run the §6.3 Fourier-augmentation stage on the champion
    /// when the series is multi-seasonal (SARIMAX champions only — the
    /// smoothing families have no exogenous regressors to augment).
    pub fourier_stage: bool,
    /// Discover recurring shocks from the data itself when the caller
    /// supplies no exogenous columns (§5.1's shock analysis + §9's
    /// >3-occurrence rule), and feed them to SARIMAX as indicators.
    pub auto_detect_shocks: bool,
    /// Evaluation options (threads, fit budget).
    pub eval: EvaluationOptions,
}

impl PipelineConfig {
    /// Sensible defaults for hourly forecasting.
    pub fn hourly(method: MethodChoice) -> PipelineConfig {
        PipelineConfig {
            method,
            grid: GridStrategy::Full,
            granularity: Granularity::Hourly,
            max_candidates: 24,
            fourier_stage: true,
            auto_detect_shocks: false,
            eval: EvaluationOptions::default(),
        }
    }
}

/// The result of one pipeline run.
#[derive(Debug)]
pub struct ForecastOutcome {
    /// Human-readable champion descriptor, e.g.
    /// `SARIMAX FFT Exogenous (4,1,2)(1,1,1,24)`.
    pub champion: String,
    /// Family bucket of the champion.
    pub family: Option<ModelFamily>,
    /// Accuracy of the champion on the held-out test segment.
    pub accuracy: Accuracy,
    /// The champion's forecast over the test window (the paper's yellow
    /// region), aligned with the returned `test` series.
    pub test_forecast: Forecast,
    /// The held-out actuals the forecast is scored against.
    pub test: TimeSeries,
    /// The training series after interpolation.
    pub train: TimeSeries,
    /// How many candidate models were evaluated.
    pub evaluated: usize,
    /// How many candidate fits failed.
    pub failures: usize,
    /// How many gaps interpolation filled.
    pub gaps_filled: usize,
    /// The data profile the candidate grid was derived from.
    pub profile: Option<DataProfile>,
    /// The champion's machine-readable specification, for refitting.
    pub champion_spec: ChampionSpec,
    /// Evaluation instrumentation (cache hits, warm starts, objective
    /// evaluations, per-family timing).
    pub stats: EvalStats,
    /// The champion's converged unconstrained optimiser parameters — what
    /// the model repository stores as the warm seed for champion-seeded
    /// relearning, whichever family the champion belongs to.
    pub warm_seed: Vec<f64>,
    /// The champion's regression coefficients (empty for every family
    /// except regression SARIMAX) — stored with the warm seed so a
    /// regression champion can be re-scored verbatim.
    pub warm_beta: Vec<f64>,
}

/// The champion's configuration, sufficient to refit it on fresh data —
/// what the model repository stores alongside the descriptor. Since every
/// family is a [`ModelConfig`] variant, this is just that enum.
pub type ChampionSpec = ModelConfig;

/// The Figure 4 pipeline — since the staged-engine refactor, a thin
/// composition of [`AggregateStage`] and [`ScoreStage`]: the same stage
/// implementations the resident [`crate::engine::Engine`] runs under
/// `dwcp serve`, which is what guarantees batch and resident champions
/// are bit-identical on the same data.
#[derive(Debug, Clone)]
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// Create a pipeline.
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    /// Run the pipeline on a monitored series.
    ///
    /// `exog_full` are the exogenous indicator columns spanning the same
    /// observations as `series` (they are split alongside it); pass `&[]`
    /// when no shocks are known. Only SARIMAX candidates consume them.
    pub fn run(&self, series: &TimeSeries, exog_full: &[Vec<f64>]) -> Result<ForecastOutcome> {
        let plan = AggregateStage::prepare(&self.config, series, exog_full)?;
        ScoreStage::score(&self.config, plan)
    }

    /// Everything the pipeline does before any model is fitted:
    /// interpolation, optional shock discovery, the Table 1 split with
    /// aligned exogenous columns, profiling, and the candidate grid for
    /// the configured method. Delegates to [`AggregateStage::prepare`];
    /// kept as a method so the fleet scheduler can prepare every job up
    /// front and feed all grids through one shared worker pool.
    pub(crate) fn plan(&self, series: &TimeSeries, exog_full: &[Vec<f64>]) -> Result<EvalPlan> {
        AggregateStage::prepare(&self.config, series, exog_full)
    }

    /// The §6.3 Fourier stage's candidate list (see
    /// [`ScoreStage::fourier_candidates`]).
    pub(crate) fn fourier_candidates(
        &self,
        plan: &EvalPlan,
        report: &EvaluationReport,
    ) -> Vec<CandidateModel> {
        ScoreStage::fourier_candidates(&self.config, plan, report)
    }

    /// Assemble a [`ForecastOutcome`] from a finished evaluation (see
    /// [`ScoreStage::outcome_from_report`]).
    pub(crate) fn outcome_from_report(
        &self,
        plan: EvalPlan,
        report: EvaluationReport,
    ) -> Result<ForecastOutcome> {
        ScoreStage::outcome_from_report(plan, report)
    }

    /// Run the pipeline, then refit the champion on the **full** series
    /// and forecast `horizon` steps *beyond the data* — the production
    /// forecast the Figure 8 UI charts (the test-window forecast in
    /// [`ForecastOutcome`] is for scoring; this one is for planning).
    ///
    /// `future_exog` must cover the horizon with the same column universe
    /// the champion was selected against (pass `&[]` for HES/TBATS or
    /// no-shock SARIMAX; auto-detected shock columns are extended
    /// automatically).
    pub fn refit_and_forecast(
        &self,
        series: &TimeSeries,
        exog_full: &[Vec<f64>],
        future_exog: &[Vec<f64>],
        horizon: usize,
    ) -> Result<(ForecastOutcome, Forecast)> {
        use dwcp_models::{FittedEts, FittedSarimax, FittedTbats};
        let outcome = self.run(series, exog_full)?;
        let mut working = series.clone();
        if working.has_gaps() {
            interpolate_series(&mut working)?;
        }
        let future = match &outcome.champion_spec {
            ChampionSpec::Sarimax(config) => {
                let n = config.n_exog;
                // Auto-detected shocks: re-derive the columns over the full
                // window and extend them into the future.
                let (hist_cols, fut_cols): (Vec<Vec<f64>>, Vec<Vec<f64>>) = if let Some(hist) =
                    exog_full.get(..n)
                {
                    (
                        hist.to_vec(),
                        future_exog.get(..n).map(|c| c.to_vec()).ok_or_else(|| {
                            PlannerError::Model(dwcp_models::ModelError::ExogenousMismatch {
                                context: format!(
                                    "champion needs {n} future exogenous columns, got {}",
                                    future_exog.len()
                                ),
                            })
                        })?,
                    )
                } else {
                    let period = self.config.granularity.seasonal_period();
                    let mut detector = crate::shocks::ShockDetector::new(period);
                    let shocks = detector.detect(working.values())?;
                    let hist =
                        crate::shocks::ShockDetector::indicator_columns(&shocks, 0, working.len());
                    let fut = crate::shocks::ShockDetector::indicator_columns(
                        &shocks,
                        working.len(),
                        horizon,
                    );
                    let (Some(hist_n), Some(fut_n)) = (hist.get(..n), fut.get(..n)) else {
                        return Err(PlannerError::Model(
                            dwcp_models::ModelError::ExogenousMismatch {
                                context: format!(
                                    "champion needs {n} exogenous columns, re-detection produced {}",
                                    hist.len()
                                ),
                            },
                        ));
                    };
                    (hist_n.to_vec(), fut_n.to_vec())
                };
                let fit = FittedSarimax::fit(
                    working.values(),
                    config,
                    &hist_cols,
                    0,
                    &self.config.eval.fit,
                )?;
                fit.forecast(horizon, &fut_cols)?
            }
            ChampionSpec::Ets(config) => {
                FittedEts::fit(working.values(), *config)?.forecast(horizon)
            }
            ChampionSpec::Tbats(config) => {
                FittedTbats::fit(working.values(), config.clone())?.forecast(horizon)
            }
        };
        Ok((outcome, future))
    }

    /// Score every family over the same split and return the per-family
    /// best — the Table 2 rows. The families are ARIMA, SARIMAX,
    /// SARIMAX + Exogenous + Fourier, HES and TBATS.
    pub fn family_comparison(
        &self,
        series: &TimeSeries,
        exog_full: &[Vec<f64>],
        per_family_cap: usize,
    ) -> Result<EvaluationReport> {
        let mut working = series.clone();
        if working.has_gaps() {
            interpolate_series(&mut working)?;
        }
        let split = TrainTestSplit::from_series(&working, self.config.granularity)?;
        let window = self.config.granularity.observations();
        let offset = working.len() - window;
        let train_len = split.train.len();
        let (exog_train, exog_test) = split_exog_window(exog_full, offset, window, train_len)?;
        let train = split.train.values();
        let profile = DataProfile::analyze(train)?;
        let fallback = self.config.granularity.seasonal_period();

        let mut candidates: Vec<CandidateModel> = Vec::new();
        let arima = CandidateSet::arima(profile.clone(), per_family_cap);
        candidates.extend(arima.models);
        let sarimax = CandidateSet::sarimax(profile.clone(), fallback, 0, per_family_cap);
        candidates.extend(sarimax.models);
        let exo =
            CandidateSet::sarimax(profile.clone(), fallback, exog_train.len(), per_family_cap);
        // Exogenous family also carries Fourier variants of its first few
        // members so the FFT column of Table 2 is genuinely exercised.
        let periods = profile.fourier_periods(fallback);
        let mut exo_models = exo.models;
        let fourier_extra: Vec<CandidateModel> = exo_models
            .iter()
            .take(3)
            .flat_map(|m| {
                m.as_sarimax()
                    .map(|c| ModelGrid::fourier_variants(c, &periods))
                    .unwrap_or_default()
            })
            .collect();
        exo_models.extend(fourier_extra);
        candidates.extend(exo_models);

        // The smoothing families fill their own Table 2 rows.
        let interval_level = self.config.eval.fit.interval_level;
        let period = profile.primary_period(fallback);
        let positive = train.iter().all(|&v| v > 0.0);
        let mut ets_models = ModelGrid::ets(period, positive, interval_level).candidates;
        ets_models.truncate(per_family_cap);
        candidates.extend(ets_models);
        let mut tbats_models =
            ModelGrid::tbats(&tbats_periods(&profile, fallback), None, interval_level).candidates;
        tbats_models.truncate(per_family_cap);
        candidates.extend(tbats_models);
        // Canonicalise and drop structural duplicates before queueing —
        // per-family caps can pull the same degenerate shape from several
        // menus.
        crate::grid::dedupe_candidates(&mut candidates);

        let mut eval_opts = self.config.eval.clone();
        eval_opts.start_index = offset;
        evaluate_candidates(
            train,
            split.test.values(),
            &exog_train,
            &exog_test,
            &candidates,
            &eval_opts,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcp_series::Frequency;

    /// An hourly series with daily seasonality, trend and a 6-hourly shock:
    /// all four paper challenges in one trace, long enough for Table 1.
    fn synthetic_hourly(n: usize) -> (TimeSeries, Vec<Vec<f64>>) {
        let mut shock_cols = vec![vec![0.0; n]; 4];
        let values: Vec<f64> = (0..n)
            .map(|t| {
                let tf = t as f64;
                let mut v = 80.0
                    + 0.05 * tf
                    + 25.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                    + ((t * 2654435761 % 89) as f64) / 20.0;
                if t % 6 == 0 {
                    v += 40.0;
                    shock_cols[(t % 24) / 6][t] = 1.0;
                }
                v
            })
            .collect();
        (TimeSeries::new(values, Frequency::Hourly, 0), shock_cols)
    }

    fn fast_config(method: MethodChoice) -> PipelineConfig {
        PipelineConfig {
            method,
            grid: GridStrategy::Full,
            granularity: Granularity::Hourly,
            max_candidates: 4,
            fourier_stage: false,
            auto_detect_shocks: false,
            eval: EvaluationOptions {
                threads: 0,
                fit: dwcp_models::arima::ArimaOptions {
                    max_evals: 120,
                    restarts: 0,
                    interval_level: 0.95,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    #[test]
    fn hes_branch_produces_a_champion() {
        let (series, _) = synthetic_hourly(1100);
        let pipeline = Pipeline::new(fast_config(MethodChoice::Hes));
        let outcome = pipeline.run(&series, &[]).unwrap();
        assert!(!outcome.champion.is_empty());
        assert_eq!(outcome.family, Some(ModelFamily::Hes));
        assert_eq!(outcome.test.len(), 24);
        assert_eq!(outcome.test_forecast.len(), 24);
        assert!(outcome.accuracy.rmse.is_finite());
        // The HES champion now carries its converged smoothing parameters
        // for the repository's warm seed.
        assert!(!outcome.warm_seed.is_empty());
        // Holt-Winters should handily beat SES on seasonal data, so the
        // champion must be seasonal.
        assert!(
            outcome.champion.contains("Holt-Winters"),
            "champion = {}",
            outcome.champion
        );
    }

    #[test]
    fn sarimax_branch_produces_a_champion() {
        let (series, exog) = synthetic_hourly(1100);
        let pipeline = Pipeline::new(fast_config(MethodChoice::Sarimax));
        let outcome = pipeline.run(&series, &exog).unwrap();
        assert!(outcome.family.is_some());
        assert!(outcome.evaluated > 0);
        assert!(outcome.profile.is_some());
        let profile = outcome.profile.as_ref().unwrap();
        assert_eq!(profile.primary_period(0), 24);
        // Forecast must track the strong daily cycle: RMSE well below the
        // seasonal amplitude.
        assert!(
            outcome.accuracy.rmse < 25.0,
            "rmse = {}",
            outcome.accuracy.rmse
        );
    }

    #[test]
    fn gaps_are_interpolated_before_fitting() {
        let (mut series, _) = synthetic_hourly(1100);
        series.values_mut()[500] = f64::NAN;
        series.values_mut()[501] = f64::NAN;
        let pipeline = Pipeline::new(fast_config(MethodChoice::Hes));
        let outcome = pipeline.run(&series, &[]).unwrap();
        assert_eq!(outcome.gaps_filled, 2);
    }

    #[test]
    fn short_series_is_rejected_by_protocol() {
        let (series, _) = synthetic_hourly(500); // < 1008
        let pipeline = Pipeline::new(fast_config(MethodChoice::Hes));
        assert!(matches!(
            pipeline.run(&series, &[]),
            Err(PlannerError::Series(
                dwcp_series::SeriesError::TooShort { .. }
            ))
        ));
    }

    #[test]
    fn family_comparison_ranks_five_families() {
        let (series, exog) = synthetic_hourly(1100);
        let pipeline = Pipeline::new(fast_config(MethodChoice::Sarimax));
        let report = pipeline.family_comparison(&series, &exog, 3).unwrap();
        assert!(report.best_of_family(ModelFamily::Arima).is_some());
        assert!(report.best_of_family(ModelFamily::Sarimax).is_some());
        assert!(report
            .best_of_family(ModelFamily::SarimaxFftExogenous)
            .is_some());
        // The smoothing families report their own Table 2 rows too.
        assert!(report.best_of_family(ModelFamily::Hes).is_some());
        assert!(report.best_of_family(ModelFamily::Tbats).is_some());
        // On seasonal data with explicit shocks, seasonal/exogenous models
        // should not lose to plain ARIMA.
        let arima = report.best_of_family(ModelFamily::Arima).unwrap();
        let champion = report.champion().unwrap();
        assert!(champion.accuracy.rmse <= arima.accuracy.rmse);
    }

    #[test]
    fn auto_detected_shocks_feed_the_sarimax_branch() {
        let (series, _) = synthetic_hourly(1100);
        let mut config = fast_config(MethodChoice::Sarimax);
        config.auto_detect_shocks = true;
        let with_detection = Pipeline::new(config).run(&series, &[]).unwrap();
        let without = Pipeline::new(fast_config(MethodChoice::Sarimax))
            .run(&series, &[])
            .unwrap();
        // The 6-hourly +40 spikes are detectable; the detected-exogenous
        // run must not be worse than the blind run.
        assert!(
            with_detection.accuracy.rmse <= without.accuracy.rmse * 1.1,
            "detected {} vs blind {}",
            with_detection.accuracy.rmse,
            without.accuracy.rmse
        );
        assert!(
            with_detection.champion.contains("Exogenous"),
            "champion should carry detected shocks: {}",
            with_detection.champion
        );
    }

    #[test]
    fn tbats_branch_produces_a_champion() {
        let (series, _) = synthetic_hourly(1100);
        let pipeline = Pipeline::new(fast_config(MethodChoice::Tbats));
        let outcome = pipeline.run(&series, &[]).unwrap();
        assert!(
            outcome.champion.starts_with("TBATS"),
            "{}",
            outcome.champion
        );
        assert_eq!(outcome.family, Some(ModelFamily::Tbats));
        assert_eq!(outcome.test_forecast.len(), 24);
        assert!(!outcome.warm_seed.is_empty());
        // TBATS must capture the dominant daily cycle: RMSE below the
        // seasonal amplitude.
        assert!(
            outcome.accuracy.rmse < 30.0,
            "rmse = {}",
            outcome.accuracy.rmse
        );
    }

    #[test]
    fn auto_method_races_every_family() {
        let (series, _) = synthetic_hourly(1100);
        let pipeline = Pipeline::new(fast_config(MethodChoice::Auto));
        let outcome = pipeline.run(&series, &[]).unwrap();
        let family = outcome.family.expect("auto run has a champion family");
        // The union grid was actually raced: per-family stats show at
        // least one smoothing candidate and one SARIMAX candidate fitted.
        let stats = &outcome.stats;
        assert!(stats.families[ModelFamily::Hes.index()].fits > 0);
        assert!(stats.families[ModelFamily::Tbats.index()].fits > 0);
        assert!(
            stats.families[ModelFamily::Sarimax.index()].fits > 0
                || stats.families[ModelFamily::Arima.index()].fits > 0
        );
        // Whatever won, the champion must at least match every family's
        // dedicated branch on the same data (same split, superset grid).
        let hes = Pipeline::new(fast_config(MethodChoice::Hes))
            .run(&series, &[])
            .unwrap();
        assert!(
            outcome.accuracy.rmse <= hes.accuracy.rmse * (1.0 + 1e-9),
            "auto ({family:?}) {} vs hes {}",
            outcome.accuracy.rmse,
            hes.accuracy.rmse
        );
    }

    #[test]
    fn prepared_union_grid_is_deduped() {
        // The aggregate stage must canonicalise the union grid and drop
        // structural duplicates before the candidates reach the work
        // queue: re-deduping the prepared grid is a no-op, and no two
        // prepared candidates share a `(family, canonical config)` key.
        let (series, _) = synthetic_hourly(1100);
        let config = fast_config(MethodChoice::Auto);
        let plan = crate::engine::AggregateStage::prepare(&config, &series, &[]).unwrap();
        let prepared = plan.set.models.clone();
        assert!(!prepared.is_empty());
        let mut again = prepared.clone();
        crate::grid::dedupe_candidates(&mut again);
        assert_eq!(again.len(), prepared.len());
        let keys: Vec<_> = prepared
            .iter()
            .map(|c| (c.family, c.config.canonical()))
            .collect();
        for (i, key) in keys.iter().enumerate() {
            assert!(
                !keys[..i].contains(key),
                "duplicate candidate survived prepare: {:?}",
                key
            );
        }
    }

    #[test]
    fn auto_order_grid_produces_a_champion() {
        let (series, _) = synthetic_hourly(1100);
        let mut config = fast_config(MethodChoice::Sarimax);
        config.grid = GridStrategy::AutoOrder;
        let auto = Pipeline::new(config).run(&series, &[]).unwrap();
        assert!(auto.family.is_some());
        assert!(auto.accuracy.rmse.is_finite());
        // Whether or not the naive-benchmark fallback fired, the run must
        // track the strong daily cycle about as well as the full strategy.
        let full = Pipeline::new(fast_config(MethodChoice::Sarimax))
            .run(&series, &[])
            .unwrap();
        assert!(
            auto.accuracy.rmse <= full.accuracy.rmse * 2.0,
            "auto {} vs full {}",
            auto.accuracy.rmse,
            full.accuracy.rmse
        );
    }

    #[test]
    fn fourier_stage_extends_the_evaluation() {
        let (series, exog) = synthetic_hourly(1100);
        let mut config = fast_config(MethodChoice::Sarimax);
        config.fourier_stage = true;
        let pipeline = Pipeline::new(config);
        let outcome = pipeline.run(&series, &exog).unwrap();
        assert!(outcome.evaluated >= 4);
    }
}
