//! Parallel candidate evaluation and RMSE champion selection.
//!
//! §6.3: "We measure the accuracy of every model against the RMSE and then
//! choose the top model from each of the three methods." §9: "Gains are
//! also achieved by parallel processing the models." Candidates are fitted
//! on the training segment, forecast over the held-out test segment, and
//! scored with the full accuracy report; fit failures are recorded rather
//! than fatal (a 660-model grid always contains infeasible corners).

use crate::grid::{CandidateModel, ModelFamily};
use crate::{PlannerError, Result};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::{FittedSarimax, Forecast};
use dwcp_series::Accuracy;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Options for a grid evaluation.
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct EvaluationOptions {
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Per-model fit options.
    pub fit: ArimaOptions,
    /// Absolute time index of the first training observation.
    pub start_index: usize,
}


/// The score sheet of one evaluated candidate.
#[derive(Debug, Clone)]
pub struct ModelScore {
    /// The candidate that was evaluated.
    pub candidate: CandidateModel,
    /// Accuracy on the held-out test segment.
    pub accuracy: Accuracy,
    /// AIC of the fit (regression parameters included).
    pub aic: f64,
    /// The test-segment forecast that was scored.
    pub forecast: Forecast,
}

/// The outcome of evaluating a candidate set.
#[derive(Debug)]
pub struct EvaluationReport {
    /// Successfully scored candidates, best RMSE first.
    pub scores: Vec<ModelScore>,
    /// Number of candidates whose fit failed.
    pub failures: usize,
    /// Total candidates attempted.
    pub attempted: usize,
}

impl EvaluationReport {
    /// The champion (best test RMSE).
    pub fn champion(&self) -> Option<&ModelScore> {
        self.scores.first()
    }

    /// Best score within one family (for the Table 2 per-family rows).
    pub fn best_of_family(&self, family: ModelFamily) -> Option<&ModelScore> {
        self.scores.iter().find(|s| s.candidate.family == family)
    }
}

/// Evaluate `candidates` on a train/test split, in parallel.
///
/// * `train` / `test` — the split series values.
/// * `exog_train` — exogenous columns over the training segment; sliced per
///   candidate to `config.n_exog` columns (all candidates share the same
///   column universe).
/// * `exog_test` — the same columns over the test segment.
pub fn evaluate_candidates(
    train: &[f64],
    test: &[f64],
    exog_train: &[Vec<f64>],
    exog_test: &[Vec<f64>],
    candidates: &[CandidateModel],
    opts: &EvaluationOptions,
) -> Result<EvaluationReport> {
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        opts.threads
    };
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<ModelScore>> = Mutex::new(Vec::with_capacity(candidates.len()));
    let failures = AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(candidates.len()).max(1) {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                match score_one(
                    train,
                    test,
                    exog_train,
                    exog_test,
                    &candidates[i],
                    opts,
                ) {
                    Some(score) => results.lock().push(score),
                    None => {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    })
    .expect("evaluation worker panicked");

    let mut scores = results.into_inner();
    scores.sort_by(|a, b| {
        a.accuracy
            .rmse
            .partial_cmp(&b.accuracy.rmse)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let failures = failures.into_inner();
    if scores.is_empty() {
        return Err(PlannerError::NoViableModel {
            attempted: candidates.len(),
        });
    }
    Ok(EvaluationReport {
        scores,
        failures,
        attempted: candidates.len(),
    })
}

/// Fit and score a single candidate; `None` on any failure.
fn score_one(
    train: &[f64],
    test: &[f64],
    exog_train: &[Vec<f64>],
    exog_test: &[Vec<f64>],
    candidate: &CandidateModel,
    opts: &EvaluationOptions,
) -> Option<ModelScore> {
    let n_exog = candidate.config.n_exog;
    if exog_train.len() < n_exog || exog_test.len() < n_exog {
        return None;
    }
    let fit = FittedSarimax::fit(
        train,
        candidate.config.clone(),
        &exog_train[..n_exog],
        opts.start_index,
        &opts.fit,
    )
    .ok()?;
    let future_exog: Vec<Vec<f64>> = exog_test[..n_exog].to_vec();
    let forecast = fit.forecast(test.len(), &future_exog).ok()?;
    let accuracy = Accuracy::compute(test, &forecast.mean).ok()?;
    if !accuracy.rmse.is_finite() {
        return None;
    }
    Some(ModelScore {
        candidate: candidate.clone(),
        accuracy,
        aic: fit.aic(),
        forecast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ModelGrid;
    use dwcp_models::{ArimaSpec, SarimaxConfig};

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tf = t as f64;
                100.0
                    + 20.0 * (2.0 * std::f64::consts::PI * tf / 12.0).sin()
                    + ((t * 2654435761 % 97) as f64) / 30.0
            })
            .collect()
    }

    fn small_candidates() -> Vec<CandidateModel> {
        vec![
            CandidateModel {
                family: ModelFamily::Arima,
                config: SarimaxConfig::plain(ArimaSpec::arima(1, 0, 0)),
            },
            CandidateModel {
                family: ModelFamily::Arima,
                config: SarimaxConfig::plain(ArimaSpec::arima(2, 1, 1)),
            },
            CandidateModel {
                family: ModelFamily::Sarimax,
                config: SarimaxConfig::plain(ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 12)),
            },
        ]
    }

    #[test]
    fn champion_is_lowest_rmse() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let report =
            evaluate_candidates(train, test, &[], &[], &small_candidates(), &Default::default())
                .unwrap();
        for w in report.scores.windows(2) {
            assert!(w[0].accuracy.rmse <= w[1].accuracy.rmse);
        }
        // The seasonal model should beat the non-seasonal ones on strongly
        // seasonal data.
        assert_eq!(
            report.champion().unwrap().candidate.family,
            ModelFamily::Sarimax
        );
    }

    #[test]
    fn best_of_family_respects_bucket() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let report =
            evaluate_candidates(train, test, &[], &[], &small_candidates(), &Default::default())
                .unwrap();
        let best_arima = report.best_of_family(ModelFamily::Arima).unwrap();
        assert_eq!(best_arima.candidate.family, ModelFamily::Arima);
        let best_sarimax = report.best_of_family(ModelFamily::Sarimax).unwrap();
        assert!(best_sarimax.accuracy.rmse <= best_arima.accuracy.rmse);
    }

    #[test]
    fn infeasible_candidates_count_as_failures() {
        let y = seasonal_series(60); // too short for big seasonal models
        let (train, test) = y.split_at(48);
        let mut candidates = small_candidates();
        candidates.push(CandidateModel {
            family: ModelFamily::Sarimax,
            config: SarimaxConfig::plain(ArimaSpec::sarima(20, 1, 2, 1, 1, 1, 24)),
        });
        let report =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        assert!(report.failures >= 1);
        assert_eq!(report.attempted, 4);
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let y = seasonal_series(30);
        let (train, test) = y.split_at(24);
        let candidates = vec![CandidateModel {
            family: ModelFamily::Sarimax,
            config: SarimaxConfig::plain(ArimaSpec::sarima(20, 1, 2, 1, 1, 1, 24)),
        }];
        assert!(matches!(
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()),
            Err(PlannerError::NoViableModel { attempted: 1 })
        ));
    }

    #[test]
    fn single_thread_matches_parallel_champion() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let opts1 = EvaluationOptions {
            threads: 1,
            ..Default::default()
        };
        let opts4 = EvaluationOptions {
            threads: 4,
            ..Default::default()
        };
        let r1 =
            evaluate_candidates(train, test, &[], &[], &small_candidates(), &opts1).unwrap();
        let r4 =
            evaluate_candidates(train, test, &[], &[], &small_candidates(), &opts4).unwrap();
        assert_eq!(
            r1.champion().unwrap().candidate.config.spec,
            r4.champion().unwrap().candidate.config.spec
        );
        assert!(
            (r1.champion().unwrap().accuracy.rmse - r4.champion().unwrap().accuracy.rmse).abs()
                < 1e-9
        );
    }

    #[test]
    fn exogenous_candidates_receive_their_columns() {
        let n = 240;
        let shock: Vec<f64> = (0..n).map(|t| if t % 12 == 0 { 1.0 } else { 0.0 }).collect();
        let y: Vec<f64> = (0..n)
            .map(|t| 10.0 + 40.0 * shock[t] + ((t * 31 % 17) as f64) / 10.0)
            .collect();
        let (train, test) = y.split_at(216);
        let (shock_train, shock_test) = shock.split_at(216);
        let candidates = vec![CandidateModel {
            family: ModelFamily::SarimaxFftExogenous,
            config: SarimaxConfig {
                spec: ArimaSpec::arima(1, 0, 0),
                fourier: Default::default(),
                n_exog: 1,
            },
        }];
        let report = evaluate_candidates(
            train,
            test,
            &[shock_train.to_vec()],
            &[shock_test.to_vec()],
            &candidates,
            &Default::default(),
        )
        .unwrap();
        // With the shock explained exogenously the forecast error is small
        // relative to the shock magnitude.
        assert!(report.champion().unwrap().accuracy.rmse < 5.0);
    }

    #[test]
    fn grid_prune_plus_evaluate_smoke() {
        let y = seasonal_series(300);
        let (train, test) = y.split_at(276);
        let corr = dwcp_series::Correlogram::compute(train, 30).unwrap();
        let grid = ModelGrid::arima().prune(&corr, 8);
        let report =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &Default::default())
                .unwrap();
        assert!(!report.scores.is_empty());
    }
}
