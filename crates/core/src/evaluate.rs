//! Parallel candidate evaluation and RMSE champion selection.
//!
//! §6.3: "We measure the accuracy of every model against the RMSE and then
//! choose the top model from each of the three methods." §9: "Gains are
//! also achieved by parallel processing the models." Candidates are fitted
//! on the training segment, forecast over the held-out test segment, and
//! scored with the full accuracy report; fit failures are recorded rather
//! than fatal (a 660-model grid always contains infeasible corners).
//!
//! The engine is family-agnostic: a [`CandidateModel`] may carry an
//! ARIMA-family, ETS (HES) or TBATS configuration, and every candidate
//! flows through the same work queue, per-family stats, deterministic
//! `(rmse, index)` tie-break and champion-seeded freeze logic. Scoring is
//! routed through the [`Forecaster`] trait, so downstream of the fit no
//! code knows which family won.
//!
//! # The acceleration layer
//!
//! Three observations make the naive fit-every-candidate loop wasteful:
//!
//! 1. **Differencing depends only on `(d, D, s)`**, not on the ARMA orders,
//!    so a 180-model ARIMA grid recomputes the same two differenced series
//!    90 times each. The *transform cache* applies each distinct
//!    [`Differencer`](dwcp_series::diff::Differencer) signature once and
//!    shares the result across workers via
//!    [`FittedSarimax::fit_plain_prepared`] (bit-identical to the direct
//!    fit).
//! 2. **Adjacent specs have adjacent optima.** The converged parameters of
//!    ARIMA(p,d,q) are an excellent start for ARIMA(p+1,d,q), and the
//!    converged smoothing parameters of one ETS or TBATS configuration
//!    seed its structural neighbours. Candidates sharing a chain key
//!    (differencing signature + regression design for the ARIMA family;
//!    family-wide for ETS; the Box-Cox half for TBATS) are ordered into
//!    *warm-start chains* executed sequentially by one worker, each fit
//!    seeded from its predecessor. The optimiser races the warm start
//!    against the cold start, so quality never regresses; chains have a
//!    fixed maximum length independent of the thread count, so results
//!    are identical at any parallelism.
//! 3. **Most candidates lose.** With [`EvaluationOptions::racing`] enabled,
//!    workers publish the incumbent best RMSE in an atomic and ARIMA-family
//!    fits whose partial CSS objective cannot plausibly beat it are
//!    abandoned early — recorded as `abandoned`, not failed. This is an
//!    opt-in approximation: the CSS-vs-RMSE bound is heuristic, so exact
//!    mode (the default) never races.
//!
//! Results are collected lock-free: each worker fills a private buffer,
//! buffers are merged after the scope, and the final sort breaks RMSE ties
//! by candidate index so the champion is deterministic even under exact
//! ties.

use crate::grid::{CandidateModel, ModelConfig, ModelFamily};
use crate::{PlannerError, Result};
use dwcp_math::kernels;
use dwcp_models::arima::{adapt_unconstrained, ArimaFitSession, ArimaOptions};
use dwcp_models::{
    adapt_ets_unconstrained, adapt_tbats_unconstrained, EtsFitOptions, EtsFitSession,
    TbatsFitOptions, TbatsFitSession,
};
use dwcp_models::{tbats_rotation_tables, RotationTables, SeasonalKind, TbatsConfig};
use dwcp_models::{ArimaSpec, FittedArima, FittedEts, FittedSarimax, FittedTbats};
use dwcp_models::{Forecast, Forecaster, ModelError};
use dwcp_series::diff::Differenced;
use dwcp_series::Accuracy;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum warm-start chain length. Fixed (never derived from the thread
/// count) so the set of fits — and therefore the champion — is identical at
/// any parallelism; small enough that a 16-worker pool stays busy on a
/// 180-candidate grid.
const MAX_CHAIN_LEN: usize = 12;

/// Options for a grid evaluation.
#[derive(Debug, Clone)]
pub struct EvaluationOptions {
    /// Worker threads; 0 = one per available core.
    pub threads: usize,
    /// Per-model fit options for the ARIMA family (ETS and TBATS fits set
    /// their own optimiser budgets; they honour the warm-start and freeze
    /// flags the engine threads through).
    pub fit: ArimaOptions,
    /// Absolute time index of the first training observation.
    pub start_index: usize,
    /// Share one differenced training series per `(d, D, s)` signature
    /// across all plain candidates (on by default; off re-differences per
    /// candidate, for ablation and benchmarking).
    pub cache_transforms: bool,
    /// Seed each fit from the converged parameters of its chain
    /// predecessor (on by default; off cold-starts every candidate). When
    /// the warm start beats the cold start, the optimiser runs a tight
    /// local refinement on a fraction of the global-search budget instead
    /// of a full-width search — this is where most of the layer's speedup
    /// comes from. Fitted parameters can therefore differ from a cold fit
    /// in the trailing digits; champion *selection* is unchanged on every
    /// grid we test (and asserted by `bench_grid`).
    pub warm_start: bool,
    /// Champion-bound racing: abandon ARIMA-family candidates whose
    /// partial CSS objective cannot beat the incumbent best RMSE (scaled by
    /// [`racing_slack`](EvaluationOptions::racing_slack)). **Opt-in**: the
    /// bound is heuristic, so the default (exact) mode leaves this off and
    /// always selects the same champion as the sequential search.
    pub racing: bool,
    /// Safety factor for the racing bound: a fit is abandoned only while
    /// its CSS exceeds `(racing_slack × incumbent RMSE)²`. Larger is more
    /// conservative. Ignored unless `racing` is set.
    pub racing_slack: f64,
}

impl Default for EvaluationOptions {
    fn default() -> Self {
        EvaluationOptions {
            threads: 0,
            fit: ArimaOptions::default(),
            start_index: 0,
            cache_transforms: true,
            warm_start: true,
            racing: false,
            racing_slack: 2.0,
        }
    }
}

/// The score sheet of one evaluated candidate.
#[derive(Debug, Clone)]
pub struct ModelScore {
    /// The candidate that was evaluated.
    pub candidate: CandidateModel,
    /// Index of the candidate in the evaluated slice; the deterministic
    /// tie-break for equal RMSEs.
    pub candidate_index: usize,
    /// Accuracy on the held-out test segment.
    pub accuracy: Accuracy,
    /// AIC of the fit (regression parameters included).
    pub aic: f64,
    /// The test-segment forecast that was scored.
    pub forecast: Forecast,
    /// The fit's converged unconstrained optimiser parameters — the warm
    /// seed the model repository stores so the next relearn of this series
    /// can start from the champion instead of from cold. For the ARIMA
    /// family these are the SARIMA parameters; for ETS/TBATS the smoothing
    /// (and ARMA-error) parameters.
    pub warm_params: Vec<f64>,
    /// The fit's regression coefficients (`[intercept, exog…, fourier…]`,
    /// empty for plain and non-ARIMA models), stored alongside
    /// [`ModelScore::warm_params`] so a regression champion can be
    /// re-scored verbatim on the next relearn.
    pub warm_beta: Vec<f64>,
}

/// Per-family instrumentation from one evaluation run.
#[derive(Debug, Clone, Default)]
pub struct FamilyStats {
    /// Fit attempts (scored + failed + abandoned).
    pub attempts: usize,
    /// Successfully scored fits.
    pub fits: usize,
    /// Failed fits.
    pub failures: usize,
    /// Racing-abandoned fits.
    pub abandoned: usize,
    /// Wall-clock time spent fitting and scoring this family, summed over
    /// workers (can exceed the run's wall time under parallelism).
    pub fit_time: Duration,
    /// Objective (CSS/SSE) evaluations spent on this family.
    pub objective_evals: usize,
}

/// Where lockstep (batched-kernel) evaluation time goes, summed over
/// workers. All-zero when no batched units ran (racing mode, cache off,
/// non-ARIMA grids).
#[derive(Debug, Clone, Default)]
pub struct LockstepStats {
    /// Batched kernel rounds executed.
    pub rounds: usize,
    /// Objective evaluations served by batched kernel passes.
    pub batched_evals: usize,
    /// Time in cursor advancement: optimiser bookkeeping, session
    /// open/settle, forecasting and scoring completed fits.
    pub advance: Duration,
    /// Time staging pending points (unconstrained → constrained transform
    /// + polynomial expansion).
    pub stage: Duration,
    /// Time inside [`kernels::css_batch`] passes.
    pub batch_css: Duration,
    /// Time inside [`kernels::ets_batch`] passes (lane assembly included).
    pub batch_ets: Duration,
    /// Time inside [`kernels::tbats_filter::run_batch`] passes (lane
    /// assembly included).
    pub batch_tbats: Duration,
    /// Time feeding objective values back into the optimisers.
    pub tell: Duration,
}

impl LockstepStats {
    fn merge(&mut self, other: &LockstepStats) {
        self.rounds += other.rounds;
        self.batched_evals += other.batched_evals;
        self.advance += other.advance;
        self.stage += other.stage;
        self.batch_css += other.batch_css;
        self.batch_ets += other.batch_ets;
        self.batch_tbats += other.batch_tbats;
        self.tell += other.tell;
    }
}

/// Instrumentation for a whole evaluation run.
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Wall-clock duration of the evaluation (scheduling + all workers).
    pub wall_time: Duration,
    /// Distinct differencing signatures materialised by the transform
    /// cache (0 when the cache is disabled).
    pub cache_entries: usize,
    /// Fits served from the transform cache.
    pub cache_hits: usize,
    /// Fits that received a warm start from their chain predecessor.
    pub warm_starts: usize,
    /// Total objective evaluations across all fits, including abandoned
    /// ones.
    pub objective_evals: usize,
    /// Per-family breakdown, indexed by position in [`ModelFamily::ALL`].
    pub families: [FamilyStats; ModelFamily::COUNT],
    /// Fleet jobs whose stored champion seeded a pruned neighbourhood
    /// relearn (always 0 for single-grid runs).
    pub reuse_hits: usize,
    /// Fleet jobs that had no usable stored champion and ran the full grid
    /// cold (always 0 for single-grid runs).
    pub reuse_misses: usize,
    /// Reused fleet jobs whose pruned champion degraded past the staleness
    /// threshold and fell back to the full grid.
    pub reuse_fallbacks: usize,
    /// Lockstep (batched-kernel) phase timing.
    pub lockstep: LockstepStats,
}

impl EvalStats {
    /// The stats bucket for one family.
    pub fn family(&self, family: ModelFamily) -> &FamilyStats {
        // lint: allow(indexing) — index() < ModelFamily::COUNT by construction
        &self.families[family.index()]
    }

    /// Fold another run's counters into this one. `wall_time` adds, which
    /// is the right semantics for sequential stages (primary grid then
    /// Fourier stage) and for fleet passes; the fleet scheduler overwrites
    /// the batch total with the true wall clock afterwards.
    pub fn merge(&mut self, other: &EvalStats) {
        self.wall_time += other.wall_time;
        self.cache_entries += other.cache_entries;
        self.cache_hits += other.cache_hits;
        self.warm_starts += other.warm_starts;
        self.objective_evals += other.objective_evals;
        for (total, part) in self.families.iter_mut().zip(&other.families) {
            total.attempts += part.attempts;
            total.fits += part.fits;
            total.failures += part.failures;
            total.abandoned += part.abandoned;
            total.fit_time += part.fit_time;
            total.objective_evals += part.objective_evals;
        }
        self.reuse_hits += other.reuse_hits;
        self.reuse_misses += other.reuse_misses;
        self.reuse_fallbacks += other.reuse_fallbacks;
        self.lockstep.merge(&other.lockstep);
    }

    /// Champion-reuse hit rate over the jobs where reuse was possible in
    /// principle; `None` when no such jobs ran (single-grid evaluations).
    pub fn reuse_rate(&self) -> Option<f64> {
        let eligible = self.reuse_hits + self.reuse_misses;
        (eligible > 0).then(|| self.reuse_hits as f64 / eligible as f64)
    }
}

/// The outcome of evaluating a candidate set.
#[derive(Debug)]
pub struct EvaluationReport {
    /// Successfully scored candidates, best RMSE first (ties broken by
    /// candidate index).
    pub scores: Vec<ModelScore>,
    /// Number of candidates whose fit failed.
    pub failures: usize,
    /// Number of candidates abandoned by champion-bound racing (always 0
    /// unless [`EvaluationOptions::racing`] was set).
    pub abandoned: usize,
    /// Total candidates attempted.
    pub attempted: usize,
    /// Timing, cache and optimiser instrumentation.
    pub stats: EvalStats,
}

impl EvaluationReport {
    /// The champion (best test RMSE).
    pub fn champion(&self) -> Option<&ModelScore> {
        self.scores.first()
    }

    /// Best score within one family (for the Table 2 per-family rows).
    pub fn best_of_family(&self, family: ModelFamily) -> Option<&ModelScore> {
        self.scores.iter().find(|s| s.candidate.family == family)
    }

    /// Merge a follow-up evaluation (e.g. the Fourier-variant stage) into
    /// this report. The other report's candidate indices are shifted past
    /// this report's `attempted` so the deterministic RMSE tie-break keeps
    /// preferring earlier (primary-grid) candidates, and the combined
    /// scores are re-sorted.
    pub fn absorb(&mut self, mut other: EvaluationReport) {
        let base = self.attempted;
        for mut score in other.scores.drain(..) {
            score.candidate_index += base;
            self.scores.push(score);
        }
        self.failures += other.failures;
        self.abandoned += other.abandoned;
        self.attempted += other.attempted;
        self.stats.merge(&other.stats);
        sort_scores(&mut self.scores);
    }
}

/// The deterministic score ordering: best RMSE first, exact ties broken by
/// candidate index (see [`crate::protocol::score_order`]).
fn sort_scores(scores: &mut [ModelScore]) {
    scores.sort_by(|a, b| {
        crate::protocol::score_order(
            a.accuracy.rmse,
            a.candidate_index,
            b.accuracy.rmse,
            b.candidate_index,
        )
    });
}

/// A differencing signature: `(d, D, effective period)`; the effective
/// period collapses to 1 when `D == 0`, matching what
/// [`FittedArima::differencer_for`] builds.
type DiffKey = (usize, usize, usize);

fn diff_key(spec: &ArimaSpec) -> DiffKey {
    let differencer = FittedArima::differencer_for(spec);
    (differencer.d, differencer.seasonal_d, differencer.period)
}

/// The grouping key for warm-start chains. Parameters only transfer within
/// a family, so each family contributes its own variants; `Sarimax` is the
/// **first** variant so that on all-SARIMAX grids the `BTreeMap` iteration
/// order — and with it the chain schedule and every floating-point result —
/// is identical to the engine before ETS/TBATS joined the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum ChainKey {
    /// ARIMA family: differencing signature + regression design
    /// (`n_exog`, Fourier column count).
    Sarimax(DiffKey, usize, usize),
    /// ETS: one chain per seasonality class (0 = none, 1 = additive,
    /// 2 = multiplicative) — the γ dimension appears and the state
    /// recursion changes shape across classes, so smoothing parameters
    /// transfer best within a class, and the batched recursion kernel
    /// gets lanes grouped by class for free.
    Ets(u8),
    /// TBATS: one chain per Box-Cox half — λ changes the objective's
    /// scale, so parameters don't transfer across the transform boundary.
    Tbats(bool),
}

fn chain_key(config: &ModelConfig) -> ChainKey {
    match config {
        ModelConfig::Sarimax(c) => {
            ChainKey::Sarimax(diff_key(&c.spec), c.n_exog, c.fourier.n_columns())
        }
        ModelConfig::Ets(c) => ChainKey::Ets(match c.seasonal {
            SeasonalKind::None => 0,
            SeasonalKind::Additive(_) => 1,
            SeasonalKind::Multiplicative(_) => 2,
        }),
        ModelConfig::Tbats(c) => ChainKey::Tbats(c.lambda.is_some()),
    }
}

/// One unit of work: candidate indices fitted sequentially by one worker,
/// each seeded from its predecessor's converged parameters.
struct Chain {
    indices: Vec<usize>,
}

/// Group candidates into warm-start chains.
///
/// Candidates chain together only when they share a [`ChainKey`] — within
/// such a group the fitted processes are close neighbours, so parameters
/// transfer. ARIMA-family groups are ordered so consecutive entries differ
/// in as few ARMA orders as possible (seasonal orders outermost, then `q`,
/// then `p`); ETS and TBATS groups keep their menu/lattice order (simplest
/// first). Groups are split at a fixed maximum length for load balance.
///
/// The grouping is a pure function of the candidate list, so the fit
/// schedule — and with it every floating-point result — is independent of
/// the thread count.
fn build_chains(candidates: &[CandidateModel]) -> Vec<Chain> {
    let mut groups: BTreeMap<ChainKey, Vec<usize>> = BTreeMap::new();
    for (i, c) in candidates.iter().enumerate() {
        groups.entry(chain_key(&c.config)).or_default().push(i);
    }
    let mut chains = Vec::new();
    for (_, mut indices) in groups {
        indices.sort_by_key(|&i| match candidates.get(i).map(|c| &c.config) {
            Some(ModelConfig::Sarimax(c)) => {
                let s = &c.spec;
                (s.seasonal_p, s.seasonal_q, s.q, s.p, i)
            }
            _ => (0, 0, 0, 0, i),
        });
        for chunk in indices.chunks(MAX_CHAIN_LEN) {
            chains.push(Chain {
                indices: chunk.to_vec(),
            });
        }
    }
    chains
}

/// One entry in the fleet work queue: a single chain run sequentially, or
/// a group of batchable chains — plain-ARIMA chains with cached
/// differenced series, ETS chains, TBATS chains — executed in lockstep
/// over the batched family kernels ([`kernels::css_batch`],
/// [`kernels::ets_batch`], [`kernels::tbats_filter::run_batch`]).
///
/// Batching is a wall-time optimisation only: every batched kernel is a
/// statement-for-statement transcription of its solo counterpart, and
/// every chain keeps its own warm-start thread, so a batched unit produces
/// bit-identical scores to running its chains through [`run_chain`] one by
/// one.
enum WorkUnit {
    /// Run `chains[i]` sequentially.
    Single(usize),
    /// Run this set of chain indices in lockstep; each chain scores
    /// against its own series (the batched kernels take per-candidate
    /// series, so one group spans every differencing signature and every
    /// family — the wider the group, the longer the lockstep stays at
    /// full batch width as chains drain unevenly).
    Batched(Vec<usize>),
}

/// Which batched kernel a chain's candidates go through. Chains within
/// one chain key are family-homogeneous by construction, so the first
/// candidate decides for the whole chain.
enum BatchKind {
    /// Plain ARIMA family: lockstep CSS over the cached differenced
    /// series for this signature.
    Css(DiffKey),
    /// ETS: lockstep state recursions over [`kernels::ets_batch`] lanes.
    Ets,
    /// TBATS: lockstep filter passes over
    /// [`kernels::tbats_filter::run_batch`] lanes with shared rotation
    /// tables.
    Tbats,
}

/// The batch kind a chain would lockstep under, if it can batch at all
/// (regression designs fit against per-candidate design matrices the
/// batched kernels don't model).
fn chain_batch_kind(task: &EvalTask, chain: &Chain) -> Option<BatchKind> {
    let candidate = chain
        .indices
        .first()
        .and_then(|&i| task.candidates.get(i))?;
    match &candidate.config {
        ModelConfig::Sarimax(config) if !config.has_regression() => {
            Some(BatchKind::Css(diff_key(&config.spec)))
        }
        ModelConfig::Sarimax(_) => None,
        ModelConfig::Ets(_) => Some(BatchKind::Ets),
        ModelConfig::Tbats(_) => Some(BatchKind::Tbats),
    }
}

/// Partition a task's chains into work units. A chain joins the batched
/// group only in exact mode (racing loads the shared incumbent mid-fit;
/// interleaving fits would reorder those loads) and only when its shared
/// per-task transforms are available: a plain ARIMA-family chain needs its
/// differenced series in the transform cache, and ETS/TBATS chains batch
/// whenever the cache layer is enabled at all (the same ablation flag
/// governs both); the group needs at least two chains to be worth a
/// lockstep pass.
fn build_units(
    task: &EvalTask,
    cache: &BTreeMap<DiffKey, Differenced>,
    chains: &[Chain],
) -> Vec<WorkUnit> {
    let mut units = Vec::new();
    let mut batchable: Vec<usize> = Vec::new();
    for (ci, chain) in chains.iter().enumerate() {
        let kind = chain_batch_kind(task, chain).filter(|kind| {
            !task.opts.racing
                && match kind {
                    BatchKind::Css(key) => cache.contains_key(key),
                    BatchKind::Ets | BatchKind::Tbats => task.opts.cache_transforms,
                }
        });
        match kind {
            Some(_) => batchable.push(ci),
            None => units.push(WorkUnit::Single(ci)),
        }
    }
    if batchable.len() > 1 {
        units.push(WorkUnit::Batched(batchable));
    } else {
        units.extend(batchable.into_iter().map(WorkUnit::Single));
    }
    units
}

/// Atomic minimum over non-negative f64s stored as bit patterns; delegates
/// to [`crate::protocol::publish_min_rmse`], the model-checked incumbent
/// protocol.
fn update_min_f64(cell: &AtomicU64, value: f64) {
    crate::protocol::publish_min_rmse(cell, value);
}

/// What one worker accumulated; merged after the scope ends.
#[derive(Default)]
struct WorkerOutput {
    scores: Vec<ModelScore>,
    failures: usize,
    abandoned: usize,
    cache_hits: usize,
    warm_starts: usize,
    objective_evals: usize,
    families: [FamilyStats; ModelFamily::COUNT],
    lockstep: LockstepStats,
}

impl WorkerOutput {
    /// The per-family stats bucket.
    fn family_mut(&mut self, family: ModelFamily) -> &mut FamilyStats {
        // lint: allow(indexing) — index() < ModelFamily::COUNT by construction
        &mut self.families[family.index()]
    }
}

/// Evaluate `candidates` on a train/test split, in parallel.
///
/// * `train` / `test` — the split series values.
/// * `exog_train` — exogenous columns over the training segment; sliced per
///   candidate to `config.n_exog` columns (all candidates share the same
///   column universe).
/// * `exog_test` — the same columns over the test segment.
///
/// In default (exact) mode the result — champion, scores, everything — is
/// identical for any `threads` setting, including under exact RMSE ties.
///
/// This is the single-grid façade over [`evaluate_fleet`]: one task, the
/// thread count taken from `opts.threads`.
pub fn evaluate_candidates(
    train: &[f64],
    test: &[f64],
    exog_train: &[Vec<f64>],
    exog_test: &[Vec<f64>],
    candidates: &[CandidateModel],
    opts: &EvaluationOptions,
) -> Result<EvaluationReport> {
    let task = EvalTask {
        train,
        test,
        exog_train,
        exog_test,
        candidates,
        opts: opts.clone(),
        seed: None,
    };
    evaluate_fleet(std::slice::from_ref(&task), opts.threads)
        .pop()
        .unwrap_or(Err(PlannerError::Internal {
            context: "evaluate_fleet returned no report for its single task",
        }))
}

/// One grid evaluation in a fleet batch: a train/test split, its exogenous
/// columns, the candidate list, and per-task options.
///
/// `opts.threads` is ignored here — the pool size is global to the batch
/// (the whole point of fleet scheduling is one concurrency cap, not one
/// pool per series).
pub struct EvalTask<'a> {
    /// Training segment values.
    pub train: &'a [f64],
    /// Held-out test segment values.
    pub test: &'a [f64],
    /// Exogenous columns over the training segment.
    pub exog_train: &'a [Vec<f64>],
    /// The same columns over the test segment.
    pub exog_test: &'a [Vec<f64>],
    /// Candidate models to fit and score.
    pub candidates: &'a [CandidateModel],
    /// Per-task evaluation options (`threads` ignored; see type docs).
    pub opts: EvaluationOptions,
    /// Optional champion seed: a previously converged
    /// `(config, params, beta)` triple, any family. It primes each
    /// same-family warm-start chain's predecessor state, and the candidate
    /// whose configuration equals the stored one is re-scored at the
    /// stored parameters verbatim (frozen) rather than re-optimised.
    /// `None` reproduces the unseeded behaviour exactly.
    pub seed: Option<(ModelConfig, Vec<f64>, Vec<f64>)>,
}

/// Per-task shared state prepared before the pool starts.
struct TaskState {
    cache: BTreeMap<DiffKey, Differenced>,
    /// Shared TBATS rotation tables, one per seasonal signature.
    rotations: BTreeMap<SeasonSig, Arc<RotationTables>>,
    chains: Vec<Chain>,
    units: Vec<WorkUnit>,
    /// Incumbent best RMSE for racing, as f64 bits (+inf = no incumbent).
    /// Per task: champions of different series must not race each other.
    best_rmse: AtomicU64,
}

/// Evaluate many grids on **one** shared worker pool.
///
/// All tasks' warm-start chains are flattened into a single work queue
/// (task order preserved) drained by `threads` workers — one global
/// concurrency cap, no pool-per-series spin-up. Every per-task guarantee
/// of [`evaluate_candidates`] carries over: the transform cache, chain
/// schedule and racing incumbent are all per-task, workers buffer results
/// per task, and each report is merged and sorted exactly as in the
/// single-grid path — so in exact mode each task's report is identical to
/// evaluating it alone, at any thread count.
///
/// Returns one result per task, in task order. A task with no viable
/// candidate yields `Err(NoViableModel)` without affecting its neighbours.
/// Per-report `wall_time` is the wall time of this whole pass (tasks share
/// the pool, so per-task wall clock is not separable).
pub fn evaluate_fleet(tasks: &[EvalTask], threads: usize) -> Vec<Result<EvaluationReport>> {
    let started = Instant::now();
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        threads
    };

    let states: Vec<TaskState> = tasks
        .iter()
        .map(|task| {
            let cache = build_transform_cache(task);
            let rotations = build_rotation_cache(task);
            let chains = build_chains(task.candidates);
            let units = build_units(task, &cache, &chains);
            TaskState {
                cache,
                rotations,
                chains,
                units,
                best_rmse: AtomicU64::new(f64::INFINITY.to_bits()),
            }
        })
        .collect();

    // The global work queue: every (task, unit) pair, in task order so
    // early tasks finish early and the tail of the batch stays parallel.
    let work: Vec<(usize, usize)> = states
        .iter()
        .enumerate()
        .flat_map(|(t, s)| (0..s.units.len()).map(move |u| (t, u)))
        .collect();
    let next_item = AtomicUsize::new(0);

    let n_workers = threads.min(work.len()).max(1);
    // Worker outputs are per task so the merge below is per task.
    let outputs: (Vec<Vec<WorkerOutput>>, bool) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n_workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out: Vec<WorkerOutput> =
                        (0..tasks.len()).map(|_| WorkerOutput::default()).collect();
                    loop {
                        let item = next_item.fetch_add(1, Ordering::Relaxed);
                        let Some(&(task_idx, unit_idx)) = work.get(item) else {
                            break;
                        };
                        // The work queue is built from `states` (same length
                        // as `tasks`), so these lookups only miss if that
                        // construction is broken — skip rather than panic.
                        let (Some(task), Some(state), Some(slot)) = (
                            tasks.get(task_idx),
                            states.get(task_idx),
                            out.get_mut(task_idx),
                        ) else {
                            continue;
                        };
                        match state.units.get(unit_idx) {
                            Some(WorkUnit::Single(chain_idx)) => {
                                let Some(chain) = state.chains.get(*chain_idx) else {
                                    continue;
                                };
                                run_chain(chain, task, &state.cache, &state.best_rmse, slot);
                            }
                            Some(WorkUnit::Batched(chain_ids)) => {
                                let mut chains: Vec<(&Chain, Option<&Differenced>)> = Vec::new();
                                for &ci in chain_ids {
                                    let Some(chain) = state.chains.get(ci) else {
                                        continue;
                                    };
                                    match chain_batch_kind(task, chain) {
                                        Some(BatchKind::Css(key)) => {
                                            match state.cache.get(&key) {
                                                Some(diffed) => chains.push((chain, Some(diffed))),
                                                // Unreachable by construction
                                                // (units only batch cached
                                                // keys); degrade to the
                                                // sequential path rather than
                                                // drop work.
                                                None => run_chain(
                                                    chain,
                                                    task,
                                                    &state.cache,
                                                    &state.best_rmse,
                                                    slot,
                                                ),
                                            }
                                        }
                                        Some(BatchKind::Ets | BatchKind::Tbats) => {
                                            chains.push((chain, None));
                                        }
                                        // Unreachable by construction; degrade
                                        // likewise.
                                        None => run_chain(
                                            chain,
                                            task,
                                            &state.cache,
                                            &state.best_rmse,
                                            slot,
                                        ),
                                    }
                                }
                                run_chain_group(
                                    &chains,
                                    task,
                                    &state.rotations,
                                    &state.best_rmse,
                                    slot,
                                );
                            }
                            None => continue,
                        }
                    }
                    out
                })
            })
            .collect();
        let mut outs = Vec::with_capacity(handles.len());
        let mut panicked = false;
        for handle in handles {
            match handle.join() {
                Ok(out) => outs.push(out),
                Err(_) => panicked = true,
            }
        }
        (outs, panicked)
    });
    let (mut outputs, worker_panicked) = outputs;
    if worker_panicked {
        // A worker died mid-batch; its partial scores are gone, so every
        // task's report would under-count. Fail all of them typed instead.
        return tasks
            .iter()
            .map(|_| {
                Err(PlannerError::Internal {
                    context: "an evaluation worker panicked mid-batch",
                })
            })
            .collect();
    }

    let wall_time = started.elapsed();
    let mut reports = Vec::with_capacity(tasks.len());
    for ((task_idx, task), state) in tasks.iter().enumerate().zip(&states) {
        let mut scores = Vec::with_capacity(task.candidates.len());
        let mut stats = EvalStats {
            cache_entries: state.cache.len(),
            ..Default::default()
        };
        let mut failures = 0;
        let mut abandoned = 0;
        for worker in outputs.iter_mut() {
            let Some(out) = worker.get_mut(task_idx) else {
                continue;
            };
            scores.append(&mut out.scores);
            failures += out.failures;
            abandoned += out.abandoned;
            stats.cache_hits += out.cache_hits;
            stats.warm_starts += out.warm_starts;
            stats.objective_evals += out.objective_evals;
            stats.lockstep.merge(&out.lockstep);
            for (total, part) in stats.families.iter_mut().zip(&out.families) {
                total.attempts += part.attempts;
                total.fits += part.fits;
                total.failures += part.failures;
                total.abandoned += part.abandoned;
                total.fit_time += part.fit_time;
                total.objective_evals += part.objective_evals;
            }
        }
        sort_scores(&mut scores);
        if scores.is_empty() {
            reports.push(Err(PlannerError::NoViableModel {
                attempted: task.candidates.len(),
            }));
            continue;
        }
        stats.wall_time = wall_time;
        reports.push(Ok(EvaluationReport {
            scores,
            failures,
            abandoned,
            attempted: task.candidates.len(),
            stats,
        }));
    }
    reports
}

/// Shared transform cache for one task: one differenced training series
/// per distinct plain-ARIMA-candidate differencing signature. Signatures
/// whose transform fails (series too short) are simply absent — those
/// candidates fall back to the direct fit path and fail there with the
/// right error. ETS/TBATS candidates never touch the cache: their state
/// recursions run on the raw series.
fn build_transform_cache(task: &EvalTask) -> BTreeMap<DiffKey, Differenced> {
    if !task.opts.cache_transforms {
        return BTreeMap::new();
    }
    let mut map = BTreeMap::new();
    for c in task.candidates {
        let Some(config) = c.as_sarimax() else {
            continue;
        };
        if config.has_regression() {
            continue;
        }
        let key = diff_key(&config.spec);
        if let std::collections::btree_map::Entry::Vacant(slot) = map.entry(key) {
            let differencer = FittedArima::differencer_for(&config.spec);
            if let Ok(diffed) = differencer.apply(task.train) {
                slot.insert(diffed);
            }
        }
    }
    map
}

/// A TBATS seasonal signature: one `(period bits, harmonics)` pair per
/// block. Keyed on the exact `f64` bit pattern — two configurations share
/// rotation tables only when their harmonic angles are identical.
type SeasonSig = Vec<(u64, usize)>;

fn season_sig(config: &TbatsConfig) -> SeasonSig {
    config
        .seasons
        .iter()
        .map(|s| (s.period.to_bits(), s.harmonics))
        .collect()
}

/// Shared TBATS rotation tables for one task: the per-harmonic `(cos, sin)`
/// rotation pairs depend only on the seasonal signature, so the whole
/// lattice — 27 candidates sharing a handful of signatures — reuses one
/// table set per signature instead of recomputing the trigonometry per
/// fit. Gated on the same flag as the transform cache (the ablation switch
/// turns off every shared-transform layer together).
fn build_rotation_cache(task: &EvalTask) -> BTreeMap<SeasonSig, Arc<RotationTables>> {
    if !task.opts.cache_transforms {
        return BTreeMap::new();
    }
    let mut map = BTreeMap::new();
    for c in task.candidates {
        let ModelConfig::Tbats(config) = &c.config else {
            continue;
        };
        if config.seasons.is_empty() {
            continue;
        }
        map.entry(season_sig(config))
            .or_insert_with(|| Arc::new(tbats_rotation_tables(config)));
    }
    map
}

/// Adapt a predecessor's converged parameters to the next candidate's
/// layout. Parameters only transfer within a family; a cross-family pair
/// (possible only through the champion seed, since chains are
/// family-homogeneous) yields `None` and the fit starts cold.
fn adapt_params(
    prev_config: &ModelConfig,
    prev_params: &[f64],
    next: &ModelConfig,
) -> Option<Vec<f64>> {
    match (prev_config, next) {
        (ModelConfig::Sarimax(p), ModelConfig::Sarimax(n)) => {
            adapt_unconstrained(prev_params, &p.spec, &n.spec)
        }
        (ModelConfig::Ets(p), ModelConfig::Ets(n)) => {
            Some(adapt_ets_unconstrained(prev_params, p, n))
        }
        (ModelConfig::Tbats(p), ModelConfig::Tbats(n)) => {
            Some(adapt_tbats_unconstrained(prev_params, p, n))
        }
        _ => None,
    }
}

/// Execute one warm-start chain sequentially, threading each successful
/// fit's converged parameters into the next candidate's options. When the
/// task carries a champion seed of the chain's family, it primes the
/// predecessor state so even the first fit of the chain starts warm.
fn run_chain(
    chain: &Chain,
    task: &EvalTask,
    cache: &BTreeMap<DiffKey, Differenced>,
    best_rmse: &AtomicU64,
    out: &mut WorkerOutput,
) {
    let (train, test) = (task.train, task.test);
    let (exog_train, exog_test) = (task.exog_train, task.exog_test);
    let opts = &task.opts;
    let mut prev: Option<(ModelConfig, Vec<f64>)> = task
        .seed
        .as_ref()
        .map(|(config, params, _)| (config.clone(), params.clone()));
    for &i in &chain.indices {
        // Chains are built from candidate indices, so a miss here means the
        // chain builder is broken — skip the entry rather than panic.
        let Some(candidate) = task.candidates.get(i) else {
            continue;
        };
        let fam = candidate.family;
        out.family_mut(fam).attempts += 1;

        let mut fit_opts = opts.fit.clone();
        if opts.warm_start {
            if let Some((prev_config, prev_params)) = &prev {
                if let Some(warm) = adapt_params(prev_config, prev_params, &candidate.config) {
                    fit_opts.warm_start = Some(warm);
                    out.warm_starts += 1;
                }
            }
        }
        // A candidate whose configuration IS the stored seed's is the
        // champion being reused: score the stored parameters (and, for
        // regression models, the stored coefficients) verbatim instead of
        // re-optimising, so reuse can never drift below the recorded
        // baseline on unchanged data.
        if let Some((seed_config, seed_params, seed_beta)) = &task.seed {
            if *seed_config == candidate.config
                && seed_params.len() == seed_config.n_optimiser_params()
            {
                fit_opts.warm_start = Some(seed_params.clone());
                fit_opts.freeze_warm_start = true;
                if let Some(config) = candidate.as_sarimax() {
                    if config.has_regression() && seed_beta.len() == config.n_regression_params() {
                        fit_opts.freeze_beta = Some(seed_beta.clone());
                    }
                }
            }
        }
        if opts.racing {
            let bound = f64::from_bits(best_rmse.load(Ordering::Relaxed));
            if bound.is_finite() {
                let slack = opts.racing_slack.max(1.0);
                fit_opts.abandon_css_above = Some((slack * bound).powi(2));
            }
        }

        let cached = candidate
            .as_sarimax()
            .filter(|config| !config.has_regression())
            .and_then(|config| cache.get(&diff_key(&config.spec)));
        if cached.is_some() {
            out.cache_hits += 1;
        }

        let fit_started = Instant::now();
        let outcome = score_one(
            train,
            test,
            exog_train,
            exog_test,
            candidate,
            i,
            opts.start_index,
            &fit_opts,
            cached,
        );
        out.family_mut(fam).fit_time += fit_started.elapsed();

        match outcome {
            Ok(scored) => {
                out.family_mut(fam).fits += 1;
                out.family_mut(fam).objective_evals += scored.nm_evals;
                out.objective_evals += scored.nm_evals;
                update_min_f64(best_rmse, scored.score.accuracy.rmse);
                prev = Some((candidate.config.clone(), scored.score.warm_params.clone()));
                out.scores.push(scored.score);
            }
            Err(ModelError::Abandoned { evals }) => {
                out.abandoned += 1;
                out.family_mut(fam).abandoned += 1;
                out.family_mut(fam).objective_evals += evals;
                out.objective_evals += evals;
            }
            Err(_) => {
                out.failures += 1;
                out.family_mut(fam).failures += 1;
            }
        }
    }
}

/// One open fit inside a batched lockstep group, any family. The wrapper
/// dispatches the shared pump/stage protocol; the family-specific staging
/// payloads (CSS polynomial expansions vs. recursion/filter lanes) are
/// pulled out by [`run_chain_group`]'s per-family kernel passes.
enum FitSession {
    Arima(Box<ArimaFitSession>),
    Ets(Box<EtsFitSession>),
    Tbats(Box<TbatsFitSession>),
}

impl FitSession {
    /// Whether the optimiser still needs an objective evaluation.
    fn is_pending(&self) -> bool {
        match self {
            FitSession::Arima(s) => s.is_pending(),
            FitSession::Ets(s) => s.is_pending(),
            FitSession::Tbats(s) => s.is_pending(),
        }
    }

    /// Unpack the pending optimiser point for a batched kernel pass.
    fn stage_pending(&mut self) -> bool {
        match self {
            FitSession::Arima(s) => s.stage_pending(),
            FitSession::Ets(s) => s.stage_pending(),
            FitSession::Tbats(s) => s.stage_pending(),
        }
    }
}

/// One chain's position inside a batched lockstep group: where it is in
/// its candidate list, the warm-start predecessor it threads forward, and
/// the fit session currently being optimised (if any).
struct GroupCursor<'c> {
    chain: &'c Chain,
    /// The cached differenced series for a plain-ARIMA chain; `None` for
    /// ETS/TBATS chains, whose recursions run on the raw series.
    diffed: Option<&'c Differenced>,
    /// Next unopened entry in `chain.indices`.
    pos: usize,
    /// The chain's warm-start predecessor `(config, converged params)`.
    prev: Option<(ModelConfig, Vec<f64>)>,
    /// The open fit: `(candidate index, session)`.
    active: Option<(usize, FitSession)>,
    /// Wall time attributed to the open candidate so far (its share of
    /// each batched kernel round plus its own open/settle work); flushed
    /// into the family's `fit_time` when the candidate completes.
    spent: Duration,
}

/// Execute a group of warm-start chains in lockstep: each round stages
/// every active chain's pending optimiser point and scores all of them in
/// (up to) one batched kernel pass per family — [`kernels::css_batch`] for
/// plain ARIMA candidates, [`kernels::ets_batch`] for ETS,
/// [`kernels::tbats_filter::run_batch`] for TBATS. Each session carries
/// its own series/state windows, and every batched kernel preserves each
/// candidate's exact per-element arithmetic, so every score is
/// bit-identical to the sequential [`run_chain`] path — batching changes
/// wall time, never results.
fn run_chain_group(
    chains: &[(&Chain, Option<&Differenced>)],
    task: &EvalTask,
    rotations: &BTreeMap<SeasonSig, Arc<RotationTables>>,
    best_rmse: &AtomicU64,
    out: &mut WorkerOutput,
) {
    let mut cursors: Vec<GroupCursor> = chains
        .iter()
        .map(|&(chain, diffed)| GroupCursor {
            chain,
            diffed,
            pos: 0,
            prev: task
                .seed
                .as_ref()
                .map(|(config, params, _)| (config.clone(), params.clone())),
            active: None,
            spent: Duration::ZERO,
        })
        .collect();
    let mut scratch = kernels::CssBatchScratch::default();
    let mut css_out: Vec<f64> = Vec::new();
    let mut staged: Vec<usize> = Vec::new();
    let mut css_ids: Vec<usize> = Vec::new();
    let mut ets_ids: Vec<usize> = Vec::new();
    let mut ets_sse: Vec<f64> = Vec::new();
    let mut tbats_ids: Vec<usize> = Vec::new();
    let mut tbats_sse: Vec<f64> = Vec::new();
    loop {
        // Phase A: bring every cursor to a pending optimiser point —
        // settle finished fits, open the next candidate, repeat (fits
        // decided without an optimiser run settle immediately).
        let advance_started = Instant::now();
        for cursor in cursors.iter_mut() {
            pump_group_cursor(cursor, task, rotations, best_rmse, out);
        }
        out.lockstep.advance += advance_started.elapsed();
        let round_started = Instant::now();
        staged.clear();
        for (ci, cursor) in cursors.iter_mut().enumerate() {
            if let Some((_, session)) = cursor.active.as_mut() {
                if session.stage_pending() {
                    staged.push(ci);
                }
            }
        }
        if staged.is_empty() {
            return;
        }
        let staged_at = Instant::now();
        out.lockstep.stage += staged_at - round_started;
        // Phase B: one batched kernel pass per family over all staged
        // points, each candidate against its session's own series. The
        // three passes live in separate borrow scopes: the CSS pass reads
        // staged slices, the lane passes take mutable state windows.
        css_ids.clear();
        {
            let mut cands: Vec<(&[f64], &[f64], &[f64])> = Vec::with_capacity(staged.len());
            for &ci in staged.iter() {
                if let Some((_, FitSession::Arima(session))) =
                    cursors.get(ci).and_then(|c| c.active.as_ref())
                {
                    cands.push((session.staged_phi(), session.staged_theta(), session.w()));
                    css_ids.push(ci);
                }
            }
            css_out.clear();
            if !cands.is_empty() {
                kernels::css_batch(&cands, &mut scratch, &mut css_out);
            }
        }
        let css_at = Instant::now();
        out.lockstep.batch_css += css_at - staged_at;
        ets_ids.clear();
        ets_sse.clear();
        {
            let mut lanes: Vec<kernels::holt_winters::EtsLane<'_>> = Vec::new();
            for (ci, cursor) in cursors.iter_mut().enumerate() {
                if !staged.contains(&ci) {
                    continue;
                }
                if let Some((_, FitSession::Ets(session))) = cursor.active.as_mut() {
                    if let Some(lane) = session.staged_lane() {
                        lanes.push(lane);
                        ets_ids.push(ci);
                    }
                }
            }
            if !lanes.is_empty() {
                kernels::ets_batch(&mut lanes);
                ets_sse.extend(
                    lanes
                        .iter()
                        .map(|l| l.result().sse.unwrap_or(f64::INFINITY)),
                );
            }
        }
        let ets_at = Instant::now();
        out.lockstep.batch_ets += ets_at - css_at;
        tbats_ids.clear();
        tbats_sse.clear();
        {
            let mut lanes: Vec<kernels::tbats_filter::TbatsLane<'_>> = Vec::new();
            for (ci, cursor) in cursors.iter_mut().enumerate() {
                if !staged.contains(&ci) {
                    continue;
                }
                if let Some((_, FitSession::Tbats(session))) = cursor.active.as_mut() {
                    if let Some(lane) = session.staged_lane() {
                        lanes.push(lane);
                        tbats_ids.push(ci);
                    }
                }
            }
            if !lanes.is_empty() {
                kernels::tbats_filter::run_batch(&mut lanes);
                tbats_sse.extend(lanes.iter().map(|l| l.result().unwrap_or(f64::INFINITY)));
            }
        }
        let batched_at = Instant::now();
        out.lockstep.batch_tbats += batched_at - ets_at;
        // Phase C: feed each objective value back to its optimiser.
        for (j, &ci) in css_ids.iter().enumerate() {
            let Some(&css) = css_out.get(j) else {
                continue;
            };
            if let Some((_, FitSession::Arima(session))) =
                cursors.get_mut(ci).and_then(|c| c.active.as_mut())
            {
                session.tell_css(css);
            }
        }
        for (j, &ci) in ets_ids.iter().enumerate() {
            let Some(&sse) = ets_sse.get(j) else {
                continue;
            };
            if let Some((_, FitSession::Ets(session))) =
                cursors.get_mut(ci).and_then(|c| c.active.as_mut())
            {
                session.tell_sse(sse);
            }
        }
        for (j, &ci) in tbats_ids.iter().enumerate() {
            let Some(&sse) = tbats_sse.get(j) else {
                continue;
            };
            if let Some((_, FitSession::Tbats(session))) =
                cursors.get_mut(ci).and_then(|c| c.active.as_mut())
            {
                session.tell_sse(sse);
            }
        }
        out.lockstep.tell += batched_at.elapsed();
        out.lockstep.rounds += 1;
        out.lockstep.batched_evals += staged.len();
        // The round served every staged candidate at once; attribute its
        // wall time in equal shares (timing only — results don't depend
        // on this split).
        let share = round_started.elapsed() / staged.len() as u32;
        for &ci in staged.iter() {
            if let Some(cursor) = cursors.get_mut(ci) {
                cursor.spent += share;
            }
        }
    }
}

/// Advance one lockstep cursor until it exposes a pending optimiser point
/// or exhausts its chain: settle a finished session, open the next
/// candidate, and loop (frozen champion re-scores and zero-parameter specs
/// are decided at open and settle in the same pass).
fn pump_group_cursor(
    cursor: &mut GroupCursor,
    task: &EvalTask,
    rotations: &BTreeMap<SeasonSig, Arc<RotationTables>>,
    best_rmse: &AtomicU64,
    out: &mut WorkerOutput,
) {
    loop {
        // The common round-to-round case — the open fit still has a point
        // pending — must not move the session struct (a take/put-back
        // memcpys it twice per cursor per round, which profiling showed
        // dominated the advance phase).
        if let Some((_, session)) = cursor.active.as_ref() {
            if session.is_pending() {
                return;
            }
        }
        if let Some((candidate_index, session)) = cursor.active.take() {
            let step_started = Instant::now();
            if let Some(prev) = settle_group_fit(candidate_index, session, task, best_rmse, out) {
                cursor.prev = Some(prev);
            }
            cursor.spent += step_started.elapsed();
            if let Some(candidate) = task.candidates.get(candidate_index) {
                out.family_mut(candidate.family).fit_time += cursor.spent;
            }
            cursor.spent = Duration::ZERO;
        }
        // Chains are built from candidate indices, so a miss here means the
        // chain builder is broken — skip the entry rather than panic.
        let Some(&i) = cursor.chain.indices.get(cursor.pos) else {
            return;
        };
        cursor.pos += 1;
        let Some(candidate) = task.candidates.get(i) else {
            continue;
        };
        let step_started = Instant::now();
        match open_group_fit(candidate, &cursor.prev, task, cursor.diffed, rotations, out) {
            Ok(session) => {
                cursor.spent += step_started.elapsed();
                cursor.active = Some((i, session));
            }
            Err(_) => {
                cursor.spent += step_started.elapsed();
                out.failures += 1;
                out.family_mut(candidate.family).failures += 1;
                out.family_mut(candidate.family).fit_time += cursor.spent;
                cursor.spent = Duration::ZERO;
            }
        }
    }
}

/// Open a fit session for one batched candidate, mirroring the sequential
/// path's per-candidate bookkeeping: the attempt count, the chain warm
/// start, the frozen champion re-score, and (for plain ARIMA candidates)
/// the cache hit. Batched groups run only in exact mode and never contain
/// regression designs, so the racing bound and `freeze_beta` never apply
/// here.
fn open_group_fit(
    candidate: &CandidateModel,
    prev: &Option<(ModelConfig, Vec<f64>)>,
    task: &EvalTask,
    diffed: Option<&Differenced>,
    rotations: &BTreeMap<SeasonSig, Arc<RotationTables>>,
    out: &mut WorkerOutput,
) -> std::result::Result<FitSession, ModelError> {
    let opts = &task.opts;
    out.family_mut(candidate.family).attempts += 1;
    let mut fit_opts = opts.fit.clone();
    if opts.warm_start {
        if let Some((prev_config, prev_params)) = prev {
            if let Some(warm) = adapt_params(prev_config, prev_params, &candidate.config) {
                fit_opts.warm_start = Some(warm);
                out.warm_starts += 1;
            }
        }
    }
    if let Some((seed_config, seed_params, _)) = &task.seed {
        if *seed_config == candidate.config && seed_params.len() == seed_config.n_optimiser_params()
        {
            fit_opts.warm_start = Some(seed_params.clone());
            fit_opts.freeze_warm_start = true;
        }
    }
    match &candidate.config {
        ModelConfig::Sarimax(config) => {
            if config.has_regression() {
                return Err(ModelError::FitFailed {
                    context: "batched chain group contains a regression candidate".to_string(),
                });
            }
            let Some(diffed) = diffed else {
                return Err(ModelError::FitFailed {
                    context: "batched ARIMA chain lost its cached transform".to_string(),
                });
            };
            out.cache_hits += 1;
            ArimaFitSession::new(task.train, config.spec, &fit_opts, diffed)
                .map(|session| FitSession::Arima(Box::new(session)))
        }
        ModelConfig::Ets(config) => {
            let ets_opts = EtsFitOptions {
                warm_start: fit_opts.warm_start,
                freeze_warm_start: fit_opts.freeze_warm_start,
            };
            EtsFitSession::new(task.train, *config, &ets_opts)
                .map(|session| FitSession::Ets(Box::new(session)))
        }
        ModelConfig::Tbats(config) => {
            let tbats_opts = TbatsFitOptions {
                warm_start: fit_opts.warm_start,
                freeze_warm_start: fit_opts.freeze_warm_start,
            };
            let rotation = rotations.get(&season_sig(config)).cloned();
            TbatsFitSession::new(task.train, config.clone(), &tbats_opts, rotation)
                .map(|session| FitSession::Tbats(Box::new(session)))
        }
    }
}

/// Finalise one batched candidate's completed session — the lockstep
/// equivalent of [`run_chain`]'s post-[`score_one`] bookkeeping. Returns
/// the `(config, converged params)` pair to thread into the chain's next
/// warm start on success.
fn settle_group_fit(
    candidate_index: usize,
    session: FitSession,
    task: &EvalTask,
    best_rmse: &AtomicU64,
    out: &mut WorkerOutput,
) -> Option<(ModelConfig, Vec<f64>)> {
    let candidate = task.candidates.get(candidate_index)?;
    let fam = candidate.family;
    match score_group_fit(candidate, candidate_index, session, task) {
        Ok(scored) => {
            out.family_mut(fam).fits += 1;
            out.family_mut(fam).objective_evals += scored.nm_evals;
            out.objective_evals += scored.nm_evals;
            update_min_f64(best_rmse, scored.score.accuracy.rmse);
            let prev = (candidate.config.clone(), scored.score.warm_params.clone());
            out.scores.push(scored.score);
            Some(prev)
        }
        Err(ModelError::Abandoned { evals }) => {
            out.abandoned += 1;
            out.family_mut(fam).abandoned += 1;
            out.family_mut(fam).objective_evals += evals;
            out.objective_evals += evals;
            None
        }
        Err(_) => {
            out.failures += 1;
            out.family_mut(fam).failures += 1;
            None
        }
    }
}

/// Score one batched candidate's finished fit. ARIMA sessions are wrapped
/// in the plain SARIMAX shell (exactly as
/// [`FittedSarimax::fit_plain_prepared`] does); ETS and TBATS sessions
/// finalise to their fitted models directly, exactly as the sequential
/// [`score_one`] arms do. Either way the test segment is forecast and
/// handed off to [`finish_score`].
fn score_group_fit(
    candidate: &CandidateModel,
    candidate_index: usize,
    session: FitSession,
    task: &EvalTask,
) -> std::result::Result<ScoredFit, ModelError> {
    match session {
        FitSession::Arima(session) => {
            let Some(config) = candidate.as_sarimax() else {
                return Err(ModelError::FitFailed {
                    context: "batched ARIMA session settled against a non-ARIMA candidate"
                        .to_string(),
                });
            };
            let arima = session.finish()?;
            let fit = FittedSarimax {
                nm_evals: arima.nm_evals,
                config: config.clone(),
                beta: vec![],
                arima,
                n_obs: task.train.len(),
                start_index: task.opts.start_index,
            };
            let forecast = fit.forecast_cols(task.test.len(), &[])?;
            let warm_beta = fit.beta.clone();
            finish_score(
                &fit,
                forecast,
                warm_beta,
                task.test,
                candidate,
                candidate_index,
            )
        }
        FitSession::Ets(session) => {
            let fit = session.finish()?;
            let forecast = fit.forecast(task.test.len());
            finish_score(
                &fit,
                forecast,
                Vec::new(),
                task.test,
                candidate,
                candidate_index,
            )
        }
        FitSession::Tbats(session) => {
            let fit = session.finish()?;
            let forecast = fit.forecast(task.test.len());
            finish_score(
                &fit,
                forecast,
                Vec::new(),
                task.test,
                candidate,
                candidate_index,
            )
        }
    }
}

/// The first `n` exogenous columns, or a typed mismatch error when the
/// task supplies fewer than the candidate's regression design needs.
fn exog_slice<'a>(
    cols: &'a [Vec<f64>],
    n: usize,
    segment: &str,
) -> std::result::Result<&'a [Vec<f64>], ModelError> {
    cols.get(..n).ok_or_else(|| ModelError::ExogenousMismatch {
        context: format!(
            "candidate needs {n} {segment} exogenous columns, task supplies {}",
            cols.len()
        ),
    })
}

/// A successful fit-and-score, plus the evaluation count for stats (the
/// chain's carry-forward warm seed lives in `score.warm_params`).
struct ScoredFit {
    score: ModelScore,
    nm_evals: usize,
}

/// Fit and score a single candidate, dispatching on its family. The
/// family-specific half ends at the fitted model; everything after the fit
/// goes through the [`Forecaster`] trait in [`finish_score`].
#[allow(clippy::too_many_arguments)]
fn score_one(
    train: &[f64],
    test: &[f64],
    exog_train: &[Vec<f64>],
    exog_test: &[Vec<f64>],
    candidate: &CandidateModel,
    candidate_index: usize,
    start_index: usize,
    fit_opts: &ArimaOptions,
    cached: Option<&Differenced>,
) -> std::result::Result<ScoredFit, ModelError> {
    match &candidate.config {
        ModelConfig::Sarimax(config) => {
            let n_exog = config.n_exog;
            if exog_train.len() < n_exog || exog_test.len() < n_exog {
                return Err(ModelError::ExogenousMismatch {
                    context: format!(
                        "candidate needs {n_exog} exogenous columns, evaluation has {}",
                        exog_train.len().min(exog_test.len())
                    ),
                });
            }
            let fit = match cached {
                Some(diffed) => {
                    FittedSarimax::fit_plain_prepared(train, config, diffed, start_index, fit_opts)?
                }
                None => {
                    let cols = exog_slice(exog_train, n_exog, "training")?;
                    FittedSarimax::fit(train, config, cols, start_index, fit_opts)?
                }
            };
            let future_exog: Vec<&[f64]> = exog_slice(exog_test, n_exog, "test")?
                .iter()
                .map(|c| c.as_slice())
                .collect();
            let forecast = fit.forecast_cols(test.len(), &future_exog)?;
            let warm_beta = fit.beta.clone();
            finish_score(&fit, forecast, warm_beta, test, candidate, candidate_index)
        }
        ModelConfig::Ets(config) => {
            let ets_opts = EtsFitOptions {
                warm_start: fit_opts.warm_start.clone(),
                freeze_warm_start: fit_opts.freeze_warm_start,
            };
            let fit = FittedEts::fit_with(train, *config, &ets_opts)?;
            let forecast = fit.forecast(test.len());
            finish_score(&fit, forecast, Vec::new(), test, candidate, candidate_index)
        }
        ModelConfig::Tbats(config) => {
            let tbats_opts = TbatsFitOptions {
                warm_start: fit_opts.warm_start.clone(),
                freeze_warm_start: fit_opts.freeze_warm_start,
            };
            let fit = FittedTbats::fit_with(train, config.clone(), &tbats_opts)?;
            let forecast = fit.forecast(test.len());
            finish_score(&fit, forecast, Vec::new(), test, candidate, candidate_index)
        }
    }
}

/// Score a fitted model's test-segment forecast — the family-agnostic half
/// of [`score_one`], written against the [`Forecaster`] trait.
fn finish_score<F: Forecaster>(
    fit: &F,
    forecast: Forecast,
    warm_beta: Vec<f64>,
    test: &[f64],
    candidate: &CandidateModel,
    candidate_index: usize,
) -> std::result::Result<ScoredFit, ModelError> {
    let accuracy = Accuracy::compute(test, &forecast.mean)?;
    if !accuracy.rmse.is_finite() {
        return Err(ModelError::FitFailed {
            context: format!("non-finite test RMSE for {}", candidate.config.describe()),
        });
    }
    let nm_evals = fit.objective_evals();
    Ok(ScoredFit {
        score: ModelScore {
            candidate: candidate.clone(),
            candidate_index,
            accuracy,
            aic: fit.aic(),
            forecast,
            warm_beta,
            warm_params: fit.converged_params().to_vec(),
        },
        nm_evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::ModelGrid;
    use dwcp_models::{ArimaSpec, EtsConfig, SarimaxConfig};

    fn seasonal_series(n: usize) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let tf = t as f64;
                100.0
                    + 20.0 * (2.0 * std::f64::consts::PI * tf / 12.0).sin()
                    + ((t * 2654435761 % 97) as f64) / 30.0
            })
            .collect()
    }

    fn plain(spec: ArimaSpec) -> CandidateModel {
        CandidateModel::new(ModelConfig::Sarimax(SarimaxConfig::plain(spec)))
    }

    fn small_candidates() -> Vec<CandidateModel> {
        vec![
            plain(ArimaSpec::arima(1, 0, 0)),
            plain(ArimaSpec::arima(2, 1, 1)),
            plain(ArimaSpec::sarima(1, 0, 0, 0, 1, 1, 12)),
        ]
    }

    #[test]
    fn champion_is_lowest_rmse() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let report = evaluate_candidates(
            train,
            test,
            &[],
            &[],
            &small_candidates(),
            &Default::default(),
        )
        .unwrap();
        for w in report.scores.windows(2) {
            assert!(w[0].accuracy.rmse <= w[1].accuracy.rmse);
        }
        // The seasonal model should beat the non-seasonal ones on strongly
        // seasonal data.
        assert_eq!(
            report.champion().unwrap().candidate.family,
            ModelFamily::Sarimax
        );
    }

    #[test]
    fn best_of_family_respects_bucket() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let report = evaluate_candidates(
            train,
            test,
            &[],
            &[],
            &small_candidates(),
            &Default::default(),
        )
        .unwrap();
        let best_arima = report.best_of_family(ModelFamily::Arima).unwrap();
        assert_eq!(best_arima.candidate.family, ModelFamily::Arima);
        let best_sarimax = report.best_of_family(ModelFamily::Sarimax).unwrap();
        assert!(best_sarimax.accuracy.rmse <= best_arima.accuracy.rmse);
    }

    #[test]
    fn infeasible_candidates_count_as_failures() {
        let y = seasonal_series(60); // too short for big seasonal models
        let (train, test) = y.split_at(48);
        let mut candidates = small_candidates();
        candidates.push(plain(ArimaSpec::sarima(20, 1, 2, 1, 1, 1, 24)));
        let report =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        assert!(report.failures >= 1);
        assert_eq!(report.attempted, 4);
    }

    #[test]
    fn all_infeasible_is_an_error() {
        let y = seasonal_series(30);
        let (train, test) = y.split_at(24);
        let candidates = vec![plain(ArimaSpec::sarima(20, 1, 2, 1, 1, 1, 24))];
        assert!(matches!(
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()),
            Err(PlannerError::NoViableModel { attempted: 1 })
        ));
    }

    #[test]
    fn single_thread_matches_parallel_champion() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let mut reports = Vec::new();
        for threads in [1, 2, 4, 8] {
            let opts = EvaluationOptions {
                threads,
                ..Default::default()
            };
            reports.push(
                evaluate_candidates(train, test, &[], &[], &small_candidates(), &opts).unwrap(),
            );
        }
        let champ = reports[0].champion().unwrap();
        for r in &reports[1..] {
            let c = r.champion().unwrap();
            assert_eq!(champ.candidate.config, c.candidate.config);
            assert_eq!(champ.candidate_index, c.candidate_index);
            // Exact mode: bit-identical, not merely close.
            assert_eq!(champ.accuracy.rmse.to_bits(), c.accuracy.rmse.to_bits());
        }
    }

    #[test]
    fn mixed_family_fleet_is_deterministic_across_threads() {
        // A fleet batch containing an HES task next to a SARIMAX task must
        // produce bit-identical champions at every thread count.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let hes_grid = ModelGrid::ets(12, true, 0.95);
        let sarimax_candidates = small_candidates();
        let mut baseline: Option<Vec<(ModelConfig, u64)>> = None;
        for threads in [1usize, 2, 4, 8] {
            let tasks = vec![
                EvalTask {
                    train,
                    test,
                    exog_train: &[],
                    exog_test: &[],
                    candidates: &hes_grid.candidates,
                    opts: Default::default(),
                    seed: None,
                },
                EvalTask {
                    train,
                    test,
                    exog_train: &[],
                    exog_test: &[],
                    candidates: &sarimax_candidates,
                    opts: Default::default(),
                    seed: None,
                },
            ];
            let reports = evaluate_fleet(&tasks, threads);
            let champions: Vec<(ModelConfig, u64)> = reports
                .iter()
                .map(|r| {
                    let c = r.as_ref().unwrap().champion().unwrap();
                    (c.candidate.config.clone(), c.accuracy.rmse.to_bits())
                })
                .collect();
            match &baseline {
                None => baseline = Some(champions),
                Some(expected) => assert_eq!(expected, &champions, "threads={threads}"),
            }
        }
        let (hes_champion, _) = &baseline.unwrap()[0];
        assert!(hes_champion.as_ets().is_some());
    }

    #[test]
    fn hes_candidates_flow_through_engine() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let grid = ModelGrid::ets(12, true, 0.95);
        let report =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &Default::default())
                .unwrap();
        // Strong seasonality: a Holt-Winters variant must win the menu.
        let champion = report.champion().unwrap();
        assert_eq!(champion.candidate.family, ModelFamily::Hes);
        assert!(champion
            .candidate
            .config
            .describe()
            .contains("Holt-Winters"));
        assert!(!champion.warm_params.is_empty());
        let hes = report.stats.family(ModelFamily::Hes);
        assert_eq!(hes.attempts, grid.len());
        assert!(hes.fits >= 4);
        assert!(hes.objective_evals > 0);
    }

    #[test]
    fn hes_seed_freezes_champion_re_score() {
        // Re-evaluating with the stored champion as seed must reproduce
        // the stored parameters (frozen re-score) and the stored RMSE.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let grid = ModelGrid::ets(12, true, 0.95);
        let cold =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &Default::default())
                .unwrap();
        let champion = cold.champion().unwrap().clone();
        let task = EvalTask {
            train,
            test,
            exog_train: &[],
            exog_test: &[],
            candidates: &grid.candidates,
            opts: Default::default(),
            seed: Some((
                champion.candidate.config.clone(),
                champion.warm_params.clone(),
                champion.warm_beta.clone(),
            )),
        };
        let seeded = evaluate_fleet(std::slice::from_ref(&task), 1)
            .pop()
            .unwrap()
            .unwrap();
        let re_scored = seeded
            .scores
            .iter()
            .find(|s| s.candidate.config == champion.candidate.config)
            .unwrap();
        assert_eq!(
            re_scored.accuracy.rmse.to_bits(),
            champion.accuracy.rmse.to_bits()
        );
        assert_eq!(re_scored.warm_params, champion.warm_params);
    }

    #[test]
    fn tied_rmse_resolves_to_lowest_candidate_index() {
        // Duplicate configs produce exactly equal RMSEs; the tie must
        // resolve to the earliest index at every thread count.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let dup = plain(ArimaSpec::arima(1, 0, 0));
        let candidates = vec![dup.clone(), dup.clone(), dup];
        for threads in [1, 2, 4, 8] {
            let opts = EvaluationOptions {
                threads,
                ..Default::default()
            };
            let report = evaluate_candidates(train, test, &[], &[], &candidates, &opts).unwrap();
            assert_eq!(report.champion().unwrap().candidate_index, 0);
            let indices: Vec<usize> = report.scores.iter().map(|s| s.candidate_index).collect();
            assert_eq!(indices, vec![0, 1, 2]);
            let rmse0 = report.scores[0].accuracy.rmse;
            assert!(report
                .scores
                .iter()
                .all(|s| s.accuracy.rmse.to_bits() == rmse0.to_bits()));
        }
    }

    #[test]
    fn exogenous_candidates_receive_their_columns() {
        let n = 240;
        let shock: Vec<f64> = (0..n)
            .map(|t| if t % 12 == 0 { 1.0 } else { 0.0 })
            .collect();
        let y: Vec<f64> = (0..n)
            .map(|t| 10.0 + 40.0 * shock[t] + ((t * 31 % 17) as f64) / 10.0)
            .collect();
        let (train, test) = y.split_at(216);
        let (shock_train, shock_test) = shock.split_at(216);
        let candidates = vec![CandidateModel {
            family: ModelFamily::SarimaxFftExogenous,
            config: ModelConfig::Sarimax(SarimaxConfig {
                spec: ArimaSpec::arima(1, 0, 0),
                fourier: Default::default(),
                n_exog: 1,
            }),
        }];
        let report = evaluate_candidates(
            train,
            test,
            &[shock_train.to_vec()],
            &[shock_test.to_vec()],
            &candidates,
            &Default::default(),
        )
        .unwrap();
        // With the shock explained exogenously the forecast error is small
        // relative to the shock magnitude.
        assert!(report.champion().unwrap().accuracy.rmse < 5.0);
    }

    #[test]
    fn grid_prune_plus_evaluate_smoke() {
        let y = seasonal_series(300);
        let (train, test) = y.split_at(276);
        let corr = dwcp_series::Correlogram::compute(train, 30).unwrap();
        let grid = ModelGrid::arima().prune(&corr, 8);
        let report =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &Default::default())
                .unwrap();
        assert!(!report.scores.is_empty());
    }

    #[test]
    fn accelerated_run_matches_baseline_champion() {
        // Cache + warm starts must not change which model wins in exact
        // mode (warm starts may sharpen losers' fits, but the cache path is
        // bit-identical and the optimiser never starts worse than cold).
        let y = seasonal_series(300);
        let (train, test) = y.split_at(276);
        let corr = dwcp_series::Correlogram::compute(train, 30).unwrap();
        let grid = ModelGrid::arima().prune(&corr, 10);
        let baseline = EvaluationOptions {
            cache_transforms: false,
            warm_start: false,
            ..Default::default()
        };
        let accel = EvaluationOptions::default();
        let r_base =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &baseline).unwrap();
        let r_accel = evaluate_candidates(train, test, &[], &[], &grid.candidates, &accel).unwrap();
        assert_eq!(
            r_base.champion().unwrap().candidate.config,
            r_accel.champion().unwrap().candidate.config
        );
        assert!(r_accel.stats.cache_hits > 0);
        assert!(r_accel.stats.cache_entries >= 1);
        assert_eq!(r_base.stats.cache_hits, 0);
        assert_eq!(r_base.stats.cache_entries, 0);
        // Warm-started evaluation must not cost accuracy: the champion's
        // test RMSE is no worse than the cold-start champion's.
        assert!(
            r_accel.champion().unwrap().accuracy.rmse
                <= r_base.champion().unwrap().accuracy.rmse * (1.0 + 1e-9),
            "warm {} vs cold {}",
            r_accel.champion().unwrap().accuracy.rmse,
            r_base.champion().unwrap().accuracy.rmse
        );
    }

    #[test]
    fn racing_accounts_for_every_candidate() {
        let y = seasonal_series(300);
        let (train, test) = y.split_at(276);
        let corr = dwcp_series::Correlogram::compute(train, 30).unwrap();
        let grid = ModelGrid::arima().prune(&corr, 12);
        let opts = EvaluationOptions {
            racing: true,
            racing_slack: 1.0,
            threads: 2,
            ..Default::default()
        };
        let report = evaluate_candidates(train, test, &[], &[], &grid.candidates, &opts).unwrap();
        assert_eq!(
            report.abandoned + report.failures + report.scores.len(),
            report.attempted
        );
        // Exact mode never abandons.
        let exact =
            evaluate_candidates(train, test, &[], &[], &grid.candidates, &Default::default())
                .unwrap();
        assert_eq!(exact.abandoned, 0);
    }

    #[test]
    fn stats_cover_all_attempts() {
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let report = evaluate_candidates(
            train,
            test,
            &[],
            &[],
            &small_candidates(),
            &Default::default(),
        )
        .unwrap();
        let total_attempts: usize = report.stats.families.iter().map(|f| f.attempts).sum();
        assert_eq!(total_attempts, report.attempted);
        let arima = report.stats.family(ModelFamily::Arima);
        assert_eq!(arima.attempts, 2);
        assert!(report.stats.objective_evals > 0);
        assert!(report.stats.wall_time > Duration::ZERO);
    }

    #[test]
    fn chains_are_independent_of_thread_count() {
        let candidates = ModelGrid::arima().candidates;
        let chains = build_chains(&candidates);
        // Every candidate appears exactly once.
        let mut seen: Vec<usize> = chains.iter().flat_map(|c| c.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..candidates.len()).collect::<Vec<_>>());
        // Chain length bound holds.
        assert!(chains.iter().all(|c| c.indices.len() <= MAX_CHAIN_LEN));
        // Within a chain, every candidate shares a chain key.
        for chain in &chains {
            let key = chain_key(&candidates[chain.indices[0]].config);
            for &i in &chain.indices {
                assert_eq!(chain_key(&candidates[i].config), key);
            }
        }
    }

    #[test]
    fn chains_never_mix_families() {
        let mut candidates = ModelGrid::ets(12, true, 0.95).candidates;
        candidates.extend(small_candidates());
        candidates.extend(ModelGrid::tbats(&[12.0], Some(0.3), 0.95).candidates);
        let chains = build_chains(&candidates);
        let mut seen: Vec<usize> = chains.iter().flat_map(|c| c.indices.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..candidates.len()).collect::<Vec<_>>());
        for chain in &chains {
            let family = candidates[chain.indices[0]].family;
            assert!(chain
                .indices
                .iter()
                .all(|&i| candidates[i].family == family));
        }
    }

    /// Assert two reports carry bitwise-identical score sheets: same
    /// candidates in the same order, same RMSE/AIC bits, same converged
    /// parameters and forecasts.
    fn assert_reports_bitwise_equal(a: &EvaluationReport, b: &EvaluationReport) {
        assert_eq!(a.scores.len(), b.scores.len());
        assert_eq!(a.failures, b.failures);
        for (x, y) in a.scores.iter().zip(&b.scores) {
            let what = x.candidate.config.describe();
            assert_eq!(x.candidate_index, y.candidate_index, "{what}");
            assert_eq!(
                x.accuracy.rmse.to_bits(),
                y.accuracy.rmse.to_bits(),
                "{what}"
            );
            assert_eq!(x.aic.to_bits(), y.aic.to_bits(), "{what}");
            assert_eq!(x.warm_params.len(), y.warm_params.len(), "{what}");
            for (p, q) in x.warm_params.iter().zip(&y.warm_params) {
                assert_eq!(p.to_bits(), q.to_bits(), "{what}");
            }
            for (p, q) in x.forecast.mean.iter().zip(&y.forecast.mean) {
                assert_eq!(p.to_bits(), q.to_bits(), "{what}");
            }
        }
    }

    #[test]
    fn batched_ets_tbats_match_sequential_bitwise() {
        // An ETS+TBATS grid under default options runs through the batched
        // recursion/filter kernels; with the cache layer disabled the same
        // grid runs through the sequential per-candidate path. The two
        // must agree bit for bit on every score.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let mut candidates = ModelGrid::ets(12, true, 0.95).candidates;
        let mut tbats = ModelGrid::tbats(&[12.0], None, 0.95).candidates;
        tbats.truncate(6);
        candidates.extend(tbats);
        let batched =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        let sequential_opts = EvaluationOptions {
            cache_transforms: false,
            ..Default::default()
        };
        let sequential =
            evaluate_candidates(train, test, &[], &[], &candidates, &sequential_opts).unwrap();
        // No ARIMA candidates: every batched evaluation below went through
        // the ETS or TBATS kernel.
        assert!(batched.stats.lockstep.batched_evals > 0);
        assert_eq!(sequential.stats.lockstep.batched_evals, 0);
        assert_reports_bitwise_equal(&batched, &sequential);
    }

    #[test]
    fn mixed_family_batched_scores_identical_across_threads() {
        // One task mixing all three families: the full score sheet — not
        // just the champion — must be bit-identical at every thread count.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let mut candidates = small_candidates();
        candidates.extend(ModelGrid::ets(12, true, 0.95).candidates);
        let mut tbats = ModelGrid::tbats(&[12.0], None, 0.95).candidates;
        tbats.truncate(4);
        candidates.extend(tbats);
        let mut baseline: Option<EvaluationReport> = None;
        for threads in [1, 2, 4, 8] {
            let opts = EvaluationOptions {
                threads,
                ..Default::default()
            };
            let report = evaluate_candidates(train, test, &[], &[], &candidates, &opts).unwrap();
            match &baseline {
                None => baseline = Some(report),
                Some(expected) => assert_reports_bitwise_equal(expected, &report),
            }
        }
    }

    #[test]
    fn tbats_seed_freezes_champion_re_score() {
        // The TBATS twin of `hes_seed_freezes_champion_re_score`: with the
        // stored champion as seed, the batched path must re-score the
        // stored parameters verbatim through the frozen solo-kernel pass.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let mut candidates = ModelGrid::tbats(&[12.0], None, 0.95).candidates;
        candidates.truncate(6);
        let cold =
            evaluate_candidates(train, test, &[], &[], &candidates, &Default::default()).unwrap();
        let champion = cold.champion().unwrap().clone();
        assert_eq!(champion.candidate.family, ModelFamily::Tbats);
        let task = EvalTask {
            train,
            test,
            exog_train: &[],
            exog_test: &[],
            candidates: &candidates,
            opts: Default::default(),
            seed: Some((
                champion.candidate.config.clone(),
                champion.warm_params.clone(),
                champion.warm_beta.clone(),
            )),
        };
        let seeded = evaluate_fleet(std::slice::from_ref(&task), 1)
            .pop()
            .unwrap()
            .unwrap();
        let re_scored = seeded
            .scores
            .iter()
            .find(|s| s.candidate.config == champion.candidate.config)
            .unwrap();
        assert_eq!(
            re_scored.accuracy.rmse.to_bits(),
            champion.accuracy.rmse.to_bits()
        );
        assert_eq!(re_scored.warm_params, champion.warm_params);
    }

    #[test]
    fn ets_menu_tie_break_prefers_simpler_model() {
        // Two copies of the same ETS config: exact tie resolves to the
        // earlier candidate at any thread count.
        let y = seasonal_series(240);
        let (train, test) = y.split_at(216);
        let dup = CandidateModel::new(ModelConfig::Ets(EtsConfig::holt()));
        let candidates = vec![dup.clone(), dup];
        for threads in [1, 4] {
            let opts = EvaluationOptions {
                threads,
                ..Default::default()
            };
            let report = evaluate_candidates(train, test, &[], &[], &candidates, &opts).unwrap();
            assert_eq!(report.champion().unwrap().candidate_index, 0);
        }
    }
}
