//! Fleet-scale pipeline scheduling — the paper's deployment shape.
//!
//! §5.1 describes an agent polling *every* instance of every clustered
//! database for CPU %, Memory and Logical IOPS, with a central repository
//! that keeps each champion "for a period of one week or until the model's
//! RMSE drops to a point where it is rendered useless". That is a batch of
//! (instance, metric, granularity) series relearned together — not one
//! series at a time. This module adds that layer:
//!
//! * [`FleetScheduler`] runs a batch of [`SeriesJob`]s through **one**
//!   shared worker pool ([`evaluate_fleet`]): every job's candidate chains
//!   are interleaved under a single global concurrency cap, so a 12-job
//!   batch at 4 threads keeps 4 cores busy end to end instead of paying 12
//!   pool ramp-down tails. Results stay per-job deterministic — each job's
//!   report is merged and tie-broken exactly as in the single-grid path,
//!   so champions and RMSEs are bit-identical at any thread count.
//! * **Champion-seeded relearning**: when the [`ModelRepository`] holds a
//!   fresh champion for a job, the scheduler fits only the pruned
//!   neighbourhood grid around the stored configuration
//!   ([`ModelGrid::neighbourhood_of`]), warm-started from the stored
//!   converged parameters — whichever family the champion belongs to.
//!   Only when the pruned champion's held-out RMSE degrades past the
//!   staleness threshold (`baseline × rmse_degradation_factor`) does the
//!   job fall back to the full grid — turning the weekly relearn into a
//!   local refinement.
//!
//! HES and TBATS jobs are first-class batch citizens: their candidate
//! menus interleave through the same shared pool, persist champions with
//! frozen converged parameters, and relearn from the stored seed exactly
//! like SARIMAX jobs.

use crate::evaluate::{evaluate_fleet, EvalStats, EvalTask, EvaluationReport};
use crate::grid::{CandidateModel, ModelConfig, ModelGrid};
use crate::pipeline::{EvalPlan, ForecastOutcome, MethodChoice, Pipeline, PipelineConfig};
use crate::repository::{
    shard_of, ChampionStore, ModelRecord, ModelRepository, RetentionPolicy, ShardedRepository,
};
use crate::{protocol, PlannerError, Result};
use dwcp_series::TimeSeries;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// One series to forecast: a workload key (repository identity), the
/// observations, optional exogenous indicator columns, and the pipeline
/// configuration to apply.
#[derive(Debug, Clone)]
pub struct SeriesJob {
    /// Workload key, e.g. `cdbm011/CPU/hourly` — the repository lookup and
    /// store key for champion reuse.
    pub key: String,
    /// The monitored series.
    pub series: TimeSeries,
    /// Exogenous indicator columns spanning the same observations (empty
    /// when no shock calendar is known).
    pub exog: Vec<Vec<f64>>,
    /// Pipeline configuration for this job (method, granularity, grid cap,
    /// evaluation options). `config.eval.threads` is ignored — the pool is
    /// shared across the batch and sized by [`FleetOptions::threads`].
    pub config: PipelineConfig,
}

impl SeriesJob {
    /// A job with no exogenous columns.
    pub fn new(key: impl Into<String>, series: TimeSeries, config: PipelineConfig) -> SeriesJob {
        SeriesJob {
            key: key.into(),
            series,
            exog: Vec::new(),
            config,
        }
    }

    /// Attach exogenous indicator columns (builder style).
    pub fn with_exog(mut self, exog: Vec<Vec<f64>>) -> SeriesJob {
        self.exog = exog;
        self
    }
}

/// Fleet scheduling knobs.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Worker threads shared by the whole batch; 0 = one per core.
    pub threads: usize,
    /// Champion-seeded relearning: consult the repository and relearn
    /// fresh champions on a pruned neighbourhood grid (on by default; off
    /// runs every job cold on its full grid).
    pub reuse_champions: bool,
    /// Neighbourhood radius around a stored champion's `(p, q)` orders.
    pub neighbourhood_radius: usize,
    /// Current epoch-seconds, used for the staleness check and stamped
    /// into stored records. Passed in (not read from a clock) so batch
    /// runs are reproducible.
    pub now: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            threads: 0,
            reuse_champions: true,
            neighbourhood_radius: 1,
            now: 0,
        }
    }
}

/// The outcome of one job in a batch.
#[derive(Debug)]
pub struct JobResult {
    /// The job's workload key.
    pub key: String,
    /// The forecast outcome, or why the job failed (a failed job never
    /// poisons its batch neighbours).
    pub outcome: Result<ForecastOutcome>,
    /// Whether a stored champion seeded this job's relearn.
    pub reused: bool,
    /// Whether the seeded relearn degraded past the staleness threshold
    /// and fell back to the full grid.
    pub fell_back: bool,
}

/// The outcome of a whole batch.
#[derive(Debug)]
pub struct FleetReport {
    /// Per-job results, in input order.
    pub jobs: Vec<JobResult>,
    /// Batch-aggregated evaluation stats: counters summed over every pass
    /// of every job (including work discarded by full-grid fallbacks),
    /// `wall_time` the true batch wall clock, and the champion-reuse
    /// hit/miss/fallback counts.
    pub stats: EvalStats,
}

impl FleetReport {
    /// Successfully forecast jobs per second of batch wall time.
    pub fn jobs_per_second(&self) -> f64 {
        let ok = self.jobs.iter().filter(|j| j.outcome.is_ok()).count();
        let secs = self.stats.wall_time.as_secs_f64();
        if secs > 0.0 {
            ok as f64 / secs
        } else {
            0.0
        }
    }
}

/// A job after planning, carried across the batch passes.
struct PreparedJob {
    /// Index into the batch's result vector.
    job_idx: usize,
    pipeline: Pipeline,
    plan: EvalPlan,
    /// Champion seed priming every chain of the primary grid.
    seed: Option<(ModelConfig, Vec<f64>, Vec<f64>)>,
    /// The full grid to fall back to; `Some` exactly when the primary grid
    /// is a champion neighbourhood.
    fallback_models: Option<Vec<CandidateModel>>,
    /// RMSE above which the seeded relearn is declared degraded
    /// (`baseline × rmse_degradation_factor`).
    fallback_threshold: f64,
    reused: bool,
    fell_back: bool,
    report: Option<EvaluationReport>,
    /// Stats of work discarded by the fallback (the abandoned
    /// neighbourhood pass) — still real compute, so still counted in the
    /// batch aggregate.
    wasted: EvalStats,
}

/// Runs batches of [`SeriesJob`]s against a model repository.
#[derive(Debug, Default)]
pub struct FleetScheduler {
    /// Scheduling knobs.
    pub options: FleetOptions,
    /// The central repository consulted for champion seeds and updated
    /// with every successful job.
    pub repository: ModelRepository,
}

impl FleetScheduler {
    /// A scheduler with an empty repository.
    pub fn new(options: FleetOptions) -> FleetScheduler {
        FleetScheduler {
            options,
            repository: ModelRepository::new(),
        }
    }

    /// A scheduler over an existing repository (e.g. loaded from disk).
    pub fn with_repository(options: FleetOptions, repository: ModelRepository) -> FleetScheduler {
        FleetScheduler {
            options,
            repository,
        }
    }

    /// Run a batch. Returns per-job results in input order and updates the
    /// repository with every successful champion.
    ///
    /// Delegates to [`run_batch_on`] with the in-memory repository as the
    /// champion store; see there for the pass structure.
    pub fn run_batch(&mut self, jobs: &[SeriesJob]) -> FleetReport {
        run_batch_on(&self.options, &mut self.repository, jobs)
    }
}

/// The stored champion to seed a job from, if there is one and it is
/// usable: same granularity, not past the one-week staleness horizon,
/// a family the job's method would search, and (for SARIMAX) no more
/// exogenous columns than the job supplies.
fn usable_champion(
    options: &FleetOptions,
    store: &mut dyn ChampionStore,
    job: &SeriesJob,
) -> Option<(ModelRecord, ModelConfig)> {
    let record = store.fetch(&job.key)?;
    if record.granularity != job.config.granularity {
        return None;
    }
    if options.now.saturating_sub(record.fitted_at) > store.retention().max_age_seconds {
        return None;
    }
    let (config, ..) = record.champion_seed()?;
    let compatible = matches!(
        (config, job.config.method),
        (_, MethodChoice::Auto)
            | (ModelConfig::Sarimax(_), MethodChoice::Sarimax)
            | (ModelConfig::Ets(_), MethodChoice::Hes)
            | (ModelConfig::Tbats(_), MethodChoice::Tbats)
    );
    if !compatible {
        return None;
    }
    if let Some(sarimax) = config.as_sarimax() {
        if sarimax.n_exog > job.exog.len() {
            return None;
        }
    }
    let config = config.clone();
    Some((record, config))
}

/// Run a batch of jobs against any [`ChampionStore`]. Returns per-job
/// results in input order and `put`s every successful champion back into
/// the store.
///
/// Three pool passes, all deterministic at any thread count:
/// 1. every job's primary grid (champion neighbourhood when a fresh
///    stored champion exists, the full pruned grid otherwise),
/// 2. full-grid fallbacks for seeded jobs whose champion degraded,
/// 3. the §6.3 Fourier-variant stage for every job that wants it.
pub fn run_batch_on(
    options: &FleetOptions,
    store: &mut dyn ChampionStore,
    jobs: &[SeriesJob],
) -> FleetReport {
    let started = Instant::now();
    let mut results: Vec<Option<JobResult>> = (0..jobs.len()).map(|_| None).collect();
    let mut prepared: Vec<PreparedJob> = Vec::new();
    let mut batch = EvalStats::default();

    // Phase A — plan every job (interpolate, split, profile, build
    // the method's candidate grid) and decide champion reuse.
    for (job_idx, job) in jobs.iter().enumerate() {
        let pipeline = Pipeline::new(job.config.clone());
        let mut plan = match pipeline.plan(&job.series, &job.exog) {
            Ok(plan) => plan,
            Err(e) => {
                if let Some(slot) = results.get_mut(job_idx) {
                    *slot = Some(JobResult {
                        key: job.key.clone(),
                        outcome: Err(e),
                        reused: false,
                        fell_back: false,
                    });
                }
                continue;
            }
        };

        let mut seed = None;
        let mut fallback_models = None;
        let mut fallback_threshold = f64::INFINITY;
        if options.reuse_champions {
            if let Some((record, config)) = usable_champion(options, store, job) {
                // Swap the full grid for the champion neighbourhood;
                // keep the full grid for the fallback.
                let neighbourhood = ModelGrid::neighbourhood_of(
                    &config,
                    options.neighbourhood_radius,
                    job.config.granularity.seasonal_period(),
                );
                fallback_models = Some(std::mem::replace(
                    &mut plan.set.models,
                    neighbourhood.candidates,
                ));
                fallback_threshold =
                    record.baseline_rmse * store.retention().rmse_degradation_factor;
                if !record.warm_params.is_empty() {
                    seed = Some((
                        config.clone(),
                        record.warm_params.clone(),
                        record.warm_beta.clone(),
                    ));
                }
            }
        }
        prepared.push(PreparedJob {
            job_idx,
            pipeline,
            reused: fallback_models.is_some(),
            fell_back: false,
            plan,
            seed,
            fallback_models,
            fallback_threshold,
            report: None,
            wasted: EvalStats::default(),
        });
    }

    batch.reuse_hits = prepared.iter().filter(|p| p.reused).count();
    batch.reuse_misses = prepared.len() - batch.reuse_hits;

    // Pass 1 — every primary grid through one shared pool.
    {
        let tasks: Vec<EvalTask> = prepared.iter().map(primary_task).collect();
        let reports = evaluate_fleet(&tasks, options.threads);
        drop(tasks);
        for (job, report) in prepared.iter_mut().zip(reports) {
            job.report = report.ok();
        }
    }

    // Pass 2 — full-grid fallback for seeded jobs whose neighbourhood
    // champion degraded past the staleness threshold (or produced no
    // viable model at all). The fallback is unseeded, so its result is
    // exactly what a cold `Pipeline::run` would have selected.
    for job in prepared.iter_mut() {
        if job.fallback_models.is_none() {
            continue;
        }
        let degraded = match &job.report {
            None => true,
            Some(report) => report
                .champion()
                .map(|c| c.accuracy.rmse > job.fallback_threshold)
                .unwrap_or(true),
        };
        // `fallback_models` was checked non-None above; `take` moves the
        // grid out so a job can only fall back once.
        if degraded {
            let Some(models) = job.fallback_models.take() else {
                continue;
            };
            job.fell_back = true;
            if let Some(report) = job.report.take() {
                job.wasted.merge(&report.stats);
            }
            job.plan.set.models = models;
            job.seed = None;
        }
    }
    batch.reuse_fallbacks = prepared.iter().filter(|p| p.fell_back).count();
    {
        let fallback: Vec<&mut PreparedJob> = prepared.iter_mut().filter(|p| p.fell_back).collect();
        let tasks: Vec<EvalTask> = fallback.iter().map(|p| primary_task(p)).collect();
        let reports = evaluate_fleet(&tasks, options.threads);
        drop(tasks);
        for (job, report) in fallback.into_iter().zip(reports) {
            job.report = report.ok();
        }
    }

    // Pass 3 — the Fourier-variant stage for every job that wants it,
    // again through one shared pool.
    {
        let staged: Vec<(usize, Vec<CandidateModel>)> = prepared
            .iter()
            .enumerate()
            .filter_map(|(i, job)| {
                let report = job.report.as_ref()?;
                let variants = job.pipeline.fourier_candidates(&job.plan, report);
                (!variants.is_empty()).then_some((i, variants))
            })
            .collect();
        let tasks: Vec<EvalTask> = staged
            .iter()
            .filter_map(|(i, variants)| {
                let job = prepared.get(*i)?;
                Some(EvalTask {
                    train: job.plan.split.train.values(),
                    test: job.plan.split.test.values(),
                    exog_train: &job.plan.exog_train,
                    exog_test: &job.plan.exog_test,
                    candidates: variants,
                    opts: job.plan.eval_opts.clone(),
                    seed: None,
                })
            })
            .collect();
        let reports = evaluate_fleet(&tasks, options.threads);
        drop(tasks);
        // Staged indices come from enumerating `prepared`, and only
        // jobs with a report are staged — both lookups hold by
        // construction, so a miss just drops the variant scores.
        for ((i, _), report) in staged.into_iter().zip(reports) {
            if let Ok(fourier_report) = report {
                if let Some(target) = prepared.get_mut(i).and_then(|job| job.report.as_mut()) {
                    target.absorb(fourier_report);
                }
            }
        }
    }

    // Phase B — assemble outcomes, update the store, aggregate.
    for job in prepared {
        let Some(source) = jobs.get(job.job_idx) else {
            continue;
        };
        let key = &source.key;
        batch.merge(&job.wasted);
        let outcome = match job.report {
            Some(report) => job.pipeline.outcome_from_report(job.plan, report),
            None => Err(PlannerError::NoViableModel {
                attempted: job.plan.set.models.len(),
            }),
        };
        if let Ok(outcome) = &outcome {
            batch.merge(&outcome.stats);
            store.put(ModelRecord::from_outcome(
                key,
                outcome,
                source.config.granularity,
                options.now,
            ));
        }
        if let Some(slot) = results.get_mut(job.job_idx) {
            *slot = Some(JobResult {
                key: key.clone(),
                outcome,
                reused: job.reused,
                fell_back: job.fell_back,
            });
        }
    }
    batch.wall_time = started.elapsed();
    FleetReport {
        jobs: results
            .into_iter()
            .zip(jobs)
            .map(|(result, job)| {
                // Every job is either planned (phase A failure slot) or
                // prepared (phase B slot); an empty slot is a scheduler
                // bug, reported as a typed per-job error.
                result.unwrap_or_else(|| JobResult {
                    key: job.key.clone(),
                    outcome: Err(PlannerError::Internal {
                        context: "fleet job produced no result",
                    }),
                    reused: false,
                    fell_back: false,
                })
            })
            .collect(),
        stats: batch,
    }
}

/// The pass-1/pass-2 task for a prepared job: its current primary grid,
/// seeded when a champion seed is set.
fn primary_task(job: &PreparedJob) -> EvalTask<'_> {
    EvalTask {
        train: job.plan.split.train.values(),
        test: job.plan.split.test.values(),
        exog_train: &job.plan.exog_train,
        exog_test: &job.plan.exog_test,
        candidates: &job.plan.set.models,
        opts: job.plan.eval_opts.clone(),
        seed: job.seed.clone(),
    }
}

// ---------------------------------------------------------------------------
// Estate-scale wave scheduling
// ---------------------------------------------------------------------------

/// Where an estate scan's jobs come from. The scheduler asks for the full
/// key list up front (cheap: keys are strings), then materialises each
/// job's series only when its wave starts — so a million-job estate is
/// never resident at once.
pub trait JobSource {
    /// Every workload key the scan covers, in the source's natural order.
    fn keys(&self) -> Vec<String>;
    /// Materialise one job (load/generate its series and config).
    fn load(&self, key: &str) -> Result<SeriesJob>;
}

/// A [`JobSource`] over jobs already in memory — adapts the legacy
/// all-at-once batch shape (and tests) to the wave scheduler.
pub struct SliceJobSource<'a> {
    jobs: &'a [SeriesJob],
}

impl<'a> SliceJobSource<'a> {
    /// Wrap a slice of in-memory jobs.
    pub fn new(jobs: &'a [SeriesJob]) -> SliceJobSource<'a> {
        SliceJobSource { jobs }
    }
}

impl JobSource for SliceJobSource<'_> {
    fn keys(&self) -> Vec<String> {
        self.jobs.iter().map(|j| j.key.clone()).collect()
    }

    fn load(&self, key: &str) -> Result<SeriesJob> {
        self.jobs
            .iter()
            .find(|j| j.key == key)
            .cloned()
            .ok_or(PlannerError::Internal {
                context: "job source asked for an unknown key",
            })
    }
}

/// Wave scheduling knobs.
#[derive(Debug, Clone, Default)]
pub struct WaveOptions {
    /// Jobs materialised per wave; 0 falls back to 1024. Peak memory is
    /// O(`wave_size` × series length), independent of the estate size.
    pub wave_size: usize,
    /// Checkpoint file recording completed job keys; a scan restarted with
    /// the same path skips them (resume without refitting). `None` runs
    /// uncheckpointed.
    pub checkpoint: Option<PathBuf>,
    /// Stop after this many waves (0 = run to completion) — the hook
    /// that lets tests and benches simulate a killed nightly relearn.
    pub max_waves: usize,
}

impl WaveOptions {
    fn effective_wave_size(&self) -> usize {
        if self.wave_size == 0 {
            1024
        } else {
            self.wave_size
        }
    }
}

/// Progress snapshot delivered to the wave callback after each wave
/// retires.
#[derive(Debug, Clone)]
pub struct WaveProgress {
    /// 1-based index of the wave that just retired.
    pub wave: usize,
    /// Total waves in this scan (after checkpoint skips).
    pub total_waves: usize,
    /// Jobs finished so far (completed + failed), excluding skips.
    pub jobs_done: usize,
    /// Jobs this scan will run (excluding checkpoint skips).
    pub jobs_total: usize,
    /// Wall time of the wave that just retired.
    pub wave_wall: Duration,
    /// Bytes of series + exogenous data resident during the wave.
    pub wave_bytes: usize,
}

/// The outcome of an estate scan.
#[derive(Debug)]
pub struct WaveReport {
    /// Keys yielded by the source (after de-duplication).
    pub total_jobs: usize,
    /// Jobs skipped because the checkpoint already recorded them.
    pub skipped: usize,
    /// Waves actually run.
    pub waves: usize,
    /// Jobs that produced (and persisted) a champion.
    pub completed: usize,
    /// Jobs that failed (plan/load errors); never checkpointed, so a
    /// resumed scan retries them.
    pub failed: usize,
    /// Evaluation stats aggregated over every wave; `wall_time` is the
    /// whole scan's wall clock.
    pub stats: EvalStats,
    /// Largest series+exog working set any wave held — the bounded-memory
    /// claim, measurable.
    pub peak_wave_bytes: usize,
    /// True when `max_waves` stopped the scan before the job list was
    /// drained (the checkpoint lets the next run resume).
    pub stopped_early: bool,
}

impl WaveReport {
    /// Successfully forecast jobs per second of scan wall time.
    pub fn jobs_per_second(&self) -> f64 {
        let secs = self.stats.wall_time.as_secs_f64();
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            0.0
        }
    }
}

/// The per-wave champion store handed to [`run_batch_on`]: champions
/// prefetched from the sharded repository before the wave, fresh champions
/// collected for one batched flush after it. Keeps the wave's repository
/// traffic to one load + one append per touched shard.
struct WaveStore {
    policy: RetentionPolicy,
    records: BTreeMap<String, ModelRecord>,
    fresh: Vec<ModelRecord>,
}

impl ChampionStore for WaveStore {
    fn retention(&self) -> RetentionPolicy {
        self.policy
    }

    fn fetch(&mut self, workload: &str) -> Option<ModelRecord> {
        self.records.get(workload).cloned()
    }

    fn put(&mut self, record: ModelRecord) {
        self.fresh.push(record);
    }
}

/// Resumable-scan checkpoint file: a header line
/// `{"dwcp_checkpoint":1,"total":N}` followed by one JSON string per
/// completed workload key. Appended after each wave's repository flush —
/// a checkpointed key's champion is guaranteed on disk — and loaded
/// leniently (a torn tail line just means that one job refits).
///
/// The record-then-publish ordering behind that guarantee is
/// [`protocol::commit_wave`], which the scheduler drives through its
/// private `RepoLedger` and the bounded model checker drives through an
/// instrumented ledger (`tests/model_check.rs`).
pub struct Checkpoint;

impl Checkpoint {
    /// Completed keys recorded at `path`. A missing file is an empty
    /// checkpoint (fresh scan); unparseable lines are skipped.
    pub fn load(path: &Path) -> BTreeSet<String> {
        let mut done = BTreeSet::new();
        let Ok(content) = std::fs::read_to_string(path) else {
            return done;
        };
        for line in content.lines() {
            if let Ok(key) = serde_json::from_str::<String>(line) {
                done.insert(key);
            }
        }
        done
    }

    /// Append `keys` to the checkpoint at `path`, creating it (with its
    /// header) on first use. `total` is the scan's de-duplicated job
    /// count, recorded for progress display.
    pub fn append(path: &Path, total: usize, keys: &[String]) -> Result<()> {
        let mut batch = String::new();
        match std::fs::metadata(path) {
            Ok(meta) => {
                // Guard against a torn tail from a previous crash: if the
                // file does not end in a newline, start on a fresh line so
                // the torn line cannot swallow the first new key.
                if meta.len() > 0 {
                    let Ok(content) = std::fs::read_to_string(path) else {
                        return Err(PlannerError::Persistence(format!(
                            "checkpoint {} is unreadable",
                            path.display()
                        )));
                    };
                    if !content.ends_with('\n') {
                        batch.push('\n');
                    }
                } else {
                    batch.push_str(&format!("{{\"dwcp_checkpoint\":1,\"total\":{total}}}\n"));
                }
            }
            Err(_) => {
                batch.push_str(&format!("{{\"dwcp_checkpoint\":1,\"total\":{total}}}\n"));
            }
        }
        for key in keys {
            match serde_json::to_string(key) {
                Ok(line) => {
                    batch.push_str(&line);
                    batch.push('\n');
                }
                Err(e) => return Err(PlannerError::Persistence(e.to_string())),
            }
        }
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PlannerError::Persistence(e.to_string()))?;
        file.write_all(batch.as_bytes())
            .map_err(|e| PlannerError::Persistence(e.to_string()))
    }

    /// Cancel a checkpointed scan by deleting its file. Returns whether a
    /// checkpoint existed.
    pub fn cancel(path: &Path) -> bool {
        std::fs::remove_file(path).is_ok()
    }
}

/// The durable side of the wave-commit protocol: `record` stores one
/// fresh champion into the sharded repository, `publish` flushes the
/// shards and appends the wave's completed keys to the checkpoint — so
/// by the time a key is published, its champion is on disk. Interior
/// mutability (and a captured first error) because the protocol functions
/// are infallible `&self` so the model checker can drive the exact same
/// code on instrumented atomics.
struct RepoLedger<'a> {
    repository: std::cell::RefCell<&'a mut ShardedRepository>,
    /// Slot-indexed fresh champions; `record` takes each exactly once.
    fresh: std::cell::RefCell<Vec<Option<ModelRecord>>>,
    checkpoint: Option<&'a Path>,
    total: usize,
    ok_keys: &'a [String],
    error: std::cell::RefCell<Option<PlannerError>>,
}

impl RepoLedger<'_> {
    fn fail(&self, e: PlannerError) {
        let mut slot = self.error.borrow_mut();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
}

impl protocol::WaveLedger for RepoLedger<'_> {
    fn record(&self, slot: usize) {
        if self.error.borrow().is_some() {
            return;
        }
        let record = self.fresh.borrow_mut().get_mut(slot).and_then(Option::take);
        if let Some(record) = record {
            if let Err(e) = self.repository.borrow_mut().store(record) {
                self.fail(e);
            }
        }
    }

    fn publish(&self, _count: usize) {
        if self.error.borrow().is_some() {
            return;
        }
        let mut repository = self.repository.borrow_mut();
        if let Err(e) = repository.flush() {
            self.fail(e);
            return;
        }
        repository.evict_clean();
        if let Some(path) = self.checkpoint {
            if let Err(e) = Checkpoint::append(path, self.total, self.ok_keys) {
                self.fail(e);
            }
        }
    }
}

/// Streams an estate of jobs through the shared worker pool in
/// bounded-memory waves against a [`ShardedRepository`].
///
/// Each wave: materialise `wave_size` jobs from the [`JobSource`],
/// prefetch their stored champions (only the shards those keys hash to),
/// run the wave through [`run_batch_on`] — the exact legacy batch code
/// path, so champions are bit-identical to the all-at-once scheduler at
/// any thread count — then flush fresh champions, evict clean shards,
/// and append completed keys to the checkpoint. Waves are ordered
/// stalest-first (missing champions, then oldest `fitted_at`), with ties
/// broken by shard so a wave's repository traffic clusters on few shards.
pub struct EstateScheduler {
    /// Batch scheduling knobs (threads, reuse, staleness clock).
    pub fleet: FleetOptions,
    /// Wave size, checkpointing, early stop.
    pub waves: WaveOptions,
    /// The sharded champion store scanned and updated by each wave.
    pub repository: ShardedRepository,
}

impl EstateScheduler {
    /// A scheduler over an existing sharded repository.
    pub fn new(
        fleet: FleetOptions,
        waves: WaveOptions,
        repository: ShardedRepository,
    ) -> EstateScheduler {
        EstateScheduler {
            fleet,
            waves,
            repository,
        }
    }

    /// Run the scan without observing per-wave progress.
    pub fn run(&mut self, source: &dyn JobSource) -> Result<WaveReport> {
        self.run_with_progress(source, &mut |_, _| {})
    }

    /// Run the scan, invoking `on_wave` after each wave retires with a
    /// progress snapshot and the wave's per-job results (dropped when the
    /// callback returns — holding them all would unbound memory again).
    pub fn run_with_progress(
        &mut self,
        source: &dyn JobSource,
        on_wave: &mut dyn FnMut(&WaveProgress, &[JobResult]),
    ) -> Result<WaveReport> {
        let started = Instant::now();
        let wave_size = self.waves.effective_wave_size();

        // De-duplicate keys, first occurrence wins.
        let mut seen = BTreeSet::new();
        let keys: Vec<String> = source
            .keys()
            .into_iter()
            .filter(|k| seen.insert(k.clone()))
            .collect();
        let total_jobs = keys.len();

        // Checkpoint skips.
        let done: BTreeSet<String> = match &self.waves.checkpoint {
            Some(path) => Checkpoint::load(path),
            None => BTreeSet::new(),
        };
        let remaining: Vec<String> = keys.into_iter().filter(|k| !done.contains(k)).collect();
        let skipped = total_jobs - remaining.len();

        // Staleness scan: one pass over the involved shards, O(keys) memory.
        let fitted = self.repository.fitted_at_many(&remaining)?;

        // Stalest first — missing champions (None sorts before Some), then
        // oldest fitted_at; ties cluster by shard then key so each wave's
        // prefetch and flush touch as few shard files as possible.
        let n_shards = self.repository.n_shards();
        let mut ordered: Vec<(Option<u64>, usize, String)> = remaining
            .into_iter()
            .zip(fitted)
            .map(|(key, fitted_at)| (fitted_at, shard_of(&key, n_shards), key))
            .collect();
        ordered.sort_unstable();

        let jobs_total = ordered.len();
        let total_waves = jobs_total.div_ceil(wave_size.max(1));
        let mut report = WaveReport {
            total_jobs,
            skipped,
            waves: 0,
            completed: 0,
            failed: 0,
            stats: EvalStats::default(),
            peak_wave_bytes: 0,
            stopped_early: false,
        };

        for (wave_idx, wave) in ordered.chunks(wave_size).enumerate() {
            if self.waves.max_waves > 0 && wave_idx >= self.waves.max_waves {
                report.stopped_early = true;
                break;
            }
            let wave_started = Instant::now();

            // Materialise the wave's jobs; a load failure fails that job
            // only (and leaves it un-checkpointed for the next run).
            let mut jobs: Vec<SeriesJob> = Vec::with_capacity(wave.len());
            let mut prefetch: Vec<String> = Vec::new();
            for (fitted_at, _, key) in wave {
                match source.load(key) {
                    Ok(job) => {
                        if fitted_at.is_some() {
                            // Only keys with a stored record can hit the
                            // prefetch; cold keys must not load shards.
                            prefetch.push(key.clone());
                        }
                        jobs.push(job);
                    }
                    Err(_) => report.failed += 1,
                }
            }
            let wave_bytes: usize = jobs
                .iter()
                .map(|j| {
                    (j.series.values().len() + j.exog.iter().map(Vec::len).sum::<usize>())
                        * std::mem::size_of::<f64>()
                })
                .sum();
            report.peak_wave_bytes = report.peak_wave_bytes.max(wave_bytes);

            let mut store = WaveStore {
                policy: self.repository.policy,
                records: self.repository.fetch_many(&prefetch)?,
                fresh: Vec::new(),
            };
            let batch = run_batch_on(&self.fleet, &mut store, &jobs);
            drop(jobs);

            let ok_keys: Vec<String> = batch
                .jobs
                .iter()
                .filter(|j| j.outcome.is_ok())
                .map(|j| j.key.clone())
                .collect();
            report.completed += ok_keys.len();
            report.failed += batch.jobs.len() - ok_keys.len();

            // Persist the wave's champions, then checkpoint — the
            // record-then-publish commit protocol, so a checkpointed key's
            // champion is always on disk.
            let fresh: Vec<Option<ModelRecord>> = store.fresh.drain(..).map(Some).collect();
            let slots = fresh.len();
            let ledger = RepoLedger {
                repository: std::cell::RefCell::new(&mut self.repository),
                fresh: std::cell::RefCell::new(fresh),
                checkpoint: self.waves.checkpoint.as_deref(),
                total: total_jobs,
                ok_keys: &ok_keys,
                error: std::cell::RefCell::new(None),
            };
            protocol::commit_wave(&ledger, slots);
            if let Some(e) = ledger.error.into_inner() {
                return Err(e);
            }

            report.stats.merge(&batch.stats);
            report.waves += 1;
            let progress = WaveProgress {
                wave: wave_idx + 1,
                total_waves,
                jobs_done: report.completed + report.failed,
                jobs_total,
                wave_wall: wave_started.elapsed(),
                wave_bytes,
            };
            on_wave(&progress, &batch.jobs);
        }
        if report.waves < total_waves && !report.stopped_early {
            // Unreachable today (the loop only exits early via max_waves),
            // but keep the invariant: waves < total ⇒ stopped_early.
            report.stopped_early = true;
        }
        report.stats.wall_time = started.elapsed();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::EvaluationOptions;
    use dwcp_series::{Frequency, Granularity};

    fn hourly_series(n: usize, phase: u64) -> TimeSeries {
        let values: Vec<f64> = (0..n)
            .map(|t| {
                let tf = t as f64;
                90.0 + 0.03 * tf
                    + 22.0 * (2.0 * std::f64::consts::PI * (tf + phase as f64) / 24.0).sin()
                    + ((t as u64 * 2654435761 % (83 + phase)) as f64) / 18.0
            })
            .collect();
        TimeSeries::new(values, Frequency::Hourly, 0)
    }

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            method: MethodChoice::Sarimax,
            grid: Default::default(),
            granularity: Granularity::Hourly,
            max_candidates: 3,
            fourier_stage: false,
            auto_detect_shocks: false,
            eval: EvaluationOptions {
                fit: dwcp_models::arima::ArimaOptions {
                    max_evals: 120,
                    restarts: 0,
                    interval_level: 0.95,
                    ..Default::default()
                },
                ..Default::default()
            },
        }
    }

    fn batch(n_jobs: usize) -> Vec<SeriesJob> {
        (0..n_jobs)
            .map(|i| {
                SeriesJob::new(
                    format!("cdbm01{i}/CPU/hourly"),
                    hourly_series(1100, i as u64 * 7),
                    fast_config(),
                )
            })
            .collect()
    }

    #[test]
    fn batch_results_match_sequential_pipeline_runs() {
        let jobs = batch(3);
        let mut scheduler = FleetScheduler::new(FleetOptions {
            threads: 4,
            ..Default::default()
        });
        let report = scheduler.run_batch(&jobs);
        assert_eq!(report.jobs.len(), 3);
        for (job, result) in jobs.iter().zip(&report.jobs) {
            let fleet_outcome = result.outcome.as_ref().unwrap();
            let solo = Pipeline::new(job.config.clone())
                .run(&job.series, &job.exog)
                .unwrap();
            assert_eq!(fleet_outcome.champion, solo.champion);
            assert_eq!(
                fleet_outcome.accuracy.rmse.to_bits(),
                solo.accuracy.rmse.to_bits(),
                "job {}",
                job.key
            );
        }
        // An empty repository means every job was a reuse miss.
        assert_eq!(report.stats.reuse_hits, 0);
        assert_eq!(report.stats.reuse_misses, 3);
        assert_eq!(scheduler.repository.len(), 3);
    }

    #[test]
    fn batch_is_deterministic_across_thread_counts() {
        // Mixed-family batch: two SARIMAX grids and one HES menu racing
        // through the same shared pool must stay bit-identical at any
        // thread count.
        let mut jobs = batch(2);
        let mut hes = fast_config();
        hes.method = MethodChoice::Hes;
        jobs.push(SeriesJob::new(
            "cdbm013/Memory/hourly",
            hourly_series(1100, 5),
            hes,
        ));
        let baseline = FleetScheduler::new(FleetOptions {
            threads: 1,
            ..Default::default()
        })
        .run_batch(&jobs);
        for threads in [2, 4, 8] {
            let report = FleetScheduler::new(FleetOptions {
                threads,
                ..Default::default()
            })
            .run_batch(&jobs);
            for (a, b) in baseline.jobs.iter().zip(&report.jobs) {
                let (a, b) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
                assert_eq!(a.champion, b.champion, "threads = {threads}");
                assert_eq!(
                    a.accuracy.rmse.to_bits(),
                    b.accuracy.rmse.to_bits(),
                    "threads = {threads}"
                );
            }
        }
    }

    #[test]
    fn second_batch_reuses_stored_champions() {
        let jobs = batch(2);
        let mut scheduler = FleetScheduler::new(FleetOptions {
            threads: 4,
            ..Default::default()
        });
        let cold = scheduler.run_batch(&jobs);
        let relearn = scheduler.run_batch(&jobs);
        assert_eq!(relearn.stats.reuse_hits, 2);
        assert_eq!(relearn.stats.reuse_misses, 0);
        assert_eq!(relearn.stats.reuse_fallbacks, 0);
        assert_eq!(relearn.stats.reuse_rate(), Some(1.0));
        for (c, r) in cold.jobs.iter().zip(&relearn.jobs) {
            assert!(r.reused && !r.fell_back);
            let (c, r) = (c.outcome.as_ref().unwrap(), r.outcome.as_ref().unwrap());
            // Same data ⇒ the seeded neighbourhood relearn must keep (or
            // beat) the cold champion's held-out RMSE.
            assert!(
                r.accuracy.rmse <= c.accuracy.rmse * (1.0 + 1e-9),
                "reuse {} vs cold {}",
                r.accuracy.rmse,
                c.accuracy.rmse
            );
            // And it fits far less: the neighbourhood is a fraction of the
            // pruned grid... unless the grid cap is already tiny, so just
            // check the evaluation actually ran.
            assert!(r.evaluated > 0);
        }
    }

    #[test]
    fn degraded_champion_falls_back_to_full_grid() {
        let jobs = batch(1);
        let mut scheduler = FleetScheduler::new(FleetOptions {
            threads: 4,
            ..Default::default()
        });
        scheduler.run_batch(&jobs);
        // Sabotage the stored baseline so any relearn RMSE looks degraded.
        let mut record = scheduler.repository.get(&jobs[0].key).unwrap().clone();
        record.baseline_rmse = 1e-12;
        scheduler.repository.store(record);
        let report = scheduler.run_batch(&jobs);
        assert_eq!(report.stats.reuse_hits, 1);
        assert_eq!(report.stats.reuse_fallbacks, 1);
        assert!(report.jobs[0].reused && report.jobs[0].fell_back);
        // The fallback is the cold full-grid result.
        let solo = Pipeline::new(jobs[0].config.clone())
            .run(&jobs[0].series, &jobs[0].exog)
            .unwrap();
        let outcome = report.jobs[0].outcome.as_ref().unwrap();
        assert_eq!(outcome.champion, solo.champion);
        assert_eq!(
            outcome.accuracy.rmse.to_bits(),
            solo.accuracy.rmse.to_bits()
        );
    }

    #[test]
    fn stale_champion_is_not_reused() {
        let jobs = batch(1);
        let mut scheduler = FleetScheduler::new(FleetOptions {
            threads: 4,
            now: 0,
            ..Default::default()
        });
        scheduler.run_batch(&jobs);
        scheduler.options.now = crate::repository::ONE_WEEK_SECONDS + 1;
        let report = scheduler.run_batch(&jobs);
        assert_eq!(report.stats.reuse_hits, 0);
        assert_eq!(report.stats.reuse_misses, 1);
        assert!(!report.jobs[0].reused);
    }

    #[test]
    fn mixed_method_batch_runs_all_jobs() {
        let mut jobs = batch(1);
        let mut hes = fast_config();
        hes.method = MethodChoice::Hes;
        jobs.push(SeriesJob::new(
            "cdbm011/Memory/hourly",
            hourly_series(1100, 3),
            hes,
        ));
        let mut scheduler = FleetScheduler::new(FleetOptions::default());
        let report = scheduler.run_batch(&jobs);
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs.iter().all(|j| j.outcome.is_ok()));
        // Both land in the repository; the HES record now carries a full
        // champion seed (frozen converged smoothing parameters).
        assert_eq!(scheduler.repository.len(), 2);
        let record = scheduler.repository.get("cdbm011/Memory/hourly").unwrap();
        let (config, params, _) = record
            .champion_seed()
            .expect("HES champion persists a seed");
        assert!(config.as_ets().is_some(), "stored config: {config:?}");
        assert!(!params.is_empty());
    }

    #[test]
    fn smoothing_champions_reuse_like_sarimax_ones() {
        // An HES job's second batch must be a reuse hit seeded from the
        // stored champion, and on unchanged data the seeded relearn must
        // keep (or beat) the cold champion's held-out RMSE.
        let mut hes = fast_config();
        hes.method = MethodChoice::Hes;
        let jobs = vec![SeriesJob::new(
            "cdbm011/Memory/hourly",
            hourly_series(1100, 3),
            hes,
        )];
        let mut scheduler = FleetScheduler::new(FleetOptions::default());
        let cold = scheduler.run_batch(&jobs);
        let relearn = scheduler.run_batch(&jobs);
        assert_eq!(relearn.stats.reuse_hits, 1);
        assert_eq!(relearn.stats.reuse_fallbacks, 0);
        assert!(relearn.jobs[0].reused && !relearn.jobs[0].fell_back);
        let (c, r) = (
            cold.jobs[0].outcome.as_ref().unwrap(),
            relearn.jobs[0].outcome.as_ref().unwrap(),
        );
        assert!(
            r.accuracy.rmse <= c.accuracy.rmse * (1.0 + 1e-9),
            "reuse {} vs cold {}",
            r.accuracy.rmse,
            c.accuracy.rmse
        );
        assert!(r.champion.starts_with(&c.champion[..4]), "{}", r.champion);
    }

    #[test]
    fn too_short_series_fails_its_job_only() {
        let mut jobs = batch(1);
        jobs.push(SeriesJob::new(
            "cdbm012/CPU/hourly",
            hourly_series(100, 0),
            fast_config(),
        ));
        let mut scheduler = FleetScheduler::new(FleetOptions::default());
        let report = scheduler.run_batch(&jobs);
        assert!(report.jobs[0].outcome.is_ok());
        assert!(report.jobs[1].outcome.is_err());
        assert_eq!(scheduler.repository.len(), 1);
    }

    /// Fresh scratch directory for a wave-scheduler test.
    fn estate_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dwcp_waves_{}_{}", name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn estate_scheduler(dir: &Path, threads: usize, waves: WaveOptions) -> EstateScheduler {
        let repository = ShardedRepository::open_or_create(dir, 4).unwrap();
        EstateScheduler::new(
            FleetOptions {
                threads,
                ..Default::default()
            },
            waves,
            repository,
        )
    }

    #[test]
    fn wave_scheduler_matches_legacy_batch_at_all_thread_counts() {
        // Mixed-family batch through waves of 2: champions and RMSEs must
        // be bit-identical to the legacy all-at-once scheduler, whatever
        // the thread count.
        let mut jobs = batch(2);
        let mut hes = fast_config();
        hes.method = MethodChoice::Hes;
        jobs.push(SeriesJob::new(
            "cdbm013/Memory/hourly",
            hourly_series(1100, 5),
            hes,
        ));
        let mut legacy = FleetScheduler::new(FleetOptions {
            threads: 1,
            ..Default::default()
        });
        let baseline = legacy.run_batch(&jobs);

        for threads in [1, 2, 4, 8] {
            let dir = estate_dir(&format!("parity{threads}"));
            let mut estate = estate_scheduler(
                &dir,
                threads,
                WaveOptions {
                    wave_size: 2,
                    ..Default::default()
                },
            );
            let mut by_key: BTreeMap<String, (String, u64)> = BTreeMap::new();
            let report = estate
                .run_with_progress(&SliceJobSource::new(&jobs), &mut |_, results| {
                    for r in results {
                        let outcome = r.outcome.as_ref().unwrap();
                        by_key.insert(
                            r.key.clone(),
                            (outcome.champion.clone(), outcome.accuracy.rmse.to_bits()),
                        );
                    }
                })
                .unwrap();
            assert_eq!(report.waves, 2);
            assert_eq!(report.completed, 3);
            assert!(report.peak_wave_bytes <= 2 * (1100 + 1) * 8);
            for b in &baseline.jobs {
                let outcome = b.outcome.as_ref().unwrap();
                let (champion, rmse_bits) = by_key.get(&b.key).unwrap();
                assert_eq!(champion, &outcome.champion, "threads = {threads}");
                assert_eq!(
                    *rmse_bits,
                    outcome.accuracy.rmse.to_bits(),
                    "threads = {threads}"
                );
            }
            // The persisted shard records match the legacy repository's.
            let mut back = ShardedRepository::open(&dir).unwrap();
            for b in &baseline.jobs {
                assert_eq!(
                    back.get(&b.key).unwrap(),
                    legacy.repository.get(&b.key),
                    "threads = {threads}"
                );
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn killed_scan_resumes_from_checkpoint_without_refitting() {
        let jobs = batch(4);
        let dir = estate_dir("resume");
        let checkpoint = dir.join("relearn.ckpt");

        // First run is "killed" after one wave of two jobs.
        let mut first = estate_scheduler(
            &dir,
            1,
            WaveOptions {
                wave_size: 2,
                checkpoint: Some(checkpoint.clone()),
                max_waves: 1,
            },
        );
        let killed = first.run(&SliceJobSource::new(&jobs)).unwrap();
        assert!(killed.stopped_early);
        assert_eq!(killed.waves, 1);
        assert_eq!(killed.completed, 2);
        assert_eq!(Checkpoint::load(&checkpoint).len(), 2);

        // Resume: the two checkpointed jobs are skipped, the other two fit.
        let mut resumed = estate_scheduler(
            &dir,
            1,
            WaveOptions {
                wave_size: 2,
                checkpoint: Some(checkpoint.clone()),
                max_waves: 0,
            },
        );
        let finished = resumed.run(&SliceJobSource::new(&jobs)).unwrap();
        assert!(!finished.stopped_early);
        assert_eq!(finished.skipped, 2, "checkpointed jobs are not refit");
        assert_eq!(finished.completed, 2);
        assert_eq!(resumed.repository.count_records().unwrap(), 4);

        // Cancel deletes the checkpoint; a fresh scan skips nothing.
        assert!(Checkpoint::cancel(&checkpoint));
        assert!(!Checkpoint::cancel(&checkpoint), "already gone");
        assert!(Checkpoint::load(&checkpoint).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_are_not_checkpointed_and_retry_on_resume() {
        let mut jobs = batch(2);
        jobs.push(SeriesJob::new(
            "cdbm019/CPU/hourly",
            hourly_series(100, 0), // far too short: plan fails
            fast_config(),
        ));
        let dir = estate_dir("retry");
        let checkpoint = dir.join("relearn.ckpt");
        let opts = WaveOptions {
            wave_size: 8,
            checkpoint: Some(checkpoint.clone()),
            max_waves: 0,
        };
        let first = estate_scheduler(&dir, 1, opts.clone())
            .run(&SliceJobSource::new(&jobs))
            .unwrap();
        assert_eq!(first.completed, 2);
        assert_eq!(first.failed, 1);
        assert_eq!(Checkpoint::load(&checkpoint).len(), 2);

        let second = estate_scheduler(&dir, 1, opts)
            .run(&SliceJobSource::new(&jobs))
            .unwrap();
        assert_eq!(second.skipped, 2);
        assert_eq!(second.failed, 1, "the broken job is retried, not buried");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_survives_a_torn_tail() {
        let dir = estate_dir("ckpt_torn");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.ckpt");
        let keys: Vec<String> = (0..3).map(|i| format!("w{i}/CPU")).collect();
        Checkpoint::append(&path, 10, &keys).unwrap();

        // Chop the file mid-line (a crash during append).
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let done = Checkpoint::load(&path);
        assert_eq!(done.len(), 2, "torn key dropped, prefix kept");

        // Appending after the tear must not merge into the torn line.
        Checkpoint::append(&path, 10, &["w9/CPU".to_string()]).unwrap();
        let done = Checkpoint::load(&path);
        assert!(done.contains("w9/CPU"));
        assert_eq!(done.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_keys_run_once() {
        let mut jobs = batch(1);
        let dup = jobs[0].clone();
        jobs.push(dup);
        let dir = estate_dir("dup");
        let mut estate = estate_scheduler(&dir, 1, WaveOptions::default());
        let report = estate.run(&SliceJobSource::new(&jobs)).unwrap();
        assert_eq!(report.total_jobs, 1);
        assert_eq!(report.completed, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
