//! The lock-free champion-selection protocol, isolated from the engine.
//!
//! Two pieces of `evaluate.rs` carry the entire correctness burden of the
//! parallel grid search:
//!
//! 1. the **atomic incumbent** — workers racing candidate fits publish
//!    their best RMSE into a shared `AtomicU64` so slower fits can be
//!    abandoned, and
//! 2. the **deterministic tie-break** — the final champion is the minimum
//!    under `(rmse, candidate_index)` order, so exact RMSE ties resolve to
//!    the earlier candidate regardless of which worker finished first.
//!
//! Both are defined here, generic over the atomic cell, so the bounded
//! model checker in `tests/model_check.rs` can drive the *same code* (not
//! a transcription of it) through every interleaving of its atomic
//! operations via the `interleave` scheduler, while the engine runs it on
//! a plain `std` atomic with uncontended `Relaxed` ordering.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};

/// The one capability the incumbent protocol needs from its storage cell:
/// a 64-bit load and compare-exchange. `evaluate.rs` provides a plain
/// [`AtomicU64`]; the model checker provides an instrumented cell whose
/// operations are scheduling points.
pub trait IncumbentCell {
    /// Load the current bit pattern.
    fn load_bits(&self) -> u64;
    /// Compare-exchange: replace `current` with `new`, returning the
    /// previously-stored bits on failure. May fail spuriously (the weak
    /// variant is permitted); the caller retries.
    fn compare_exchange_bits(&self, current: u64, new: u64) -> std::result::Result<u64, u64>;
}

impl IncumbentCell for AtomicU64 {
    fn load_bits(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    fn compare_exchange_bits(&self, current: u64, new: u64) -> std::result::Result<u64, u64> {
        // Relaxed suffices: the incumbent is a monotone scalar used only as
        // a pruning hint, never as a synchronisation edge.
        self.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

/// Publish `value` as a candidate incumbent RMSE: atomic minimum over
/// non-negative finite f64s stored as bit patterns (the IEEE ordering of
/// non-negative floats matches their bit ordering, so the integer CAS
/// implements the float minimum).
///
/// NaN, infinities and negative values are rejected at the door — a
/// poisoned score can never become the incumbent, so racing can never
/// abandon fits against a bogus bound.
pub fn publish_min_rmse<C: IncumbentCell>(cell: &C, value: f64) {
    if !value.is_finite() || value < 0.0 {
        return;
    }
    let mut current = cell.load_bits();
    while value < f64::from_bits(current) {
        match cell.compare_exchange_bits(current, value.to_bits()) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// The deterministic champion order: best RMSE first under the total f64
/// order (NaN greatest, so a poisoned score can never win), exact ties
/// broken by candidate index so the earlier grid entry wins regardless of
/// worker scheduling.
pub fn score_order(a_rmse: f64, a_index: usize, b_rmse: f64, b_index: usize) -> CmpOrdering {
    dwcp_math::total_cmp_f64(a_rmse, b_rmse).then(a_index.cmp(&b_index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_monotone_minimum() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, 5.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 5.0);
        publish_min_rmse(&cell, 7.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 5.0);
        publish_min_rmse(&cell, 2.5);
        assert_eq!(f64::from_bits(cell.load_bits()), 2.5);
    }

    #[test]
    fn rejects_nan_inf_and_negative() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, f64::NAN);
        publish_min_rmse(&cell, f64::NEG_INFINITY);
        publish_min_rmse(&cell, -1.0);
        assert_eq!(f64::from_bits(cell.load_bits()), f64::INFINITY);
    }

    #[test]
    fn zero_is_a_legal_incumbent() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, 0.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 0.0);
    }

    #[test]
    fn tie_break_prefers_earlier_index() {
        assert_eq!(score_order(1.0, 3, 1.0, 7), CmpOrdering::Less);
        assert_eq!(score_order(1.0, 7, 1.0, 3), CmpOrdering::Greater);
        assert_eq!(score_order(0.5, 9, 1.0, 0), CmpOrdering::Less);
    }

    #[test]
    fn nan_sorts_after_every_real_score() {
        assert_eq!(score_order(f64::NAN, 0, 1e12, 99), CmpOrdering::Greater);
        assert_eq!(score_order(1e12, 99, f64::NAN, 0), CmpOrdering::Less);
    }
}
