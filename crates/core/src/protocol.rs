//! The concurrency protocols of the engine, isolated from their drivers.
//!
//! Every piece of the workspace whose correctness depends on the order of
//! atomic (or atomic-like durable) operations is defined here, generic
//! over its storage cell, so the bounded model checker in
//! `tests/model_check.rs` can drive the *same code* (not a transcription
//! of it) through every interleaving of those operations via the vendored
//! `interleave` scheduler, while production runs it on plain `std` atomics
//! or real files. Four protocols live here:
//!
//! 1. the **atomic incumbent** ([`publish_min_rmse`]) — workers racing
//!    candidate fits publish their best RMSE into a shared `AtomicU64` so
//!    slower fits can be abandoned — plus the **deterministic tie-break**
//!    ([`score_order`]): the champion is the minimum under
//!    `(rmse, candidate_index)` order, so exact RMSE ties resolve to the
//!    earlier candidate regardless of which worker finished first;
//! 2. the **wave-commit ledger** ([`commit_wave`] over [`WaveLedger`]) —
//!    the estate scheduler's record-then-publish checkpoint discipline: a
//!    kill between (or during) waves can force refits but can never
//!    publish a job whose champion is not durable;
//! 3. the **shutdown drain gate** ([`request_shutdown`] / [`accept_one`]
//!    over [`DrainFlag`]) — the serve daemon's flag-then-wake trigger and
//!    enqueue-then-check acceptor, so a request that wins the accept race
//!    against shutdown is served, never dropped;
//! 4. the **alert re-fire hysteresis** ([`alert_refire`], [`try_fire`]) —
//!    the de-duplication decision of the alert engine, plus its CAS-claim
//!    form under which concurrent observers fire exactly once.

use crate::advisor::BreachSeverity;
use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The one capability the incumbent protocol needs from its storage cell:
/// a 64-bit load and compare-exchange. `evaluate.rs` provides a plain
/// [`AtomicU64`]; the model checker provides an instrumented cell whose
/// operations are scheduling points.
pub trait IncumbentCell {
    /// Load the current bit pattern.
    fn load_bits(&self) -> u64;
    /// Compare-exchange: replace `current` with `new`, returning the
    /// previously-stored bits on failure. May fail spuriously (the weak
    /// variant is permitted); the caller retries.
    fn compare_exchange_bits(&self, current: u64, new: u64) -> std::result::Result<u64, u64>;
}

impl IncumbentCell for AtomicU64 {
    fn load_bits(&self) -> u64 {
        self.load(Ordering::Relaxed)
    }

    fn compare_exchange_bits(&self, current: u64, new: u64) -> std::result::Result<u64, u64> {
        // Relaxed suffices: the incumbent is a monotone scalar used only as
        // a pruning hint, never as a synchronisation edge.
        self.compare_exchange_weak(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }
}

/// Publish `value` as a candidate incumbent RMSE: atomic minimum over
/// non-negative finite f64s stored as bit patterns (the IEEE ordering of
/// non-negative floats matches their bit ordering, so the integer CAS
/// implements the float minimum).
///
/// NaN, infinities and negative values are rejected at the door — a
/// poisoned score can never become the incumbent, so racing can never
/// abandon fits against a bogus bound.
pub fn publish_min_rmse<C: IncumbentCell>(cell: &C, value: f64) {
    if !value.is_finite() || value < 0.0 {
        return;
    }
    let mut current = cell.load_bits();
    while value < f64::from_bits(current) {
        match cell.compare_exchange_bits(current, value.to_bits()) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

/// The deterministic champion order: best RMSE first under the total f64
/// order (NaN greatest, so a poisoned score can never win), exact ties
/// broken by candidate index so the earlier grid entry wins regardless of
/// worker scheduling.
pub fn score_order(a_rmse: f64, a_index: usize, b_rmse: f64, b_index: usize) -> CmpOrdering {
    dwcp_math::total_cmp_f64(a_rmse, b_rmse).then(a_index.cmp(&b_index))
}

// --- Protocol 2: the wave-commit ledger ---

/// The two durable operations of the estate scheduler's checkpoint
/// protocol. In production (`fleet.rs`) `record` stores one champion into
/// the sharded repository and `publish` flushes the shards and appends the
/// wave's keys to the checkpoint file; in the model checker both are
/// instrumented atomics.
pub trait WaveLedger {
    /// Make slot `slot`'s champion durable.
    fn record(&self, slot: usize);
    /// Publish that the wave's `count` slots are committed.
    fn publish(&self, count: usize);
}

/// Commit one wave of `count` jobs: record every slot, **then** publish.
/// Record-then-publish is the entire crash-safety argument — whatever the
/// published state claims committed has already been made durable, so a
/// kill at any point forces at most a refit of unpublished work and can
/// never lose a published champion. `tests/model_check.rs` proves the
/// ordering holds under every interleaving with a concurrent resume
/// observer, and that the inverted (publish-first) variant is caught.
pub fn commit_wave<L: WaveLedger>(ledger: &L, count: usize) {
    for slot in 0..count {
        ledger.record(slot);
    }
    ledger.publish(count);
}

/// Resume arithmetic shared by the model check and the scheduler's
/// reporting: of `total` jobs with `committed` already published, how many
/// are skipped and how many must (re)fit. A stale over-long checkpoint is
/// clamped; skip + refit always partitions the job list, so no job is
/// both skipped and refit (never double-fit) and none falls through.
pub fn resume_split(total: usize, committed: usize) -> (usize, usize) {
    let skipped = committed.min(total);
    (skipped, total - skipped)
}

// --- Protocol 3: the shutdown drain gate ---

/// The stop flag shared by the serve daemon's acceptor and its shutdown
/// trigger. Production uses a plain [`AtomicBool`]; the model checker an
/// instrumented one.
pub trait DrainFlag {
    /// Whether shutdown has been requested.
    fn is_set(&self) -> bool;
    /// Request shutdown.
    fn set(&self);
}

impl DrainFlag for AtomicBool {
    fn is_set(&self) -> bool {
        self.load(Ordering::SeqCst)
    }

    fn set(&self) {
        self.store(true, Ordering::SeqCst)
    }
}

/// Trigger side of the drain gate: set the flag **before** running `wake`
/// (the self-connect that unblocks the acceptor). An acceptor woken by
/// the wake connection is therefore guaranteed to observe the stop — the
/// inverted order could wake an acceptor that then parks in `accept`
/// again and never exits.
pub fn request_shutdown<F: DrainFlag>(flag: &F, wake: impl FnOnce()) {
    flag.set();
    wake();
}

/// Acceptor side of the drain gate, one accepted connection: hand the
/// stream to the worker pool **before** consulting the flag, then report
/// whether the acceptor should stop. `enqueue` returns whether the pool
/// is still there; a dead pool stops the acceptor too. Enqueue-then-check
/// means a real request that won the accept race against shutdown is
/// served (the workers drain the channel before exiting), never dropped —
/// the check-then-drop shape this replaces is re-seeded and caught in
/// `tests/model_check.rs`.
pub fn accept_one<F: DrainFlag>(flag: &F, enqueue: impl FnOnce() -> bool) -> bool {
    let pool_alive = enqueue();
    !pool_alive || flag.is_set()
}

// --- Protocol 4: alert re-fire hysteresis ---

/// The alert engine's re-fire decision (`alerts.rs` firing policy): a
/// fresh breach observation fires when there is no last-fired state, when
/// the breach moved to an earlier horizon step, or when it escalated from
/// [`BreachSeverity::Possible`] to [`BreachSeverity::Expected`]. A breach
/// that merely persists unchanged stays silent.
pub fn alert_refire(
    prev: Option<(usize, BreachSeverity)>,
    step: usize,
    severity: BreachSeverity,
) -> bool {
    match prev {
        None => true,
        Some((prev_step, prev_severity)) => {
            step < prev_step
                || (prev_severity == BreachSeverity::Possible
                    && severity == BreachSeverity::Expected)
        }
    }
}

/// The empty claim cell: no breach state has ever been fired.
pub const BREACH_EMPTY: u64 = 0;

/// Widest horizon step the claim encoding can carry (62 bits is far past
/// any real forecast horizon; wider steps saturate rather than corrupt
/// the occupancy flag).
const BREACH_STEP_MAX: u64 = (1 << 62) - 1;

/// Encode a fired breach state into the 64-bit claim cell: bit 63 marks
/// the cell occupied, bit 0 the severity, bits 1..63 the step.
pub fn encode_breach(step: usize, severity: BreachSeverity) -> u64 {
    let step = (step as u64).min(BREACH_STEP_MAX);
    let expected = u64::from(severity == BreachSeverity::Expected);
    (1 << 63) | (step << 1) | expected
}

/// Decode a claim cell; [`BREACH_EMPTY`] (and any bits without the
/// occupancy flag) decodes to `None`.
pub fn decode_breach(bits: u64) -> Option<(usize, BreachSeverity)> {
    if bits & (1 << 63) == 0 {
        return None;
    }
    let step = ((bits >> 1) & BREACH_STEP_MAX) as usize;
    let severity = if bits & 1 == 1 {
        BreachSeverity::Expected
    } else {
        BreachSeverity::Possible
    };
    Some((step, severity))
}

/// Claim the right to fire for a fresh breach observation: the lock-free
/// form of [`alert_refire`] for concurrent observers of the same
/// `(workload, rule)` cell. The claim CAS loses to a concurrent fire of
/// the same (or better) news, so identical simultaneous observations fire
/// **exactly once** and an escalation always lands — proven under every
/// interleaving in `tests/model_check.rs`. The resident engine serialises
/// scans behind its mutex and uses [`alert_refire`] directly; this is the
/// same decision under contention.
pub fn try_fire<C: IncumbentCell>(cell: &C, step: usize, severity: BreachSeverity) -> bool {
    let mut current = cell.load_bits();
    loop {
        if !alert_refire(decode_breach(current), step, severity) {
            return false;
        }
        match cell.compare_exchange_bits(current, encode_breach(step, severity)) {
            Ok(_) => return true,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_monotone_minimum() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, 5.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 5.0);
        publish_min_rmse(&cell, 7.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 5.0);
        publish_min_rmse(&cell, 2.5);
        assert_eq!(f64::from_bits(cell.load_bits()), 2.5);
    }

    #[test]
    fn rejects_nan_inf_and_negative() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, f64::NAN);
        publish_min_rmse(&cell, f64::NEG_INFINITY);
        publish_min_rmse(&cell, -1.0);
        assert_eq!(f64::from_bits(cell.load_bits()), f64::INFINITY);
    }

    #[test]
    fn zero_is_a_legal_incumbent() {
        let cell = AtomicU64::new(f64::INFINITY.to_bits());
        publish_min_rmse(&cell, 0.0);
        assert_eq!(f64::from_bits(cell.load_bits()), 0.0);
    }

    #[test]
    fn tie_break_prefers_earlier_index() {
        assert_eq!(score_order(1.0, 3, 1.0, 7), CmpOrdering::Less);
        assert_eq!(score_order(1.0, 7, 1.0, 3), CmpOrdering::Greater);
        assert_eq!(score_order(0.5, 9, 1.0, 0), CmpOrdering::Less);
    }

    #[test]
    fn nan_sorts_after_every_real_score() {
        assert_eq!(score_order(f64::NAN, 0, 1e12, 99), CmpOrdering::Greater);
        assert_eq!(score_order(1e12, 99, f64::NAN, 0), CmpOrdering::Less);
    }

    #[test]
    fn commit_wave_records_every_slot_before_publishing() {
        use std::cell::RefCell;
        #[derive(Default)]
        struct Trace(RefCell<Vec<String>>);
        impl WaveLedger for Trace {
            fn record(&self, slot: usize) {
                self.0.borrow_mut().push(format!("record {slot}"));
            }
            fn publish(&self, count: usize) {
                self.0.borrow_mut().push(format!("publish {count}"));
            }
        }
        let ledger = Trace::default();
        commit_wave(&ledger, 3);
        assert_eq!(
            *ledger.0.borrow(),
            vec!["record 0", "record 1", "record 2", "publish 3"]
        );
        let empty = Trace::default();
        commit_wave(&empty, 0);
        assert_eq!(*empty.0.borrow(), vec!["publish 0"]);
    }

    #[test]
    fn resume_split_partitions_and_clamps() {
        assert_eq!(resume_split(10, 4), (4, 6));
        assert_eq!(resume_split(10, 0), (0, 10));
        assert_eq!(resume_split(10, 10), (10, 0));
        // A stale checkpoint claiming more than the estate holds clamps.
        assert_eq!(resume_split(10, 99), (10, 0));
        for committed in 0..12 {
            let (skip, refit) = resume_split(10, committed);
            assert_eq!(skip + refit, 10);
        }
    }

    #[test]
    fn drain_gate_orders_flag_before_wake_and_enqueue_before_check() {
        let flag = AtomicBool::new(false);
        let mut woke_with_flag_set = false;
        request_shutdown(&flag, || woke_with_flag_set = flag.is_set());
        assert!(woke_with_flag_set, "wake ran before the flag was set");

        // Enqueue happens even when the flag is already up (the stream was
        // accepted; dropping it now would lose a request) — the gate just
        // tells the acceptor to stop afterwards.
        let mut enqueued = false;
        let stop = accept_one(&flag, || {
            enqueued = true;
            true
        });
        assert!(enqueued);
        assert!(stop);

        // Flag down, pool alive: keep accepting.
        let open = AtomicBool::new(false);
        assert!(!accept_one(&open, || true));
        // Dead pool stops the acceptor regardless of the flag.
        assert!(accept_one(&open, || false));
    }

    #[test]
    fn refire_decision_matches_the_firing_policy() {
        use BreachSeverity::{Expected, Possible};
        assert!(alert_refire(None, 5, Possible));
        assert!(alert_refire(Some((5, Possible)), 3, Possible)); // earlier
        assert!(alert_refire(Some((5, Possible)), 5, Expected)); // escalated
        assert!(!alert_refire(Some((5, Possible)), 5, Possible)); // unchanged
        assert!(!alert_refire(Some((5, Possible)), 7, Possible)); // later
        assert!(!alert_refire(Some((5, Expected)), 5, Possible)); // de-escalated
        assert!(!alert_refire(Some((5, Expected)), 6, Expected)); // later
    }

    #[test]
    fn breach_encoding_round_trips() {
        use BreachSeverity::{Expected, Possible};
        assert_eq!(decode_breach(BREACH_EMPTY), None);
        for (step, severity) in [
            (0, Possible),
            (0, Expected),
            (7, Possible),
            (1 << 40, Expected),
        ] {
            let bits = encode_breach(step, severity);
            assert_eq!(decode_breach(bits), Some((step, severity)));
        }
        // Saturating, not corrupting, beyond the encodable range.
        let huge = encode_breach(usize::MAX, Possible);
        assert_eq!(decode_breach(huge), Some(((1 << 62) - 1, Possible)));
    }

    #[test]
    fn try_fire_claims_once_then_obeys_hysteresis() {
        use BreachSeverity::{Expected, Possible};
        let cell = AtomicU64::new(BREACH_EMPTY);
        assert!(try_fire(&cell, 4, Possible));
        assert!(!try_fire(&cell, 4, Possible), "unchanged must not re-fire");
        assert!(try_fire(&cell, 4, Expected), "escalation fires");
        assert!(try_fire(&cell, 1, Expected), "earlier fires");
        assert_eq!(decode_breach(cell.load_bits()), Some((1, Expected)));
    }
}
