//! Estate-scale snapshot: a generated million-job estate streamed through
//! the sharded repository + wave scheduler, proving the claims that make
//! the estate path worth having —
//!
//! 1. `rss_by_wave_size`: the whole estate at several wave sizes; peak RSS
//!    must stay flat (≤ 2× spread) while the wave size varies 4× — memory
//!    tracks the wave, not the estate,
//! 2. `allatonce`: the legacy all-at-once scheduler at growing estate
//!    slices; its bytes-per-job slope is extrapolated to a million jobs,
//! 3. `relearn`: a second scan over the persisted champions — the reuse
//!    hit rate of champion-seeded relearning at estate scale,
//! 4. `resume`: a checkpointed scan killed part-way, then resumed; only
//!    unfinished jobs may refit,
//! 5. `parity`: the existing OLTP fleet batch through the legacy and the
//!    wave scheduler at 1/2/4/8 threads — champions and RMSEs must be
//!    bit-identical.
//!
//! Peak RSS (`VmHWM`) is process-monotonic, so every RSS-measured scenario
//! runs in a fresh child process (this binary re-executes itself, role
//! selected by `DWCP_ESTATE_ROLE`). Writes `results/BENCH_estate.json`
//! and exits non-zero on any contract violation.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_estate              # 1M jobs
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_estate # small
//! DWCP_ESTATE_JOBS=50000 cargo run -p dwcp-bench --release --bin bench_estate
//! ```

use dwcp_bench::{oltp_fleet_batch, peak_rss_bytes, results_dir};
use dwcp_core::{
    EstateScheduler, EvaluationOptions, FleetOptions, FleetScheduler, JobSource, MethodChoice,
    PipelineConfig, SeriesJob, ShardedRepository, SliceJobSource, WaveOptions,
};
use dwcp_series::Granularity;
use dwcp_workload::EstateSpec;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Observations per estate series; the Table 1 daily protocol consumes the
/// trailing 90 (83 train / 7 test).
const OBSERVATIONS: usize = 97;
/// Staleness clock of the first scan; relearn scans run an hour later
/// (well inside the one-week retention window).
const NOW: u64 = 1_600_000_000;
/// Exit code a wave child uses to report a deliberate mid-scan stop.
const STOPPED_EARLY_EXIT: i32 = 9;

/// The cheap per-job configuration the estate runs: the HES branch of
/// Figure 4 (five ETS candidates, no order grid) on the daily protocol.
fn estate_job_config(threads: usize) -> PipelineConfig {
    PipelineConfig {
        method: MethodChoice::Hes,
        grid: Default::default(),
        granularity: Granularity::Daily,
        max_candidates: 8,
        fourier_stage: false,
        auto_detect_shocks: false,
        eval: EvaluationOptions {
            threads,
            ..Default::default()
        },
    }
}

/// [`JobSource`] over the generated estate: keys are index-mapped, series
/// are generated on demand — nothing is materialised outside the live wave.
struct EstateSource {
    spec: EstateSpec,
    config: PipelineConfig,
}

impl JobSource for EstateSource {
    fn keys(&self) -> Vec<String> {
        self.spec.keys()
    }

    fn load(&self, key: &str) -> dwcp_core::Result<SeriesJob> {
        Ok(SeriesJob::new(
            key,
            self.spec.series(key),
            self.config.clone(),
        ))
    }
}

/// One child process's measurements, printed as a `RESULT {json}` line.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChildResult {
    n_jobs: usize,
    wave_size: usize,
    completed: usize,
    failed: usize,
    skipped: usize,
    waves: usize,
    stopped_early: bool,
    wall_s: f64,
    jobs_per_second: f64,
    objective_evals: usize,
    peak_wave_bytes: usize,
    peak_rss_bytes: u64,
    reuse_hits: usize,
    reuse_misses: usize,
    reuse_fallbacks: usize,
    shard_loads: usize,
    entries_appended: usize,
    compactions: usize,
    evictions: usize,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Child role `waves`: scan the estate with the wave scheduler over a
/// sharded repository, then report.
fn child_waves() -> Result<(), Box<dyn std::error::Error>> {
    let n_jobs = env_usize("DWCP_ESTATE_JOBS", 0);
    let wave_size = env_usize("DWCP_ESTATE_WAVE", 1024);
    let max_waves = env_usize("DWCP_ESTATE_MAX_WAVES", 0);
    let shards = env_usize("DWCP_ESTATE_SHARDS", 64);
    let threads = env_usize("DWCP_ESTATE_THREADS", 1);
    let now = env_u64("DWCP_ESTATE_NOW", NOW);
    let seed = env_u64("DWCP_ESTATE_SEED", dwcp_bench::EXPERIMENT_SEED);
    let repo_dir = PathBuf::from(std::env::var("DWCP_ESTATE_REPO")?);
    let checkpoint = std::env::var("DWCP_ESTATE_CHECKPOINT")
        .ok()
        .map(PathBuf::from);

    let source = EstateSource {
        spec: EstateSpec::new(n_jobs, OBSERVATIONS, seed),
        config: estate_job_config(threads),
    };
    let repository = ShardedRepository::open_or_create(&repo_dir, shards)?;
    let mut scheduler = EstateScheduler::new(
        FleetOptions {
            threads,
            now,
            ..Default::default()
        },
        WaveOptions {
            wave_size,
            checkpoint,
            max_waves,
        },
        repository,
    );
    let heartbeat = 32usize;
    let report = scheduler.run_with_progress(&source, &mut |progress, _| {
        if progress.wave % heartbeat == 0 || progress.wave == progress.total_waves {
            eprintln!(
                "    wave {}/{}: {}/{} jobs, {:.1}s/wave, {:.1} MiB wave set",
                progress.wave,
                progress.total_waves,
                progress.jobs_done,
                progress.jobs_total,
                progress.wave_wall.as_secs_f64(),
                progress.wave_bytes as f64 / (1024.0 * 1024.0),
            );
        }
    })?;
    let io = scheduler.repository.io_stats();
    for warning in scheduler.repository.take_warnings() {
        eprintln!("    warning: {warning}");
    }
    let result = ChildResult {
        n_jobs,
        wave_size,
        completed: report.completed,
        failed: report.failed,
        skipped: report.skipped,
        waves: report.waves,
        stopped_early: report.stopped_early,
        wall_s: report.stats.wall_time.as_secs_f64(),
        jobs_per_second: report.jobs_per_second(),
        objective_evals: report.stats.objective_evals,
        peak_wave_bytes: report.peak_wave_bytes,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        reuse_hits: report.stats.reuse_hits,
        reuse_misses: report.stats.reuse_misses,
        reuse_fallbacks: report.stats.reuse_fallbacks,
        shard_loads: io.shard_loads,
        entries_appended: io.entries_appended,
        compactions: io.compactions,
        evictions: io.evictions,
    };
    println!("RESULT {}", serde_json::to_string(&result)?);
    if report.stopped_early {
        std::process::exit(STOPPED_EARLY_EXIT);
    }
    Ok(())
}

/// Child role `allatonce`: materialise every job up front and run the
/// legacy in-memory scheduler — the baseline whose RSS grows with the
/// estate instead of the wave.
fn child_allatonce() -> Result<(), Box<dyn std::error::Error>> {
    let n_jobs = env_usize("DWCP_ESTATE_JOBS", 0);
    let threads = env_usize("DWCP_ESTATE_THREADS", 1);
    let seed = env_u64("DWCP_ESTATE_SEED", dwcp_bench::EXPERIMENT_SEED);
    let spec = EstateSpec::new(n_jobs, OBSERVATIONS, seed);
    let config = estate_job_config(threads);
    let jobs: Vec<SeriesJob> = spec
        .keys()
        .iter()
        .map(|key| SeriesJob::new(key, spec.series(key), config.clone()))
        .collect();
    let mut scheduler = FleetScheduler::new(FleetOptions {
        threads,
        now: NOW,
        ..Default::default()
    });
    let report = scheduler.run_batch(&jobs);
    let completed = report.jobs.iter().filter(|j| j.outcome.is_ok()).count();
    let result = ChildResult {
        n_jobs,
        wave_size: 0,
        completed,
        failed: report.jobs.len() - completed,
        skipped: 0,
        waves: 0,
        stopped_early: false,
        wall_s: report.stats.wall_time.as_secs_f64(),
        jobs_per_second: report.jobs_per_second(),
        objective_evals: report.stats.objective_evals,
        peak_wave_bytes: 0,
        peak_rss_bytes: peak_rss_bytes().unwrap_or(0),
        reuse_hits: report.stats.reuse_hits,
        reuse_misses: report.stats.reuse_misses,
        reuse_fallbacks: report.stats.reuse_fallbacks,
        shard_loads: 0,
        entries_appended: 0,
        compactions: 0,
        evictions: 0,
    };
    println!("RESULT {}", serde_json::to_string(&result)?);
    Ok(())
}

/// Spawn this binary as a child with the given role + env, stream its
/// stderr, and parse the `RESULT {json}` line. `allow_stop` accepts the
/// deliberate mid-scan exit code.
fn run_child(
    role: &str,
    env: &[(&str, String)],
    allow_stop: bool,
) -> Result<ChildResult, Box<dyn std::error::Error>> {
    let mut cmd = Command::new(std::env::current_exe()?);
    cmd.env("DWCP_ESTATE_ROLE", role)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (key, value) in env {
        cmd.env(key, value);
    }
    let output = cmd.output()?;
    let code = output.status.code().unwrap_or(-1);
    if code != 0 && !(allow_stop && code == STOPPED_EARLY_EXIT) {
        return Err(format!("child role={role} exited with {code}").into());
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout
        .lines()
        .rev()
        .find_map(|l| l.strip_prefix("RESULT "))
        .ok_or("child printed no RESULT line")?;
    Ok(serde_json::from_str(line)?)
}

#[derive(Debug, Clone, Serialize)]
struct RssRun {
    wave_size: usize,
    peak_rss_bytes: u64,
    peak_wave_bytes: usize,
    wall_s: f64,
    jobs_per_second: f64,
    shard_loads: usize,
    compactions: usize,
    evictions: usize,
}

#[derive(Debug, Clone, Serialize)]
struct AllAtOnceRun {
    n_jobs: usize,
    peak_rss_bytes: u64,
    wall_s: f64,
    jobs_per_second: f64,
}

#[derive(Debug, Clone, Serialize)]
struct EstateSnapshot {
    estate: EstateInfo,
    quick: bool,
    throughput: ThroughputInfo,
    rss_by_wave_size: Vec<RssRun>,
    rss_flatness_ratio: f64,
    allatonce: AllAtOnceInfo,
    relearn: RelearnInfo,
    resume: ResumeInfo,
    parity: ParityInfo,
}

#[derive(Debug, Clone, Serialize)]
struct EstateInfo {
    n_jobs: usize,
    observations: usize,
    shards: usize,
    method: String,
}

#[derive(Debug, Clone, Serialize)]
struct ThroughputInfo {
    wave_size: usize,
    jobs_per_second: f64,
    wall_s: f64,
    objective_evals: usize,
    completed: usize,
    failed: usize,
}

#[derive(Debug, Clone, Serialize)]
struct AllAtOnceInfo {
    runs: Vec<AllAtOnceRun>,
    bytes_per_job: f64,
    extrapolated_1m_bytes: f64,
}

#[derive(Debug, Clone, Serialize)]
struct RelearnInfo {
    n_jobs: usize,
    reuse_hits: usize,
    reuse_misses: usize,
    reuse_fallbacks: usize,
    reuse_hit_rate: f64,
    jobs_per_second: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ResumeInfo {
    n_jobs: usize,
    first_completed: usize,
    first_wall_s: f64,
    resume_skipped: usize,
    resume_completed: usize,
    resume_wall_s: f64,
    refit_only_unfinished: bool,
}

#[derive(Debug, Clone, Serialize)]
struct ParityInfo {
    batch_jobs: usize,
    threads: Vec<usize>,
    bit_identical: bool,
}

/// Bit-identity check on the real OLTP fleet batch: legacy all-at-once vs
/// the wave scheduler over a throwaway sharded repository, per thread
/// count. Returns the number of mismatching champions/RMSEs.
fn parity_check(
    quick: bool,
    scratch: &Path,
    thread_counts: &[usize],
) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    let mut mismatches = 0usize;
    let mut batch_jobs = 0usize;
    for (i, &threads) in thread_counts.iter().enumerate() {
        let jobs: Vec<SeriesJob> = oltp_fleet_batch(quick, threads)?;
        batch_jobs = jobs.len();
        let options = FleetOptions {
            threads,
            now: NOW,
            ..Default::default()
        };
        let mut legacy = FleetScheduler::new(options.clone());
        let legacy_report = legacy.run_batch(&jobs);

        let repo_dir = scratch.join(format!("parity-{i}"));
        let repository = ShardedRepository::open_or_create(&repo_dir, 4)?;
        let mut estate = EstateScheduler::new(
            options,
            WaveOptions {
                wave_size: 5,
                ..Default::default()
            },
            repository,
        );
        let source = SliceJobSource::new(&jobs);
        let mut by_key = std::collections::BTreeMap::new();
        estate.run_with_progress(&source, &mut |_, results| {
            for r in results {
                if let Ok(outcome) = &r.outcome {
                    by_key.insert(
                        r.key.clone(),
                        (outcome.champion.clone(), outcome.accuracy.rmse),
                    );
                }
            }
        })?;

        for job_result in &legacy_report.jobs {
            let legacy_outcome = match &job_result.outcome {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("FAIL parity: legacy job {} errored: {e}", job_result.key);
                    mismatches += 1;
                    continue;
                }
            };
            match by_key.get(&job_result.key) {
                Some((champion, rmse)) => {
                    if *champion != legacy_outcome.champion
                        || rmse.to_bits() != legacy_outcome.accuracy.rmse.to_bits()
                    {
                        eprintln!(
                            "FAIL parity ({threads} threads) {}: wave {champion}/{rmse} != legacy {}/{}",
                            job_result.key, legacy_outcome.champion, legacy_outcome.accuracy.rmse
                        );
                        mismatches += 1;
                    }
                }
                None => {
                    eprintln!(
                        "FAIL parity ({threads} threads): wave scheduler lost job {}",
                        job_result.key
                    );
                    mismatches += 1;
                }
            }
        }
        println!(
            "  parity @ {threads} threads: {} jobs compared",
            legacy_report.jobs.len()
        );
    }
    Ok((mismatches, batch_jobs))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Child roles re-enter here; the parent falls through to orchestrate.
    match std::env::var("DWCP_ESTATE_ROLE").as_deref() {
        Ok("waves") => return child_waves(),
        Ok("allatonce") => return child_allatonce(),
        _ => {}
    }

    let quick = std::env::var("DWCP_QUICK").is_ok();
    let n_jobs = env_usize("DWCP_ESTATE_JOBS", if quick { 2_000 } else { 1_000_000 });
    let shards = if quick { 16 } else { 64 };
    let wave_sweep: &[usize] = if quick {
        &[64, 128, 256]
    } else {
        &[1_024, 2_048, 4_096]
    };
    let allatonce_sizes: &[usize] = if quick {
        &[500, 1_000, 2_000]
    } else {
        &[10_000, 20_000, 40_000]
    };
    let scratch = std::env::temp_dir().join(format!("dwcp-bench-estate-{}", std::process::id()));
    std::fs::create_dir_all(&scratch)?;
    println!(
        "bench_estate: {n_jobs} jobs ({OBSERVATIONS} daily obs each), {shards} shards{}",
        if quick { ", quick mode" } else { "" }
    );
    let mut failures = 0usize;

    // 1. Wave-size sweep over the full estate: peak RSS must stay flat.
    let mut rss_runs: Vec<RssRun> = Vec::new();
    let mut kept_repo: Option<PathBuf> = None;
    let mut throughput: Option<ThroughputInfo> = None;
    for (i, &wave) in wave_sweep.iter().enumerate() {
        let repo_dir = scratch.join(format!("sweep-{wave}"));
        println!("  scan {} jobs @ wave {wave} ...", n_jobs);
        let t0 = Instant::now();
        let r = run_child(
            "waves",
            &[
                ("DWCP_ESTATE_JOBS", n_jobs.to_string()),
                ("DWCP_ESTATE_WAVE", wave.to_string()),
                ("DWCP_ESTATE_SHARDS", shards.to_string()),
                ("DWCP_ESTATE_REPO", repo_dir.display().to_string()),
            ],
            false,
        )?;
        println!(
            "    {:.1}s, {:.0} jobs/s, peak RSS {:.1} MiB, peak wave set {:.1} MiB",
            t0.elapsed().as_secs_f64(),
            r.jobs_per_second,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            r.peak_wave_bytes as f64 / (1024.0 * 1024.0),
        );
        if r.completed + r.failed != n_jobs {
            eprintln!(
                "FAIL sweep @ wave {wave}: {} completed + {} failed != {n_jobs}",
                r.completed, r.failed
            );
            failures += 1;
        }
        // Keep the middle run's repository for the relearn scenario.
        if i == wave_sweep.len() / 2 {
            kept_repo = Some(repo_dir);
        } else {
            let _ = std::fs::remove_dir_all(&repo_dir);
        }
        // The first (smallest-wave) scan doubles as the headline
        // throughput figure.
        if throughput.is_none() {
            throughput = Some(ThroughputInfo {
                wave_size: wave,
                jobs_per_second: r.jobs_per_second,
                wall_s: r.wall_s,
                objective_evals: r.objective_evals,
                completed: r.completed,
                failed: r.failed,
            });
        }
        rss_runs.push(RssRun {
            wave_size: wave,
            peak_rss_bytes: r.peak_rss_bytes,
            peak_wave_bytes: r.peak_wave_bytes,
            wall_s: r.wall_s,
            jobs_per_second: r.jobs_per_second,
            shard_loads: r.shard_loads,
            compactions: r.compactions,
            evictions: r.evictions,
        });
    }
    let throughput = throughput.ok_or("wave sweep produced no runs")?;
    let rss_min = rss_runs.iter().map(|r| r.peak_rss_bytes).min().unwrap_or(1);
    let rss_max = rss_runs.iter().map(|r| r.peak_rss_bytes).max().unwrap_or(1);
    let rss_flatness_ratio = rss_max as f64 / rss_min.max(1) as f64;
    println!(
        "  peak RSS across wave sizes {wave_sweep:?}: flatness ratio {rss_flatness_ratio:.2}x"
    );
    if rss_flatness_ratio > 2.0 {
        eprintln!("FAIL: peak RSS not flat across wave sizes ({rss_flatness_ratio:.2}x > 2x)");
        failures += 1;
    }

    // 2. Legacy all-at-once at growing slices: RSS is linear in the
    //    estate, so a million jobs is extrapolated, not attempted.
    let mut allatonce_runs: Vec<AllAtOnceRun> = Vec::new();
    for &n in allatonce_sizes {
        println!("  all-at-once {n} jobs ...");
        let r = run_child("allatonce", &[("DWCP_ESTATE_JOBS", n.to_string())], false)?;
        println!(
            "    {:.1}s, peak RSS {:.1} MiB",
            r.wall_s,
            r.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        allatonce_runs.push(AllAtOnceRun {
            n_jobs: n,
            peak_rss_bytes: r.peak_rss_bytes,
            wall_s: r.wall_s,
            jobs_per_second: r.jobs_per_second,
        });
    }
    let (first, last) = (
        &allatonce_runs[0],
        &allatonce_runs[allatonce_runs.len() - 1],
    );
    let bytes_per_job = (last.peak_rss_bytes as f64 - first.peak_rss_bytes as f64)
        / (last.n_jobs as f64 - first.n_jobs as f64);
    let extrapolated_1m_bytes =
        first.peak_rss_bytes as f64 + bytes_per_job * (1_000_000.0 - first.n_jobs as f64);
    println!(
        "  all-at-once slope: {:.0} bytes/job, extrapolated 1M-job RSS {:.1} GiB",
        bytes_per_job,
        extrapolated_1m_bytes / (1024.0 * 1024.0 * 1024.0)
    );

    // 3. Relearn over the kept repository: champion-seeded reuse at scale.
    let relearn_jobs = n_jobs.min(100_000);
    let kept = kept_repo.ok_or("no repository kept for relearn")?;
    println!("  relearn {relearn_jobs} jobs over persisted champions ...");
    let relearn_wave = wave_sweep[wave_sweep.len() / 2];
    let r = run_child(
        "waves",
        &[
            ("DWCP_ESTATE_JOBS", relearn_jobs.to_string()),
            ("DWCP_ESTATE_WAVE", relearn_wave.to_string()),
            ("DWCP_ESTATE_SHARDS", shards.to_string()),
            ("DWCP_ESTATE_REPO", kept.display().to_string()),
            ("DWCP_ESTATE_NOW", (NOW + 3_600).to_string()),
        ],
        false,
    )?;
    let eligible = r.reuse_hits + r.reuse_misses;
    let relearn = RelearnInfo {
        n_jobs: relearn_jobs,
        reuse_hits: r.reuse_hits,
        reuse_misses: r.reuse_misses,
        reuse_fallbacks: r.reuse_fallbacks,
        reuse_hit_rate: if eligible > 0 {
            r.reuse_hits as f64 / eligible as f64
        } else {
            0.0
        },
        jobs_per_second: r.jobs_per_second,
    };
    println!(
        "    reuse {}h/{}m/{}f (hit rate {:.0}%), {:.0} jobs/s",
        relearn.reuse_hits,
        relearn.reuse_misses,
        relearn.reuse_fallbacks,
        relearn.reuse_hit_rate * 100.0,
        relearn.jobs_per_second
    );
    if relearn.reuse_hit_rate < 0.99 {
        eprintln!(
            "FAIL relearn: expected ~100% reuse over fresh champions, got {:.1}%",
            relearn.reuse_hit_rate * 100.0
        );
        failures += 1;
    }
    let _ = std::fs::remove_dir_all(&kept);

    // 4. Kill + resume: a checkpointed scan stopped part-way must resume
    //    refitting only the unfinished jobs.
    let resume_jobs = n_jobs.min(if quick { 2_000 } else { 200_000 });
    let resume_wave = wave_sweep[0];
    let total_waves = resume_jobs.div_ceil(resume_wave);
    let abort_after = (total_waves * 3 / 10).max(1);
    let repo_dir = scratch.join("resume-repo");
    let checkpoint = scratch.join("resume.ckpt");
    println!(
        "  resume: {resume_jobs} jobs @ wave {resume_wave}, killing after {abort_after}/{total_waves} waves ..."
    );
    let resume_env = |max_waves: usize| {
        vec![
            ("DWCP_ESTATE_JOBS", resume_jobs.to_string()),
            ("DWCP_ESTATE_WAVE", resume_wave.to_string()),
            ("DWCP_ESTATE_SHARDS", shards.to_string()),
            ("DWCP_ESTATE_REPO", repo_dir.display().to_string()),
            ("DWCP_ESTATE_CHECKPOINT", checkpoint.display().to_string()),
            ("DWCP_ESTATE_MAX_WAVES", max_waves.to_string()),
        ]
    };
    let first_pass = run_child("waves", &resume_env(abort_after), true)?;
    if !first_pass.stopped_early {
        eprintln!("FAIL resume: first pass was expected to stop early");
        failures += 1;
    }
    let second_pass = run_child("waves", &resume_env(0), false)?;
    let refit_only_unfinished = second_pass.skipped == first_pass.completed
        && second_pass.skipped + second_pass.completed + second_pass.failed == resume_jobs;
    let resume = ResumeInfo {
        n_jobs: resume_jobs,
        first_completed: first_pass.completed,
        first_wall_s: first_pass.wall_s,
        resume_skipped: second_pass.skipped,
        resume_completed: second_pass.completed,
        resume_wall_s: second_pass.wall_s,
        refit_only_unfinished,
    };
    println!(
        "    first pass fitted {}, resume skipped {} and fitted {}",
        resume.first_completed, resume.resume_skipped, resume.resume_completed
    );
    if !refit_only_unfinished {
        eprintln!(
            "FAIL resume: skipped {} != first-pass completed {} (or counts do not add up)",
            second_pass.skipped, first_pass.completed
        );
        failures += 1;
    }

    // 5. Bit-identity parity on the real OLTP batch at 1/2/4/8 threads.
    let thread_counts = [1usize, 2, 4, 8];
    println!("  parity on the OLTP fleet batch ...");
    let (parity_mismatches, batch_jobs) = parity_check(quick, &scratch, &thread_counts)?;
    failures += parity_mismatches;
    let parity = ParityInfo {
        batch_jobs,
        threads: thread_counts.to_vec(),
        bit_identical: parity_mismatches == 0,
    };

    let snapshot = EstateSnapshot {
        estate: EstateInfo {
            n_jobs,
            observations: OBSERVATIONS,
            shards,
            method: "hes/daily".into(),
        },
        quick,
        throughput,
        rss_by_wave_size: rss_runs,
        rss_flatness_ratio,
        allatonce: AllAtOnceInfo {
            runs: allatonce_runs,
            bytes_per_job,
            extrapolated_1m_bytes,
        },
        relearn,
        resume,
        parity,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_estate.json");
    std::fs::write(&path, serde_json::to_string_pretty(&snapshot)?)?;
    println!("wrote {}", path.display());
    let _ = std::fs::remove_dir_all(&scratch);

    if failures > 0 {
        eprintln!("FAIL: {failures} estate contract violations");
        std::process::exit(1);
    }
    Ok(())
}
