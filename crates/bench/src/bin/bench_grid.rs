//! Grid-search acceleration snapshot: the full 180-model ARIMA grid,
//! baseline (per-candidate differencing, cold starts) versus the
//! acceleration layer (shared transform cache + warm-start chains), at
//! 1/2/4/8 worker threads, in exact mode. A second section runs the
//! `--method auto` union grid (SARIMAX + ETS + TBATS menus, deduped)
//! through the same baseline/accelerated ladder with per-family time
//! attribution and the batched ETS/TBATS kernel phase buckets.
//!
//! Writes `results/BENCH_grid.json` so future PRs can track the
//! fit-throughput trajectory, and exits non-zero if the accelerated
//! champion ever differs from the baseline champion — exact mode must not
//! change model selection.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_grid
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_grid   # 1 rep
//! ```

use dwcp_bench::results_dir;
use dwcp_core::{
    dedupe_candidates, evaluate_auto_order, evaluate_candidates, AutoOrderOptions,
    EvaluationOptions, EvaluationReport, ModelFamily, ModelGrid,
};
use dwcp_models::arima::ArimaOptions;
use serde::Serialize;
use std::time::Instant;

/// One (mode, threads) measurement.
#[derive(Debug, Clone, Serialize)]
struct GridRun {
    mode: String,
    threads: usize,
    /// Best-of-reps wall-clock, milliseconds.
    wall_ms: f64,
    champion: String,
    champion_rmse: f64,
    scored: usize,
    failures: usize,
    abandoned: usize,
    cache_entries: usize,
    cache_hits: usize,
    warm_starts: usize,
    objective_evals: usize,
    /// Per-phase lockstep timing (ms): cursor advance, point staging,
    /// batched CSS kernel, optimiser tell. All zero for baseline runs.
    lockstep_rounds: usize,
    lockstep_batched_evals: usize,
    lockstep_advance_ms: f64,
    lockstep_stage_ms: f64,
    lockstep_batch_css_ms: f64,
    lockstep_tell_ms: f64,
}

/// The `--grid auto-order` measurement: the ACF/PACF-seeded grid against
/// the same 180-model sweep, with the naive-benchmark fallback armed.
#[derive(Debug, Clone, Serialize)]
struct AutoOrderRun {
    wall_ms: f64,
    champion: String,
    champion_rmse: f64,
    /// Seeded candidates attempted (including a fallback sweep, if any).
    attempted: usize,
    /// attempted / 180.
    candidate_fraction: f64,
    objective_evals: usize,
    /// objective evals / the accelerated full sweep's at the same threads.
    eval_fraction: f64,
    fell_back: bool,
    d: usize,
    q_max: usize,
    p_set: Vec<usize>,
}

/// One family's share of an auto-mode (mixed-family union grid) run.
#[derive(Debug, Clone, Serialize)]
struct FamilyBreakdown {
    family: String,
    attempts: usize,
    fits: usize,
    failures: usize,
    /// Worker-summed wall-clock spent fitting and scoring this family, ms.
    fit_time_ms: f64,
    objective_evals: usize,
}

/// One (mode, threads) measurement of the `--method auto` union grid:
/// SARIMAX + ETS + TBATS menus evaluated together, with the per-family
/// time attribution and the batched-kernel phase buckets.
#[derive(Debug, Clone, Serialize)]
struct AutoModeRun {
    mode: String,
    threads: usize,
    wall_ms: f64,
    champion: String,
    champion_rmse: f64,
    scored: usize,
    failures: usize,
    objective_evals: usize,
    families: Vec<FamilyBreakdown>,
    lockstep_batched_evals: usize,
    lockstep_batch_css_ms: f64,
    lockstep_batch_ets_ms: f64,
    lockstep_batch_tbats_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct GridSnapshot {
    grid: String,
    candidates: usize,
    train_len: usize,
    test_len: usize,
    max_evals: usize,
    reps: usize,
    runs: Vec<GridRun>,
    /// baseline / accelerated wall-clock ratio at 4 threads.
    speedup_4_threads: f64,
    auto_order: AutoOrderRun,
    /// Mixed-family union-grid runs (the `--method auto` shape).
    auto_mode: Vec<AutoModeRun>,
    /// Auto-mode baseline / accelerated wall-clock ratio at 4 threads.
    auto_speedup_4_threads: f64,
}

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            60.0 + 0.03 * tf
                + 12.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 89) as f64) / 25.0
        })
        .collect()
}

fn opts(threads: usize, accelerated: bool) -> EvaluationOptions {
    EvaluationOptions {
        threads,
        fit: ArimaOptions {
            max_evals: 0, // default: convergence-driven budget (250 + 120k)
            restarts: 0,
            interval_level: 0.95,
            ..Default::default()
        },
        start_index: 0,
        cache_transforms: accelerated,
        warm_start: accelerated,
        ..Default::default()
    }
}

fn champion_label(report: &EvaluationReport) -> (String, f64) {
    match report.champion() {
        Some(c) => (c.candidate.config.describe(), c.accuracy.rmse),
        None => ("<none>".to_string(), f64::NAN),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reps = if std::env::var("DWCP_QUICK").is_ok() {
        1
    } else {
        3
    };
    let y = series(504);
    let (train, test) = y.split_at(480);
    let grid = ModelGrid::arima();
    println!(
        "bench_grid: {} ARIMA candidates, train {} / test {}, {} rep(s)",
        grid.len(),
        train.len(),
        test.len(),
        reps
    );

    let mut runs = Vec::new();
    let mut wall_4t = [f64::NAN; 2]; // [baseline, accelerated]
    let mut champions_4t = [String::new(), String::new()];
    for (mode_idx, (mode, accelerated)) in [("baseline", false), ("accelerated", true)]
        .into_iter()
        .enumerate()
    {
        for threads in [1usize, 2, 4, 8] {
            let o = opts(threads, accelerated);
            let mut best_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let report = evaluate_candidates(train, test, &[], &[], &grid.candidates, &o)?;
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(report);
            }
            let report = last.expect("at least one rep");
            let (champion, champion_rmse) = champion_label(&report);
            println!(
                "  {mode:<12} {threads}t  {best_ms:>8.1} ms   champion {champion}  \
                 (cache hits {}, warm starts {}, {} objective evals)",
                report.stats.cache_hits, report.stats.warm_starts, report.stats.objective_evals
            );
            let ls = &report.stats.lockstep;
            if ls.rounds > 0 {
                println!(
                    "               lockstep: {} rounds / {} evals, advance {:.0} ms, \
                     stage {:.0} ms, batch-css {:.0} ms, tell {:.0} ms",
                    ls.rounds,
                    ls.batched_evals,
                    ls.advance.as_secs_f64() * 1e3,
                    ls.stage.as_secs_f64() * 1e3,
                    ls.batch_css.as_secs_f64() * 1e3,
                    ls.tell.as_secs_f64() * 1e3,
                );
            }
            if threads == 4 {
                wall_4t[mode_idx] = best_ms;
                champions_4t[mode_idx] = champion.clone();
            }
            runs.push(GridRun {
                mode: mode.to_string(),
                threads,
                wall_ms: best_ms,
                champion,
                champion_rmse,
                scored: report.scores.len(),
                failures: report.failures,
                abandoned: report.abandoned,
                cache_entries: report.stats.cache_entries,
                cache_hits: report.stats.cache_hits,
                warm_starts: report.stats.warm_starts,
                objective_evals: report.stats.objective_evals,
                lockstep_rounds: ls.rounds,
                lockstep_batched_evals: ls.batched_evals,
                lockstep_advance_ms: ls.advance.as_secs_f64() * 1e3,
                lockstep_stage_ms: ls.stage.as_secs_f64() * 1e3,
                lockstep_batch_css_ms: ls.batch_css.as_secs_f64() * 1e3,
                lockstep_tell_ms: ls.tell.as_secs_f64() * 1e3,
            });
        }
    }

    let speedup = wall_4t[0] / wall_4t[1];
    println!(
        "\nspeedup at 4 threads: {speedup:.2}x (baseline {:.1} ms → accelerated {:.1} ms)",
        wall_4t[0], wall_4t[1]
    );

    // Third mode: the ACF/PACF-seeded auto-order grid against the same
    // sweep, accelerated, 4 threads. Acceptance: same-or-better held-out
    // RMSE than the full sweep at a fraction of the objective evaluations
    // (or an explicit fallback that still ends same-or-better).
    let full_evals = runs
        .iter()
        .find(|r| r.mode == "accelerated" && r.threads == 4)
        .map(|r| r.objective_evals)
        .unwrap_or(0);
    let full_rmse = runs
        .iter()
        .find(|r| r.mode == "accelerated" && r.threads == 4)
        .map(|r| r.champion_rmse)
        .unwrap_or(f64::NAN);
    let o = opts(4, true);
    let auto_opts = AutoOrderOptions::default();
    let mut best_ms = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let auto = evaluate_auto_order(train, test, &[], &[], &grid.candidates, &o, &auto_opts)?;
        best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        last = Some(auto);
    }
    let auto = last.expect("at least one rep");
    let (auto_champion, auto_rmse) = champion_label(&auto.report);
    let auto_run = AutoOrderRun {
        wall_ms: best_ms,
        champion: auto_champion.clone(),
        champion_rmse: auto_rmse,
        attempted: auto.report.attempted,
        candidate_fraction: auto.report.attempted as f64 / grid.len() as f64,
        objective_evals: auto.report.stats.objective_evals,
        eval_fraction: auto.report.stats.objective_evals as f64 / full_evals.max(1) as f64,
        fell_back: auto.fell_back,
        d: auto.plan.d,
        q_max: auto.plan.q_max,
        p_set: auto.plan.p_set.clone(),
    };
    println!(
        "  auto-order   4t  {best_ms:>8.1} ms   champion {auto_champion}  \
         ({} of {} candidates = {:.0}%, {} objective evals = {:.0}%, fell_back {})",
        auto_run.attempted,
        grid.len(),
        100.0 * auto_run.candidate_fraction,
        auto_run.objective_evals,
        100.0 * auto_run.eval_fraction,
        auto_run.fell_back,
    );
    println!(
        "               diagnostics: d={} q_max={} p_set={:?}  rmse {auto_rmse:.4} vs full {full_rmse:.4}",
        auto_run.d, auto_run.q_max, auto_run.p_set
    );

    // Fourth mode: the `--method auto` union grid — the full SARIMAX sweep
    // plus the ETS and TBATS menus, deduped, evaluated together so the
    // batched ETS/TBATS kernels and the per-family time attribution are
    // exercised. Baseline (no caches, no batching) versus accelerated at
    // 1/2/4/8 threads; every run must elect the same champion.
    let mut auto_candidates = grid.candidates.clone();
    auto_candidates.extend(ModelGrid::ets(24, true, 0.95).candidates);
    auto_candidates.extend(ModelGrid::tbats(&[24.0], None, 0.95).candidates);
    dedupe_candidates(&mut auto_candidates);
    println!(
        "\nauto mode: {} union-grid candidates",
        auto_candidates.len()
    );
    let mut auto_runs = Vec::new();
    let mut auto_wall_4t = [f64::NAN; 2];
    let mut auto_champions: Vec<String> = Vec::new();
    for (mode_idx, (mode, accelerated)) in [("baseline", false), ("accelerated", true)]
        .into_iter()
        .enumerate()
    {
        for threads in [1usize, 2, 4, 8] {
            let o = opts(threads, accelerated);
            let mut best_ms = f64::INFINITY;
            let mut last = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let report = evaluate_candidates(train, test, &[], &[], &auto_candidates, &o)?;
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                last = Some(report);
            }
            let report = last.expect("at least one rep");
            let (champion, champion_rmse) = champion_label(&report);
            let ls = &report.stats.lockstep;
            let families: Vec<FamilyBreakdown> = ModelFamily::ALL
                .iter()
                .zip(&report.stats.families)
                .filter(|(_, f)| f.attempts > 0)
                .map(|(family, f)| FamilyBreakdown {
                    family: family.label().to_string(),
                    attempts: f.attempts,
                    fits: f.fits,
                    failures: f.failures,
                    fit_time_ms: f.fit_time.as_secs_f64() * 1e3,
                    objective_evals: f.objective_evals,
                })
                .collect();
            let family_line = families
                .iter()
                .map(|f| format!("{} {:.0} ms", f.family, f.fit_time_ms))
                .collect::<Vec<_>>()
                .join(", ");
            println!(
                "  {mode:<12} {threads}t  {best_ms:>8.1} ms   champion {champion}  \
                 [{family_line}]"
            );
            if ls.batched_evals > 0 {
                println!(
                    "               lockstep: {} batched evals, batch-css {:.0} ms, \
                     batch-ets {:.0} ms, batch-tbats {:.0} ms",
                    ls.batched_evals,
                    ls.batch_css.as_secs_f64() * 1e3,
                    ls.batch_ets.as_secs_f64() * 1e3,
                    ls.batch_tbats.as_secs_f64() * 1e3,
                );
            }
            if threads == 4 {
                auto_wall_4t[mode_idx] = best_ms;
            }
            auto_champions.push(champion.clone());
            auto_runs.push(AutoModeRun {
                mode: mode.to_string(),
                threads,
                wall_ms: best_ms,
                champion,
                champion_rmse,
                scored: report.scores.len(),
                failures: report.failures,
                objective_evals: report.stats.objective_evals,
                families,
                lockstep_batched_evals: ls.batched_evals,
                lockstep_batch_css_ms: ls.batch_css.as_secs_f64() * 1e3,
                lockstep_batch_ets_ms: ls.batch_ets.as_secs_f64() * 1e3,
                lockstep_batch_tbats_ms: ls.batch_tbats.as_secs_f64() * 1e3,
            });
        }
    }
    let auto_speedup = auto_wall_4t[0] / auto_wall_4t[1];
    println!(
        "auto-mode speedup at 4 threads: {auto_speedup:.2}x (baseline {:.1} ms → accelerated {:.1} ms)",
        auto_wall_4t[0], auto_wall_4t[1]
    );

    let snapshot = GridSnapshot {
        grid: "arima_180".to_string(),
        candidates: grid.len(),
        train_len: train.len(),
        test_len: test.len(),
        max_evals: 0,
        reps,
        runs,
        speedup_4_threads: speedup,
        auto_order: auto_run,
        auto_mode: auto_runs,
        auto_speedup_4_threads: auto_speedup,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_grid.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&snapshot).expect("serializable"),
    )?;
    println!("wrote {}", path.display());

    // Exact mode must never change model selection.
    if champions_4t[0] != champions_4t[1] {
        eprintln!(
            "FAIL: accelerated champion {} != baseline champion {}",
            champions_4t[1], champions_4t[0]
        );
        std::process::exit(1);
    }
    // Auto mode: every (mode, threads) combination must elect the same
    // champion — batching and thread count must not change selection.
    if auto_champions.windows(2).any(|w| w[0] != w[1]) {
        eprintln!("FAIL: auto-mode champions differ across modes/threads: {auto_champions:?}");
        std::process::exit(1);
    }
    // The auto-order mode must never end up worse than the full sweep:
    // either its seeded champion stands, or the fallback absorbed the full
    // grid and the best of both won.
    if dwcp_math::total_cmp_f64(auto_rmse, full_rmse * (1.0 + 1e-9)).is_gt() {
        eprintln!("FAIL: auto-order champion rmse {auto_rmse} worse than full sweep {full_rmse}");
        std::process::exit(1);
    }
    Ok(())
}
