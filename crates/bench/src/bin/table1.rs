//! Regenerates Table 1: "Machine Learning Breakdown and Observations".
//!
//! ```sh
//! cargo run -p dwcp-bench --bin table1
//! ```

use dwcp_series::Granularity;

fn main() {
    println!("Table 1: Machine Learning Breakdown and Observations");
    println!(
        "{:<18} {:>6} {:>10} {:>9} {:>12}",
        "Forecast", "Obs", "Train Set", "Test Set", "Prediction"
    );
    println!("{}", "-".repeat(60));
    for (method, gs) in [("SARIMAX", true), ("HES", true)] {
        if !gs {
            continue;
        }
        for g in [Granularity::Hourly, Granularity::Daily, Granularity::Weekly] {
            let horizon_unit = match g {
                Granularity::Hourly => "Hours",
                Granularity::Daily => "days",
                Granularity::Weekly => "Weeks",
            };
            println!(
                "{:<18} {:>6} {:>10} {:>9} {:>12}",
                format!("{method} {}", capitalise(g.label())),
                g.observations(),
                g.train_size(),
                g.test_size(),
                format!("{} ({horizon_unit})", g.horizon()),
            );
        }
    }
}

fn capitalise(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
