//! §8's long-term use case: "Migration: If I need to migrate to a new
//! platform, such as a Cloud architecture, what resource capacity do I
//! need in the next 6 months to a year?"
//!
//! Runs the daily-granularity protocol on a two-year estate, refits the
//! champion on the full history, forecasts 180 days ahead, and reports the
//! capacity requirement (forecast upper band) per metric — the number a
//! cloud shape would be sized from.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin migration_planning
//! ```

use dwcp_bench::{sparkline, EXPERIMENT_SEED};
use dwcp_core::{EvaluationOptions, MethodChoice, Pipeline, PipelineConfig};
use dwcp_series::Granularity;
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two years of estate history with sustainable growth.
    let mut scenario = oltp_scenario();
    scenario.duration_days = 730;
    scenario.population.growth_per_day = 2.0;
    scenario.population.weekly_cycle_depth = 0.25;
    let instance = "cdbm011";
    let horizon_days = 180usize;

    eprintln!(
        "simulating {} days of estate history…",
        scenario.duration_days
    );
    let repo = scenario.run(EXPERIMENT_SEED)?;

    let pipeline = Pipeline::new(PipelineConfig {
        method: MethodChoice::Sarimax,
        grid: Default::default(),
        granularity: Granularity::Daily,
        max_candidates: 12,
        fourier_stage: true,
        auto_detect_shocks: false,
        eval: EvaluationOptions::default(),
    });

    println!(
        "capacity plan for {instance}: {horizon_days}-day forecast from {} days of history\n",
        scenario.duration_days
    );
    println!(
        "{:<14} {:>12} {:>14} {:>14} {:>10}  champion",
        "metric", "today p95", "+6mo mean", "+6mo p95 need", "growth"
    );
    for metric in Metric::ALL {
        let daily = repo.daily_series(
            instance,
            metric,
            scenario.start,
            scenario.duration_days as usize,
        )?;
        let (outcome, future) = pipeline.refit_and_forecast(&daily, &[], &[], horizon_days)?;

        // "Today": p95 of the trailing 30 days.
        let mut recent: Vec<f64> = daily.tail(30).values().to_vec();
        recent.retain(|v| v.is_finite());
        recent.sort_by(|a, b| dwcp_math::total_cmp_f64(*a, *b));
        let today_p95 = recent[(recent.len() as f64 * 0.95) as usize - 1];

        // "+6 months": the forecast's final-month mean and the capacity
        // requirement = max of the upper interval over the horizon.
        let final_month: f64 = future.mean[horizon_days - 30..].iter().sum::<f64>() / 30.0;
        let need = future
            .upper
            .iter()
            .fold(f64::NEG_INFINITY, |m, &v| m.max(v));
        let growth_pct = 100.0 * (final_month - today_p95) / today_p95;
        println!(
            "{:<14} {:>12.1} {:>14.1} {:>14.1} {:>9.1}%  {}",
            metric.label(),
            today_p95,
            final_month,
            need,
            growth_pct,
            outcome.champion
        );
        eprintln!(
            "  history {} ‖ forecast {}",
            sparkline(daily.values(), 48),
            sparkline(&future.mean, 24)
        );
    }
    println!("\np95 need = max upper 95% band over the horizon — the cloud-shape sizing input.");
    Ok(())
}
