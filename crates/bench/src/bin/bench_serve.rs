//! Resident-engine snapshot: the incremental ingest→score→alert path
//! behind `dwcp serve`, measured and contract-checked —
//!
//! 1. `ingest`: raw 15-minute points folded into hourly buckets
//!    (points/second through [`IngestBuffer`]),
//! 2. `engine`: the first full grid fit versus the frozen re-score per
//!    appended hour — the incremental contract is that every appended
//!    hour scores without a per-point refit: frozen re-scores dominate
//!    (grid searches happen only on a relearn reason, and are rare)
//!    and the mean re-score is cheaper than the first fit,
//! 3. `serve_http`: the same flow through the real daemon — one bulk CSV
//!    push over loopback TCP, then repeated `GET /forecast` reads.
//!
//! Writes `results/BENCH_serve.json` and exits non-zero on any contract
//! violation.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_serve
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_serve
//! ```

use dwcp::serve;
use dwcp_core::{
    AlertRule, Engine, EngineConfig, EvaluationOptions, GridStrategy, MethodChoice, PipelineConfig,
    ScoreAction, StepOutcome,
};
use dwcp_math::total_cmp_f64;
use dwcp_models::arima::ArimaOptions;
use dwcp_series::{Granularity, IngestBuffer};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Hours of history before the first score (the hourly Table 1 row needs
/// 1008 complete aggregates, plus one live bucket).
const WARMUP_HOURS: usize = 1009;

/// The single-threaded HES configuration every scenario fits under: the
/// re-score path must be cheap relative to *this* grid, so the grid stays
/// the small deterministic one.
fn bench_config() -> PipelineConfig {
    PipelineConfig {
        method: MethodChoice::Hes,
        grid: GridStrategy::Full,
        granularity: Granularity::Hourly,
        max_candidates: 4,
        fourier_stage: false,
        auto_detect_shocks: false,
        eval: EvaluationOptions {
            threads: 1,
            fit: ArimaOptions {
                max_evals: 120,
                restarts: 0,
                interval_level: 0.95,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

/// Quarter-hour agent points whose hourly means form a daily cycle.
fn quarter_hour_points(from_hour: usize, hours: usize) -> Vec<(u64, f64)> {
    let mut pts = Vec::with_capacity(hours * 4);
    for h in from_hour..from_hour + hours {
        let base = 60.0
            + 20.0 * (2.0 * std::f64::consts::PI * h as f64 / 24.0).sin()
            + ((h * 2654435761 % 97) as f64) / 25.0;
        for q in 0..4 {
            let ts = (h * 3600 + q * 900) as u64;
            pts.push((ts, base + (q as f64 - 1.5) * 0.2));
        }
    }
    pts
}

#[derive(Debug, Clone, Serialize)]
struct IngestInfo {
    points: usize,
    wall_s: f64,
    points_per_second: f64,
    complete_hours: usize,
}

#[derive(Debug, Clone, Serialize)]
struct EngineInfo {
    warmup_hours: usize,
    first_fit_ms: f64,
    appended_hours: usize,
    rescored_hours: usize,
    relearned_hours: usize,
    rescore_ms_mean: f64,
    rescore_ms_p95: f64,
    rescore_ms_max: f64,
    rescore_speedup_vs_fit: f64,
    relearn_ms_mean: f64,
    relearns: u64,
    rescores: u64,
    alerts_fired: usize,
}

#[derive(Debug, Clone, Serialize)]
struct ServeHttpInfo {
    push_points: usize,
    push_wall_s: f64,
    push_points_per_second: f64,
    forecast_gets: usize,
    forecast_get_ms_mean: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ServeSnapshot {
    quick: bool,
    method: String,
    ingest: IngestInfo,
    engine: EngineInfo,
    serve_http: ServeHttpInfo,
}

/// One raw HTTP exchange over an open loopback connection.
fn http(addr: std::net::SocketAddr, request: &str) -> Result<String, Box<dyn std::error::Error>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var("DWCP_QUICK").is_ok();
    let ingest_points = if quick { 100_000 } else { 1_000_000 };
    let appended_hours = if quick { 12 } else { 48 };
    let forecast_gets = if quick { 20 } else { 200 };
    println!(
        "bench_serve: {ingest_points} ingest points, {appended_hours} appended hours{}",
        if quick { ", quick mode" } else { "" }
    );
    let mut failures = 0usize;

    // 1. Raw ingest throughput: fold 15-minute points into hourly buckets.
    let pts = quarter_hour_points(0, ingest_points / 4);
    let mut buffer = IngestBuffer::hourly();
    let t0 = Instant::now();
    for &(ts, v) in &pts {
        buffer.push(ts, v)?;
    }
    let wall = t0.elapsed().as_secs_f64();
    let ingest = IngestInfo {
        points: pts.len(),
        wall_s: wall,
        points_per_second: pts.len() as f64 / wall.max(1e-9),
        complete_hours: buffer.complete_buckets(),
    };
    println!(
        "  ingest: {} points in {:.3}s ({:.0} points/s, {} complete hours)",
        ingest.points, ingest.wall_s, ingest.points_per_second, ingest.complete_hours
    );

    // 2. Engine: one grid fit, then frozen re-scores per appended hour.
    let mut config = EngineConfig::new(bench_config());
    config.rules = vec![AlertRule::new("cpu-50", 50.0)];
    let mut engine = Engine::new(config);
    let warmup = quarter_hour_points(0, WARMUP_HOURS + 1);
    let t0 = Instant::now();
    let outcome = engine.push_batch("bench/CPU", &warmup)?;
    let first_fit_ms = t0.elapsed().as_secs_f64() * 1e3;
    match outcome {
        StepOutcome::Scored(ref s) if s.action == ScoreAction::Learned => {}
        other => {
            eprintln!("FAIL engine: warmup step was {other:?}, expected a Learned score");
            failures += 1;
        }
    }
    println!("  engine: first fit {first_fit_ms:.1} ms");

    // Frozen re-scores are the common case; a grid search is allowed only
    // when the repository names a relearn reason (stale / degraded), and
    // those must stay rare. Latency stats cover the re-scored hours; the
    // relearned hours are reported separately.
    let mut rescore_ms: Vec<f64> = Vec::with_capacity(appended_hours);
    let mut relearn_ms: Vec<f64> = Vec::new();
    for hour in 0..appended_hours {
        let batch = quarter_hour_points(WARMUP_HOURS + 1 + hour, 1);
        let t0 = Instant::now();
        let outcome = engine.push_batch("bench/CPU", &batch)?;
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        match outcome {
            StepOutcome::Scored(ref s) if s.action == ScoreAction::Rescored => {
                rescore_ms.push(elapsed_ms);
            }
            StepOutcome::Scored(ref s) if matches!(s.action, ScoreAction::Relearned(_)) => {
                relearn_ms.push(elapsed_ms);
            }
            other => {
                eprintln!("FAIL engine: appended hour {hour} was {other:?}, expected a score");
                failures += 1;
            }
        }
    }
    rescore_ms.sort_by(|a, b| total_cmp_f64(*a, *b));
    let mean = rescore_ms.iter().sum::<f64>() / rescore_ms.len().max(1) as f64;
    let p95 = rescore_ms
        .get(((rescore_ms.len() as f64 * 0.95) as usize).min(rescore_ms.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);
    let max = rescore_ms.last().copied().unwrap_or(0.0);
    let relearn_mean = relearn_ms.iter().sum::<f64>() / relearn_ms.len().max(1) as f64;
    let status = engine
        .status("bench/CPU")
        .ok_or("engine lost the benched workload")?;
    println!(
        "  engine: re-score per appended hour mean {mean:.2} ms, p95 {p95:.2} ms, max {max:.2} ms \
         ({} rescores, {} relearns, {} alerts)",
        status.rescores, status.relearns, status.alerts_fired
    );
    if status.rescores != rescore_ms.len() as u64 {
        eprintln!(
            "FAIL engine: status counts {} rescores, observed {}",
            status.rescores,
            rescore_ms.len()
        );
        failures += 1;
    }
    // First fit + one grid search per relearned hour, nothing hidden.
    if status.relearns != 1 + relearn_ms.len() as u64 {
        eprintln!(
            "FAIL engine: status counts {} grid searches, observed 1 + {} relearned hours",
            status.relearns,
            relearn_ms.len()
        );
        failures += 1;
    }
    if rescore_ms.len() * 4 < appended_hours * 3 {
        eprintln!(
            "FAIL engine: only {} of {appended_hours} appended hours were frozen re-scores — \
             the incremental path is not the common case",
            rescore_ms.len()
        );
        failures += 1;
    }
    if mean >= first_fit_ms {
        eprintln!(
            "FAIL engine: mean re-score {mean:.2} ms is not cheaper than the first fit \
             {first_fit_ms:.1} ms"
        );
        failures += 1;
    }
    let engine_info = EngineInfo {
        warmup_hours: WARMUP_HOURS,
        first_fit_ms,
        appended_hours,
        rescored_hours: rescore_ms.len(),
        relearned_hours: relearn_ms.len(),
        rescore_ms_mean: mean,
        rescore_ms_p95: p95,
        rescore_ms_max: max,
        rescore_speedup_vs_fit: first_fit_ms / mean.max(1e-9),
        relearn_ms_mean: relearn_mean,
        relearns: status.relearns,
        rescores: status.rescores,
        alerts_fired: status.alerts_fired,
    };

    // 3. The same flow through the real daemon over loopback TCP.
    let mut config = EngineConfig::new(bench_config());
    config.rules = vec![AlertRule::new("cpu-50", 50.0)];
    let handle = serve::start(Engine::new(config), "127.0.0.1:0", 2)?;
    let addr = handle.addr();
    let push_pts = quarter_hour_points(0, WARMUP_HOURS + 1);
    let mut body = String::with_capacity(push_pts.len() * 16);
    for (ts, v) in &push_pts {
        body.push_str(&format!("{ts},{v}\n"));
    }
    let request = format!(
        "POST /push?workload=bench HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let t0 = Instant::now();
    let response = http(addr, &request)?;
    let push_wall = t0.elapsed().as_secs_f64();
    if !response.contains("\"action\":\"learned\"") {
        eprintln!("FAIL serve: bulk push did not produce a learned score: {response}");
        failures += 1;
    }
    let t0 = Instant::now();
    for _ in 0..forecast_gets {
        let response = http(
            addr,
            "GET /forecast?workload=bench HTTP/1.1\r\nHost: b\r\n\r\n",
        )?;
        if !response.contains("\"mean\"") {
            eprintln!("FAIL serve: forecast read failed: {response}");
            failures += 1;
            break;
        }
    }
    let get_ms_mean = t0.elapsed().as_secs_f64() * 1e3 / forecast_gets as f64;
    let serve_http = ServeHttpInfo {
        push_points: push_pts.len(),
        push_wall_s: push_wall,
        push_points_per_second: push_pts.len() as f64 / push_wall.max(1e-9),
        forecast_gets,
        forecast_get_ms_mean: get_ms_mean,
    };
    println!(
        "  serve: bulk push of {} points in {:.2}s ({:.0} points/s incl. fit), \
         GET /forecast {:.2} ms mean",
        serve_http.push_points,
        serve_http.push_wall_s,
        serve_http.push_points_per_second,
        serve_http.forecast_get_ms_mean
    );
    let _ = http(addr, "POST /shutdown HTTP/1.1\r\nHost: b\r\n\r\n")?;
    handle.wait();

    let snapshot = ServeSnapshot {
        quick,
        method: "hes/hourly".into(),
        ingest,
        engine: engine_info,
        serve_http,
    };
    let dir = dwcp_bench::results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_serve.json");
    std::fs::write(&path, serde_json::to_string_pretty(&snapshot)?)?;
    println!("wrote {}", path.display());

    if failures > 0 {
        eprintln!("FAIL: {failures} resident-engine contract violations");
        std::process::exit(1);
    }
    Ok(())
}
