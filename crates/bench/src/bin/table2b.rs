//! Regenerates Table 2(b): Experiment Results — OLTP.
//!
//! Same protocol as `table2a`, on the complicated OLTP scenario with
//! growth, multiple seasonality and six-hourly backup shocks.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin table2b
//! ```

use dwcp_bench::{print_table2, regenerate_table2};
use dwcp_workload::oltp_scenario;

fn main() {
    let scenario = oltp_scenario();
    eprintln!("regenerating Table 2(b) on {} …", scenario.kind.label());
    let artifact = regenerate_table2("table2b", &scenario);
    print_table2(&artifact);
    match artifact.save() {
        Ok(path) => eprintln!("\nartifact written to {}", path.display()),
        Err(e) => eprintln!("\nfailed to write artifact: {e}"),
    }
}
