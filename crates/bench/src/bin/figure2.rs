//! Regenerates Figure 2: "Key Metrics: Workload Descriptions — Experiment
//! One OLAP" — the CPU / Memory / Logical IOPS traces for both cluster
//! instances, plus the Figure 5 topology sketch.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure2
//! ```

use dwcp_bench::{sparkline, EXPERIMENT_SEED};
use dwcp_workload::{olap_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = olap_scenario();
    print_topology(&scenario);
    print_traces(&scenario)
}

fn print_topology(scenario: &dwcp_workload::Scenario) {
    println!("Figure 5: Experimental Architecture (N-tier)");
    println!("  users ──> application servers ──> load balancer");
    for name in scenario.instance_names() {
        println!("                                      ├──> instance {name}");
    }
    println!(
        "  agent polls each instance every 15 min ──> central repository (hourly aggregation)\n"
    );
}

fn print_traces(scenario: &dwcp_workload::Scenario) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "Figure 2: {} key metrics, {} days hourly",
        scenario.kind.label(),
        scenario.duration_days
    );
    let repo = scenario.run(EXPERIMENT_SEED)?;
    for metric in Metric::ALL {
        println!("\n--- {metric} ({})", metric.unit());
        for instance in scenario.instance_names() {
            let mut s = repo.hourly_series(&instance, metric, scenario.start, scenario.hours())?;
            dwcp_series::interpolate::interpolate_series(&mut s)?;
            println!(
                "{instance}: min {:>12.1}  mean {:>12.1}  max {:>12.1}",
                s.min(),
                s.mean(),
                s.max()
            );
            println!("  {}", sparkline(s.values(), 96));
        }
    }
    Ok(())
}
