//! Micro-benchmark of the evaluation kernels: the scalar reference CSS
//! recursion versus the vectorised kernel versus the batched
//! multi-candidate kernel, plus the unconstrained-parameter transform and
//! the full objective path (transform + polynomial expansion + CSS) so the
//! per-evaluation cost can be attributed layer by layer. A second section
//! times the exponential-smoothing families the same three ways — scalar
//! reference, solo kernel, batched kernel — per ETS/TBATS menu shape, with
//! bitwise SSE parity across all three paths asserted in-binary.
//!
//! Writes `results/BENCH_kernels.json`.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_kernels
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_kernels   # fewer iters
//! ```

use dwcp_bench::results_dir;
use dwcp_math::kernels;
use dwcp_math::kernels::holt_winters::{EtsLane, SeasonalClass};
use dwcp_math::kernels::tbats_filter::TbatsLane;
use dwcp_math::kernels::{tbats_filter, trig_seasonal};
use dwcp_models::arima::css::ExpandedArma;
use dwcp_models::arima::transform::{unconstrained_to_ar_into, unconstrained_to_ma_into};
use serde::Serialize;
use std::time::Instant;

const SERIES_LEN: usize = 480;
const BATCH: usize = 12;

#[derive(Debug, Clone, Serialize)]
struct KernelRow {
    /// Candidate order (p, q) of the expanded ARMA.
    p: usize,
    q: usize,
    /// Scalar reference recursion, ns per evaluation.
    reference_ns: f64,
    /// Vectorised kernel, ns per evaluation.
    kernel_ns: f64,
    /// Batched kernel (batch of 12 sharing one series), ns per candidate.
    batch_ns: f64,
    /// Unconstrained→(AR, MA) transform alone, ns.
    transform_ns: f64,
    /// Full objective path (transform + expansion + CSS), ns.
    objective_ns: f64,
    /// reference / kernel speedup.
    kernel_speedup: f64,
}

/// One exponential-smoothing-family shape timed three ways: the scalar
/// reference recursion/filter, the solo monomorphic kernel, and the
/// time-outer batched kernel at width [`BATCH`].
#[derive(Debug, Clone, Serialize)]
struct FamilyRow {
    /// Model family ("ETS" or "TBATS").
    family: &'static str,
    /// Candidate shape within the family (e.g. "hw-add-24").
    shape: &'static str,
    /// Scalar reference, ns per evaluation.
    reference_ns: f64,
    /// Solo kernel, ns per evaluation.
    kernel_ns: f64,
    /// Batched kernel, ns per candidate.
    batch_ns: f64,
    /// reference / solo-kernel speedup.
    kernel_speedup: f64,
    /// reference / batched per-candidate speedup.
    batch_speedup: f64,
}

/// The batched ETS/TBATS section of the snapshot: same batch width and
/// iteration budget discipline as the CSS rows, with in-binary bitwise
/// parity (reference == solo == batched lane) asserted before timing.
#[derive(Debug, Clone, Serialize)]
struct BatchedFamilies {
    batch: usize,
    iters: usize,
    rows: Vec<FamilyRow>,
    /// Geometric mean of `batch_speedup` over the ETS rows.
    ets_geomean_batch_speedup: f64,
    /// Geometric mean of `batch_speedup` over the TBATS rows.
    tbats_geomean_batch_speedup: f64,
}

/// Geometric mean of `batch_speedup` for one family's rows.
fn geomean_batch_speedup(rows: &[FamilyRow], family: &str) -> f64 {
    let logs: Vec<f64> = rows
        .iter()
        .filter(|r| r.family == family)
        .map(|r| r.batch_speedup.ln())
        .collect();
    if logs.is_empty() {
        return 1.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[derive(Debug, Clone, Serialize)]
struct KernelSnapshot {
    series_len: usize,
    batch: usize,
    iters: usize,
    rows: Vec<KernelRow>,
    batched_families: BatchedFamilies,
}

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            0.03 * tf
                + 12.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 89) as f64) / 25.0
        })
        .collect()
}

/// Unconstrained parameter vector for an order-k block, mildly varied so
/// the transform does real work.
fn u_block(k: usize, offset: f64) -> Vec<f64> {
    (0..k)
        .map(|i| 0.3 * ((i as f64) * 0.7 + offset).sin())
        .collect()
}

/// Best-of-3 timing of `iters` runs of `f`, returning ns per run.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

/// Bit-compare two optional SSEs; `None` (diverged) must match too.
fn assert_sse_bits(a: Option<f64>, b: Option<f64>, context: &str) {
    assert_eq!(
        a.map(f64::to_bits),
        b.map(f64::to_bits),
        "bitwise SSE parity violated: {context} ({a:?} vs {b:?})"
    );
}

/// Time the ETS menu shapes through reference / solo kernel / batched
/// kernel, asserting bitwise SSE parity across all three paths first.
fn bench_ets(iters: usize, y: &[f64]) -> Vec<FamilyRow> {
    struct Shape {
        name: &'static str,
        class: SeasonalClass,
        alpha: f64,
        beta: f64,
        gamma: f64,
        phi: f64,
        has_trend: bool,
        m: usize,
    }
    let shapes = [
        Shape {
            name: "ses",
            class: SeasonalClass::None,
            alpha: 0.3,
            beta: 0.0,
            gamma: 0.0,
            phi: 1.0,
            has_trend: false,
            m: 0,
        },
        Shape {
            name: "holt",
            class: SeasonalClass::None,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.0,
            phi: 1.0,
            has_trend: true,
            m: 0,
        },
        Shape {
            name: "holt-damped",
            class: SeasonalClass::None,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.0,
            phi: 0.98,
            has_trend: true,
            m: 0,
        },
        Shape {
            name: "hw-add-24",
            class: SeasonalClass::Additive,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.05,
            phi: 1.0,
            has_trend: true,
            m: 24,
        },
        Shape {
            name: "hw-mult-24",
            class: SeasonalClass::Multiplicative,
            alpha: 0.3,
            beta: 0.1,
            gamma: 0.05,
            phi: 1.0,
            has_trend: true,
            m: 24,
        },
    ];
    let level0 = y[0];
    let trend0 = 0.05;
    let mut rows = Vec::new();
    for shape in &shapes {
        let base_seasonal: Vec<f64> = match shape.class {
            SeasonalClass::None => Vec::new(),
            SeasonalClass::Additive => (0..shape.m).map(|i| (i as f64 * 0.26).sin()).collect(),
            SeasonalClass::Multiplicative => (0..shape.m)
                .map(|i| 1.0 + 0.05 * (i as f64 * 0.26).sin())
                .collect(),
        };
        // One per-lane α ladder with lane 0 at the baseline so the batched
        // lane 0 is directly comparable to the reference and solo runs.
        let alphas: Vec<f64> = (0..BATCH)
            .map(|c| shape.alpha * (1.0 - 0.01 * c as f64))
            .collect();
        let mut seas = base_seasonal.clone();
        let solo = |seas: &mut [f64], alpha: f64| match shape.class {
            SeasonalClass::None => kernels::holt_winters::run_none(
                y,
                alpha,
                shape.beta,
                shape.phi,
                level0,
                trend0,
                shape.has_trend,
            ),
            SeasonalClass::Additive => kernels::holt_winters::run_additive(
                y,
                alpha,
                shape.beta,
                shape.gamma,
                shape.phi,
                level0,
                trend0,
                shape.has_trend,
                seas,
            ),
            SeasonalClass::Multiplicative => kernels::holt_winters::run_multiplicative(
                y,
                alpha,
                shape.beta,
                shape.gamma,
                shape.phi,
                level0,
                trend0,
                shape.has_trend,
                seas,
            ),
        };
        let mut seasonal_pool: Vec<Vec<f64>> = (0..BATCH).map(|_| base_seasonal.clone()).collect();
        let run_batch = |pool: &mut [Vec<f64>]| {
            let mut lanes: Vec<EtsLane<'_>> = pool
                .iter_mut()
                .zip(&alphas)
                .map(|(seas, &alpha)| {
                    seas.copy_from_slice(&base_seasonal);
                    EtsLane {
                        y,
                        class: shape.class,
                        alpha,
                        beta: shape.beta,
                        gamma: shape.gamma,
                        phi: shape.phi,
                        has_trend: shape.has_trend,
                        level: level0,
                        trend: trend0,
                        seasonal: seas,
                        sse: 0.0,
                        alive: true,
                    }
                })
                .collect();
            kernels::ets_batch(&mut lanes);
            lanes[0].result()
        };

        // Parity before timing: reference, solo kernel and the batched
        // lane at the same parameters must agree bit for bit.
        seas.copy_from_slice(&base_seasonal);
        let reference = kernels::reference::ets_recursion(
            y,
            shape.class,
            shape.alpha,
            shape.beta,
            shape.gamma,
            shape.phi,
            shape.has_trend,
            level0,
            trend0,
            &mut seas,
        );
        seas.copy_from_slice(&base_seasonal);
        let solo_state = solo(&mut seas, shape.alpha);
        assert_sse_bits(
            reference.sse,
            solo_state.sse,
            &format!("ETS {} reference vs solo", shape.name),
        );
        let batched_state = run_batch(&mut seasonal_pool);
        assert_sse_bits(
            reference.sse,
            batched_state.sse,
            &format!("ETS {} reference vs batched", shape.name),
        );

        let mut sink = 0.0f64;
        let reference_ns = time_ns(iters, || {
            seas.copy_from_slice(&base_seasonal);
            let st = kernels::reference::ets_recursion(
                y,
                shape.class,
                shape.alpha,
                shape.beta,
                shape.gamma,
                shape.phi,
                shape.has_trend,
                level0,
                trend0,
                &mut seas,
            );
            sink += st.sse.unwrap_or(0.0);
        });
        let kernel_ns = time_ns(iters, || {
            seas.copy_from_slice(&base_seasonal);
            sink += solo(&mut seas, shape.alpha).sse.unwrap_or(0.0);
        });
        let batch_iters = (iters / BATCH).max(1);
        let batch_ns = time_ns(batch_iters, || {
            sink += run_batch(&mut seasonal_pool).sse.unwrap_or(0.0);
        }) / BATCH as f64;
        std::hint::black_box(sink);

        println!(
            "  ETS   {:<14} reference {reference_ns:>7.0} ns  kernel {kernel_ns:>7.0} ns  \
             batch {batch_ns:>7.0} ns/cand  ({:.2}x solo, {:.2}x batched)",
            shape.name,
            reference_ns / kernel_ns,
            reference_ns / batch_ns
        );
        rows.push(FamilyRow {
            family: "ETS",
            shape: shape.name,
            reference_ns,
            kernel_ns,
            batch_ns,
            kernel_speedup: reference_ns / kernel_ns,
            batch_speedup: reference_ns / batch_ns,
        });
    }
    rows
}

/// Time the TBATS menu shapes through reference / solo kernel / batched
/// kernel, asserting bitwise SSE parity across all three paths first. The
/// reference rebuilds rotation tables and reallocates ARMA histories per
/// call (the per-objective-call shape of the original model filter); the
/// kernel paths reuse caller-pooled state.
fn bench_tbats(iters: usize, z: &[f64]) -> Vec<FamilyRow> {
    struct Shape {
        name: &'static str,
        seasons: &'static [(f64, usize)],
        use_trend: bool,
        phi: f64,
        ar: &'static [f64],
        ma: &'static [f64],
    }
    let shapes = [
        Shape {
            name: "level",
            seasons: &[],
            use_trend: false,
            phi: 0.0,
            ar: &[],
            ma: &[],
        },
        Shape {
            name: "trend-arma11",
            seasons: &[],
            use_trend: true,
            phi: 0.95,
            ar: &[0.4],
            ma: &[0.3],
        },
        Shape {
            name: "seasonal-24x3",
            seasons: &[(24.0, 3)],
            use_trend: false,
            phi: 0.0,
            ar: &[],
            ma: &[],
        },
        Shape {
            name: "damped-arma-24x3",
            seasons: &[(24.0, 3)],
            use_trend: true,
            phi: 0.95,
            ar: &[0.4],
            ma: &[0.3],
        },
        Shape {
            name: "dual-24x3-168x5",
            seasons: &[(24.0, 3), (168.0, 5)],
            use_trend: true,
            phi: 0.95,
            ar: &[0.4],
            ma: &[0.3],
        },
    ];
    let (alpha, beta) = (0.1, 0.05);
    let level0 = z[0];
    let trend0 = 0.02;
    let mut rows = Vec::new();
    for shape in &shapes {
        let tables: Vec<Vec<(f64, f64)>> = shape
            .seasons
            .iter()
            .map(|&(period, harmonics)| trig_seasonal::rotation_table(period, harmonics))
            .collect();
        let gammas: Vec<(f64, f64)> = shape.seasons.iter().map(|_| (0.01, 0.005)).collect();
        let seasonal_len: usize = tables.iter().map(|t| 2 * t.len()).sum();
        let base_seasonal: Vec<f64> = (0..seasonal_len)
            .map(|i| 0.1 * (i as f64 * 0.37).sin())
            .collect();
        let alphas: Vec<f64> = (0..BATCH)
            .map(|c| alpha * (1.0 - 0.01 * c as f64))
            .collect();

        let mut seas = base_seasonal.clone();
        let mut d_hist = vec![0.0; shape.ar.len()];
        let mut e_hist = vec![0.0; shape.ma.len()];
        let solo = |seas: &mut [f64], d_hist: &mut [f64], e_hist: &mut [f64], alpha: f64| {
            seas.copy_from_slice(&base_seasonal);
            d_hist.fill(0.0);
            e_hist.fill(0.0);
            let mut lane = TbatsLane {
                z,
                alpha,
                beta,
                phi: shape.phi,
                use_trend: shape.use_trend,
                gammas: &gammas,
                ar: shape.ar,
                ma: shape.ma,
                tables: &tables,
                level: level0,
                trend: trend0,
                seasonal: seas,
                d_hist,
                e_hist,
                sse: 0.0,
                alive: true,
            };
            tbats_filter::run(&mut lane);
            lane.result()
        };
        let mut seasonal_pool: Vec<Vec<f64>> = (0..BATCH).map(|_| base_seasonal.clone()).collect();
        let mut d_pool: Vec<Vec<f64>> = (0..BATCH).map(|_| vec![0.0; shape.ar.len()]).collect();
        let mut e_pool: Vec<Vec<f64>> = (0..BATCH).map(|_| vec![0.0; shape.ma.len()]).collect();
        let run_batch =
            |seasonal_pool: &mut [Vec<f64>], d_pool: &mut [Vec<f64>], e_pool: &mut [Vec<f64>]| {
                let mut lanes: Vec<TbatsLane<'_>> = seasonal_pool
                    .iter_mut()
                    .zip(d_pool.iter_mut())
                    .zip(e_pool.iter_mut())
                    .zip(&alphas)
                    .map(|(((seas, d_hist), e_hist), &alpha)| {
                        seas.copy_from_slice(&base_seasonal);
                        d_hist.fill(0.0);
                        e_hist.fill(0.0);
                        TbatsLane {
                            z,
                            alpha,
                            beta,
                            phi: shape.phi,
                            use_trend: shape.use_trend,
                            gammas: &gammas,
                            ar: shape.ar,
                            ma: shape.ma,
                            tables: &tables,
                            level: level0,
                            trend: trend0,
                            seasonal: seas,
                            d_hist,
                            e_hist,
                            sse: 0.0,
                            alive: true,
                        }
                    })
                    .collect();
                tbats_filter::run_batch(&mut lanes);
                lanes[0].result()
            };

        // Parity before timing.
        let reference = kernels::reference::tbats_filter(
            z,
            shape.seasons,
            alpha,
            beta,
            shape.phi,
            shape.use_trend,
            &gammas,
            shape.ar,
            shape.ma,
            level0,
            trend0,
            &base_seasonal,
        );
        let solo_sse = solo(&mut seas, &mut d_hist, &mut e_hist, alpha);
        assert_sse_bits(
            reference,
            solo_sse,
            &format!("TBATS {} reference vs solo", shape.name),
        );
        let batched_sse = run_batch(&mut seasonal_pool, &mut d_pool, &mut e_pool);
        assert_sse_bits(
            reference,
            batched_sse,
            &format!("TBATS {} reference vs batched", shape.name),
        );

        let mut sink = 0.0f64;
        let reference_ns = time_ns(iters, || {
            sink += kernels::reference::tbats_filter(
                z,
                shape.seasons,
                alpha,
                beta,
                shape.phi,
                shape.use_trend,
                &gammas,
                shape.ar,
                shape.ma,
                level0,
                trend0,
                &base_seasonal,
            )
            .unwrap_or(0.0);
        });
        let kernel_ns = time_ns(iters, || {
            sink += solo(&mut seas, &mut d_hist, &mut e_hist, alpha).unwrap_or(0.0);
        });
        let batch_iters = (iters / BATCH).max(1);
        let batch_ns = time_ns(batch_iters, || {
            sink += run_batch(&mut seasonal_pool, &mut d_pool, &mut e_pool).unwrap_or(0.0);
        }) / BATCH as f64;
        std::hint::black_box(sink);

        println!(
            "  TBATS {:<14} reference {reference_ns:>7.0} ns  kernel {kernel_ns:>7.0} ns  \
             batch {batch_ns:>7.0} ns/cand  ({:.2}x solo, {:.2}x batched)",
            shape.name,
            reference_ns / kernel_ns,
            reference_ns / batch_ns
        );
        rows.push(FamilyRow {
            family: "TBATS",
            shape: shape.name,
            reference_ns,
            kernel_ns,
            batch_ns,
            kernel_speedup: reference_ns / kernel_ns,
            batch_speedup: reference_ns / batch_ns,
        });
    }
    rows
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = if std::env::var("DWCP_QUICK").is_ok() {
        2_000
    } else {
        20_000
    };
    let w = series(SERIES_LEN);
    let specs = [
        (1usize, 0usize),
        (13, 0), // pure AR at the champion's order: isolates the AR fill
        (0, 2),  // pure MA: isolates the serial recurrence
        (5, 1),
        (13, 2),
        (30, 2),
    ];
    let mut rows = Vec::new();

    for &(p, q) in &specs {
        let u_ar = u_block(p, 0.1);
        let u_ma = u_block(q, 0.9);
        let (mut phi, mut theta) = (Vec::new(), Vec::new());
        let (mut pacs, mut prev) = (Vec::new(), Vec::new());
        unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
        unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);

        let mut a = Vec::new();
        let mut sink = 0.0f64;
        let reference_ns = time_ns(iters, || {
            sink += kernels::reference::css(&phi, &theta, &w, &mut a);
        });
        let kernel_ns = time_ns(iters, || {
            sink += kernels::css(&phi, &theta, &w, &mut a);
        });

        // Batch of 12 candidates with slightly different coefficients but
        // the same differencing signature (one shared series).
        let batch_coeffs: Vec<(Vec<f64>, Vec<f64>)> = (0..BATCH)
            .map(|c| {
                let mut ph = phi.clone();
                let mut th = theta.clone();
                for v in ph.iter_mut() {
                    *v *= 1.0 - 0.01 * c as f64;
                }
                for v in th.iter_mut() {
                    *v *= 1.0 - 0.01 * c as f64;
                }
                (ph, th)
            })
            .collect();
        let batch_refs: Vec<(&[f64], &[f64], &[f64])> = batch_coeffs
            .iter()
            .map(|(ph, th)| (ph.as_slice(), th.as_slice(), w.as_slice()))
            .collect();
        let mut scratch = kernels::CssBatchScratch::default();
        let mut out = Vec::new();
        let batch_iters = (iters / BATCH).max(1);
        let batch_ns = time_ns(batch_iters, || {
            kernels::css_batch(&batch_refs, &mut scratch, &mut out);
            sink += out[0];
        }) / BATCH as f64;

        let transform_ns = time_ns(iters, || {
            unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
            unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);
            sink += phi.first().copied().unwrap_or(0.0);
        });

        let mut expanded = ExpandedArma::default();
        let objective_ns = time_ns(iters, || {
            unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
            unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);
            expanded.expand_into(&phi, &theta, &[], &[], 0);
            sink += expanded.css_into(&w, &mut a);
        });

        println!(
            "  ({p:>2},{q})  reference {reference_ns:>7.0} ns  kernel {kernel_ns:>7.0} ns  \
             batch {batch_ns:>7.0} ns/cand  transform {transform_ns:>6.0} ns  \
             objective {objective_ns:>7.0} ns  ({:.2}x)",
            reference_ns / kernel_ns
        );
        rows.push(KernelRow {
            p,
            q,
            reference_ns,
            kernel_ns,
            batch_ns,
            transform_ns,
            objective_ns,
            kernel_speedup: reference_ns / kernel_ns,
        });
        std::hint::black_box(sink);
    }

    // Batched exponential-smoothing families. Multiplicative Holt-Winters
    // needs a strictly positive series; the shift changes nothing for the
    // additive recursions' cost profile.
    let y: Vec<f64> = w.iter().map(|v| v + 50.0).collect();
    let mut family_rows = bench_ets(iters, &y);
    family_rows.extend(bench_tbats(iters, &w));
    let ets_geo = geomean_batch_speedup(&family_rows, "ETS");
    let tbats_geo = geomean_batch_speedup(&family_rows, "TBATS");
    println!("  geomean batched speedup: ETS {ets_geo:.2}x  TBATS {tbats_geo:.2}x");

    let snapshot = KernelSnapshot {
        series_len: SERIES_LEN,
        batch: BATCH,
        iters,
        rows,
        batched_families: BatchedFamilies {
            batch: BATCH,
            iters,
            rows: family_rows,
            ets_geomean_batch_speedup: ets_geo,
            tbats_geomean_batch_speedup: tbats_geo,
        },
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&snapshot).expect("serializable"),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
