//! Micro-benchmark of the evaluation kernels: the scalar reference CSS
//! recursion versus the vectorised kernel versus the batched
//! multi-candidate kernel, plus the unconstrained-parameter transform and
//! the full objective path (transform + polynomial expansion + CSS) so the
//! per-evaluation cost can be attributed layer by layer.
//!
//! Writes `results/BENCH_kernels.json`.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_kernels
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_kernels   # fewer iters
//! ```

use dwcp_bench::results_dir;
use dwcp_math::kernels;
use dwcp_models::arima::css::ExpandedArma;
use dwcp_models::arima::transform::{unconstrained_to_ar_into, unconstrained_to_ma_into};
use serde::Serialize;
use std::time::Instant;

const SERIES_LEN: usize = 480;
const BATCH: usize = 12;

#[derive(Debug, Clone, Serialize)]
struct KernelRow {
    /// Candidate order (p, q) of the expanded ARMA.
    p: usize,
    q: usize,
    /// Scalar reference recursion, ns per evaluation.
    reference_ns: f64,
    /// Vectorised kernel, ns per evaluation.
    kernel_ns: f64,
    /// Batched kernel (batch of 12 sharing one series), ns per candidate.
    batch_ns: f64,
    /// Unconstrained→(AR, MA) transform alone, ns.
    transform_ns: f64,
    /// Full objective path (transform + expansion + CSS), ns.
    objective_ns: f64,
    /// reference / kernel speedup.
    kernel_speedup: f64,
}

#[derive(Debug, Clone, Serialize)]
struct KernelSnapshot {
    series_len: usize,
    batch: usize,
    iters: usize,
    rows: Vec<KernelRow>,
}

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            0.03 * tf
                + 12.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 89) as f64) / 25.0
        })
        .collect()
}

/// Unconstrained parameter vector for an order-k block, mildly varied so
/// the transform does real work.
fn u_block(k: usize, offset: f64) -> Vec<f64> {
    (0..k)
        .map(|i| 0.3 * ((i as f64) * 0.7 + offset).sin())
        .collect()
}

/// Best-of-3 timing of `iters` runs of `f`, returning ns per run.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e9 / iters as f64);
    }
    best
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = if std::env::var("DWCP_QUICK").is_ok() {
        2_000
    } else {
        20_000
    };
    let w = series(SERIES_LEN);
    let specs = [
        (1usize, 0usize),
        (13, 0), // pure AR at the champion's order: isolates the AR fill
        (0, 2),  // pure MA: isolates the serial recurrence
        (5, 1),
        (13, 2),
        (30, 2),
    ];
    let mut rows = Vec::new();

    for &(p, q) in &specs {
        let u_ar = u_block(p, 0.1);
        let u_ma = u_block(q, 0.9);
        let (mut phi, mut theta) = (Vec::new(), Vec::new());
        let (mut pacs, mut prev) = (Vec::new(), Vec::new());
        unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
        unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);

        let mut a = Vec::new();
        let mut sink = 0.0f64;
        let reference_ns = time_ns(iters, || {
            sink += kernels::reference::css(&phi, &theta, &w, &mut a);
        });
        let kernel_ns = time_ns(iters, || {
            sink += kernels::css(&phi, &theta, &w, &mut a);
        });

        // Batch of 12 candidates with slightly different coefficients but
        // the same differencing signature (one shared series).
        let batch_coeffs: Vec<(Vec<f64>, Vec<f64>)> = (0..BATCH)
            .map(|c| {
                let mut ph = phi.clone();
                let mut th = theta.clone();
                for v in ph.iter_mut() {
                    *v *= 1.0 - 0.01 * c as f64;
                }
                for v in th.iter_mut() {
                    *v *= 1.0 - 0.01 * c as f64;
                }
                (ph, th)
            })
            .collect();
        let batch_refs: Vec<(&[f64], &[f64], &[f64])> = batch_coeffs
            .iter()
            .map(|(ph, th)| (ph.as_slice(), th.as_slice(), w.as_slice()))
            .collect();
        let mut scratch = kernels::CssBatchScratch::default();
        let mut out = Vec::new();
        let batch_iters = (iters / BATCH).max(1);
        let batch_ns = time_ns(batch_iters, || {
            kernels::css_batch(&batch_refs, &mut scratch, &mut out);
            sink += out[0];
        }) / BATCH as f64;

        let transform_ns = time_ns(iters, || {
            unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
            unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);
            sink += phi.first().copied().unwrap_or(0.0);
        });

        let mut expanded = ExpandedArma::default();
        let objective_ns = time_ns(iters, || {
            unconstrained_to_ar_into(&u_ar, &mut phi, &mut pacs, &mut prev);
            unconstrained_to_ma_into(&u_ma, &mut theta, &mut pacs, &mut prev);
            expanded.expand_into(&phi, &theta, &[], &[], 0);
            sink += expanded.css_into(&w, &mut a);
        });

        println!(
            "  ({p:>2},{q})  reference {reference_ns:>7.0} ns  kernel {kernel_ns:>7.0} ns  \
             batch {batch_ns:>7.0} ns/cand  transform {transform_ns:>6.0} ns  \
             objective {objective_ns:>7.0} ns  ({:.2}x)",
            reference_ns / kernel_ns
        );
        rows.push(KernelRow {
            p,
            q,
            reference_ns,
            kernel_ns,
            batch_ns,
            transform_ns,
            objective_ns,
            kernel_speedup: reference_ns / kernel_ns,
        });
        std::hint::black_box(sink);
    }

    let snapshot = KernelSnapshot {
        series_len: SERIES_LEN,
        batch: BATCH,
        iters,
        rows,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_kernels.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&snapshot).expect("serializable"),
    )?;
    println!("wrote {}", path.display());
    Ok(())
}
