//! Exercises the full Table 1 protocol: hourly, daily AND weekly
//! forecasts over a long-running workload, through the repository's
//! hourly → daily → weekly aggregation chain — the paper's short-term
//! monitoring versus medium/long-term capacity-planning use cases (§8).
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin granularity_sweep
//! ```

use dwcp_bench::{sparkline, EXPERIMENT_SEED};
use dwcp_core::{EvaluationOptions, MethodChoice, Pipeline, PipelineConfig};
use dwcp_series::{Granularity, TimeSeries};
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A long-horizon estate: 94 weeks of operation with gentle growth so
    // the weekly protocol (92 observations) has data. Growth is tempered
    // versus Experiment Two — +50 users/day for two years would saturate
    // the cluster, which is exactly the scenario capacity planning exists
    // to prevent.
    let mut scenario = oltp_scenario();
    scenario.duration_days = 94 * 7; // 658 days
    scenario.population.growth_per_day = 3.0;
    scenario.population.weekly_cycle_depth = 0.3;

    eprintln!(
        "simulating {} days ({} weeks) of the tempered OLTP estate…",
        scenario.duration_days,
        scenario.duration_days / 7
    );
    let repo = scenario.run(EXPERIMENT_SEED)?;
    let instance = "cdbm011";
    let metric = Metric::CpuPercent;

    let hourly = repo.hourly_series(instance, metric, scenario.start, scenario.hours())?;
    let daily = repo.daily_series(
        instance,
        metric,
        scenario.start,
        scenario.duration_days as usize,
    )?;
    let weekly = repo.weekly_series(
        instance,
        metric,
        scenario.start,
        scenario.duration_days as usize / 7,
    )?;

    println!("aggregation chain for {instance}/{metric}:");
    println!(
        "  hourly : {:>5} obs  {}",
        hourly.len(),
        sparkline(hourly.values(), 64)
    );
    println!(
        "  daily  : {:>5} obs  {}",
        daily.len(),
        sparkline(daily.values(), 64)
    );
    println!(
        "  weekly : {:>5} obs  {}",
        weekly.len(),
        sparkline(weekly.values(), 64)
    );

    println!(
        "\n{:<9} {:>5} {:>6} {:>5}  {:<42} {:>8} {:>8}",
        "protocol", "train", "test", "hrzn", "champion", "RMSE", "MAPE %"
    );
    for (granularity, series) in [
        (Granularity::Hourly, &hourly),
        (Granularity::Daily, &daily),
        (Granularity::Weekly, &weekly),
    ] {
        let outcome = run_protocol(granularity, series)?;
        println!(
            "{:<9} {:>5} {:>6} {:>5}  {:<42} {:>8.2} {:>8.2}",
            granularity.label(),
            granularity.train_size(),
            granularity.test_size(),
            granularity.horizon(),
            outcome.champion,
            outcome.accuracy.rmse,
            outcome.accuracy.mape
        );
    }
    Ok(())
}

fn run_protocol(
    granularity: Granularity,
    series: &TimeSeries,
) -> Result<dwcp_core::ForecastOutcome, Box<dyn std::error::Error>> {
    let pipeline = Pipeline::new(PipelineConfig {
        method: MethodChoice::Sarimax,
        grid: Default::default(),
        granularity,
        max_candidates: 12,
        fourier_stage: true,
        auto_detect_shocks: false,
        eval: EvaluationOptions::default(),
    });
    Ok(pipeline.run(series, &[])?)
}
