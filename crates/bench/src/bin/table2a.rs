//! Regenerates Table 2(a): Experiment Results — OLAP.
//!
//! For every metric × instance of the OLAP scenario, scores the best model
//! of each of the paper's three families (ARIMA, SARIMAX, SARIMAX + FFT +
//! Exogenous) on the Table 1 hourly split and prints the RMSE/MAPE panel.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin table2a
//! # quick smoke run:
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin table2a
//! ```

use dwcp_bench::{print_table2, regenerate_table2};
use dwcp_workload::olap_scenario;

fn main() {
    let scenario = olap_scenario();
    eprintln!("regenerating Table 2(a) on {} …", scenario.kind.label());
    let artifact = regenerate_table2("table2a", &scenario);
    print_table2(&artifact);
    match artifact.save() {
        Ok(path) => eprintln!("\nartifact written to {}", path.display()),
        Err(e) => eprintln!("\nfailed to write artifact: {e}"),
    }
}
