//! Regenerates Figure 6: "Experiment 1: Prediction charts Comparing Three
//! ARIMA Techniques" — the 24-hour CPU prediction of the best ARIMA, best
//! SARIMAX and best SARIMAX+Exogenous+Fourier model against the held-out
//! actuals, as aligned series (CSV on stdout plus a sparkline digest).
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure6
//! ```

use dwcp_bench::{experiment_pipeline, per_family_cap, sparkline, EXPERIMENT_SEED};
use dwcp_core::ModelFamily;
use dwcp_workload::{olap_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = olap_scenario();
    let instance = "cdbm011";
    let series = scenario.hourly(EXPERIMENT_SEED, instance, Metric::CpuPercent)?;
    let exog = scenario.exogenous_columns(scenario.start, series.len());
    let pipeline = experiment_pipeline();
    eprintln!(
        "Figure 6: {} CPU on {instance} — fitting the three families…",
        scenario.kind.label()
    );
    let report = pipeline.family_comparison(&series, &exog, per_family_cap())?;

    let mut working = series.clone();
    dwcp_series::interpolate::interpolate_series(&mut working)?;
    let split =
        dwcp_series::TrainTestSplit::from_series(&working, dwcp_series::Granularity::Hourly)?;
    let actual = split.test.values();

    let families = [
        ModelFamily::Arima,
        ModelFamily::Sarimax,
        ModelFamily::SarimaxFftExogenous,
    ];
    let best: Vec<_> = families
        .iter()
        .map(|&f| report.best_of_family(f).expect("family fitted"))
        .collect();

    for b in &best {
        eprintln!(
            "  {:<46} RMSE {:>8.3}",
            b.candidate.config.describe(),
            b.accuracy.rmse
        );
    }

    // CSV: hour, actual, then one column per technique (mean, lower, upper).
    println!("hour,actual,arima,arima_lo,arima_hi,sarimax,sarimax_lo,sarimax_hi,sarimax_fft_exog,fft_lo,fft_hi");
    for (h, &a) in actual.iter().enumerate() {
        print!("{h},{a:.3}");
        for b in &best {
            print!(
                ",{:.3},{:.3},{:.3}",
                b.forecast.mean[h], b.forecast.lower[h], b.forecast.upper[h]
            );
        }
        println!();
    }

    eprintln!("\ndigest (last 3 training days ‖ 24h prediction):");
    let tail = split.train.tail(72);
    eprintln!("train   : {}", sparkline(tail.values(), 72));
    eprintln!("actual  : {}", sparkline(actual, 24));
    for (f, b) in families.iter().zip(&best) {
        eprintln!(
            "{:<8}: {}",
            f.label().split(' ').next().unwrap_or(""),
            sparkline(&b.forecast.mean, 24)
        );
    }
    Ok(())
}
