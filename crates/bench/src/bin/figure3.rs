//! Regenerates Figure 3: "Key Metrics: Workload Descriptions — Experiment
//! Two OLTP" — the trending, multi-seasonal, shock-laden traces.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure3
//! ```

use dwcp_bench::{sparkline, EXPERIMENT_SEED};
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = oltp_scenario();
    println!(
        "Figure 3: {} key metrics, {} days hourly",
        scenario.kind.label(),
        scenario.duration_days
    );
    println!("traits: trend (+50 users/day), daily + weekly seasonality, 07:00/09:00 surges, 6-hourly backups\n");
    let repo = scenario.run(EXPERIMENT_SEED)?;
    for metric in Metric::ALL {
        println!("--- {metric} ({})", metric.unit());
        for instance in scenario.instance_names() {
            let mut s = repo.hourly_series(&instance, metric, scenario.start, scenario.hours())?;
            dwcp_series::interpolate::interpolate_series(&mut s)?;
            let first_week = s.slice(0, 168).mean();
            let last_week = s.slice(s.len() - 168, s.len()).mean();
            println!(
                "{instance}: min {:>10.1}  mean {:>10.1}  max {:>10.1}  weekly-mean {:.1} → {:.1}",
                s.min(),
                s.mean(),
                s.max(),
                first_week,
                last_week
            );
            println!("  {}", sparkline(s.values(), 96));
        }
        println!();
    }
    // Zoom on one day to show the surge/backup microstructure.
    let mut day = repo.hourly_series(
        "cdbm011",
        Metric::LogicalIops,
        scenario.start,
        scenario.hours(),
    )?;
    dwcp_series::interpolate::interpolate_series(&mut day)?;
    let d20 = &day.values()[20 * 24..21 * 24];
    println!(
        "day-20 zoom, cdbm011 Logical IOPS (hours 0-23; backups at 0/6/12/18, surges 7-11 & 9-10):"
    );
    println!("  {}", sparkline(d20, 48));
    for (h, v) in d20.iter().enumerate() {
        let marks = match h {
            0 | 6 | 12 | 18 => " <- backup",
            7..=10 => " <- surge window",
            _ => "",
        };
        println!("  {h:>2}h {v:>10.0}{marks}");
    }
    Ok(())
}
