//! Regenerates Figure 8: "Proposed User Interfaces: Model Selections and
//! Predictions" — the monitoring view where "the user can select between
//! SARIMAX or HES". Rendered as a terminal dashboard: both methods run on
//! the same instance, charts with history ‖ prediction, and the champion
//! summary the UI would surface.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure8
//! ```

use dwcp_bench::{experiment_pipeline, sparkline, EXPERIMENT_SEED};
use dwcp_core::{MethodChoice, Pipeline, ThresholdAdvisor};
use dwcp_workload::{olap_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = olap_scenario();
    let instance = "cdbm011";
    let series = scenario.hourly(EXPERIMENT_SEED, instance, Metric::CpuPercent)?;
    let exog = scenario.exogenous_columns(scenario.start, series.len());

    println!("┌──────────────────────────────────────────────────────────────────────┐");
    println!("│  dwcp monitor — clustered database {instance:<34}│");
    println!("│  metric: CPU (%)     window: trailing 42 days     forecast: 24 h     │");
    println!("└──────────────────────────────────────────────────────────────────────┘");

    for method in [MethodChoice::Sarimax, MethodChoice::Hes] {
        let mut pipeline = experiment_pipeline();
        pipeline.config.method = method;
        let exog_for_run: &[Vec<f64>] = if method == MethodChoice::Sarimax {
            &exog
        } else {
            &[]
        };
        let outcome = Pipeline::new(pipeline.config.clone()).run(&series, exog_for_run)?;
        let label = match method {
            MethodChoice::Sarimax => "SARIMAX",
            MethodChoice::Hes => "HES",
            MethodChoice::Tbats => "TBATS",
            MethodChoice::Auto => "AUTO",
        };
        println!("\n▼ model selection: {label}");
        // The family actually chosen can differ from the menu label under
        // AUTO, so the UI surfaces it next to the champion.
        let chosen = outcome
            .family
            .map(|f| f.label())
            .unwrap_or("(unknown family)");
        println!("  champion : {}  [{chosen}]", outcome.champion);
        println!(
            "  accuracy : RMSE {:.2}  MAPE {:.2}%  MAPA {:.2}%  ({} models evaluated)",
            outcome.accuracy.rmse, outcome.accuracy.mape, outcome.accuracy.mapa, outcome.evaluated
        );
        let tail = outcome.train.tail(96);
        println!("  history  : {}", sparkline(tail.values(), 64));
        println!(
            "  forecast : {}{}",
            " ".repeat(40),
            sparkline(&outcome.test_forecast.mean, 24)
        );
        println!(
            "  actual   : {}{}",
            " ".repeat(40),
            sparkline(outcome.test.values(), 24)
        );
        let advisor = ThresholdAdvisor::new(90.0);
        match advisor.analyze(&outcome.test_forecast, outcome.test.origin(), 3600) {
            Some(adv) => println!(
                "  ⚠ threshold 90%: {:?} breach at +{}h",
                adv.severity, adv.step
            ),
            None => println!("  ✓ threshold 90%: no breach inside the horizon"),
        }
    }
    Ok(())
}
