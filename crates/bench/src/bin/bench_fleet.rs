//! Fleet-scheduler snapshot: the 2-instance × 3-metric × 2-granularity
//! OLTP batch (12 jobs), three ways —
//!
//! 1. `sequential`: one `Pipeline::run` per job, cold full grid,
//! 2. `fleet cold`: the same 12 jobs through one shared worker pool,
//! 3. `fleet relearn`: the batch again, seeded from the stored champions
//!    (pruned neighbourhood grid, warm-started parameters).
//!
//! Writes `results/BENCH_fleet.json` and exits non-zero if any relearned
//! champion differs from its cold-run champion — champion-seeded
//! relearning must not change model selection on unchanged data.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin bench_fleet
//! DWCP_QUICK=1 cargo run -p dwcp-bench --release --bin bench_fleet   # 2 jobs
//! ```

use dwcp_bench::{oltp_fleet_batch, results_dir};
use dwcp_core::{FleetOptions, FleetScheduler, Pipeline, SeriesJob};
use serde::Serialize;
use std::time::Instant;

const THREADS: usize = 4;

#[derive(Debug, Clone, Serialize)]
struct JobRow {
    key: String,
    granularity: String,
    champion: String,
    champion_relearn: String,
    rmse_sequential: f64,
    rmse_relearn: f64,
    reused: bool,
    fell_back: bool,
}

#[derive(Debug, Clone, Serialize)]
struct FleetSnapshot {
    batch: String,
    n_jobs: usize,
    threads: usize,
    sequential_wall_ms: f64,
    fleet_cold_wall_ms: f64,
    fleet_relearn_wall_ms: f64,
    speedup_cold_vs_sequential: f64,
    speedup_relearn_vs_sequential: f64,
    jobs_per_second: f64,
    reuse_hits: usize,
    reuse_misses: usize,
    reuse_fallbacks: usize,
    reuse_hit_rate: f64,
    sequential_objective_evals: usize,
    relearn_objective_evals: usize,
    jobs: Vec<JobRow>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var("DWCP_QUICK").is_ok();
    let jobs: Vec<SeriesJob> = oltp_fleet_batch(quick, THREADS)?;
    println!(
        "bench_fleet: {} jobs ({}), {} threads",
        jobs.len(),
        if quick {
            "quick batch"
        } else {
            "2 instances x 3 metrics x 2 granularities"
        },
        THREADS
    );

    // 1. Sequential baseline: one cold Pipeline::run per job.
    let t0 = Instant::now();
    let mut sequential = Vec::new();
    let mut sequential_evals = 0usize;
    for job in &jobs {
        let pipeline = Pipeline::new(job.config.clone());
        let outcome = pipeline.run(&job.series, &job.exog)?;
        sequential_evals += outcome.stats.objective_evals;
        sequential.push(outcome);
    }
    let sequential_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("  sequential     {sequential_ms:>9.1} ms   ({sequential_evals} objective evals)");

    // 2. Fleet cold: same jobs through one shared pool, empty repository.
    let options = FleetOptions {
        threads: THREADS,
        ..Default::default()
    };
    let mut scheduler = FleetScheduler::new(options.clone());
    let t0 = Instant::now();
    let cold = scheduler.run_batch(&jobs);
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "  fleet cold     {cold_ms:>9.1} ms   ({} objective evals)",
        cold.stats.objective_evals
    );

    // 3. Fleet relearn: champion-seeded from the cold run's repository.
    let mut relearner = FleetScheduler::with_repository(options, scheduler.repository.clone());
    let t0 = Instant::now();
    let relearn = relearner.run_batch(&jobs);
    let relearn_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "  fleet relearn  {relearn_ms:>9.1} ms   ({} objective evals, reuse {}h/{}m/{}f)",
        relearn.stats.objective_evals,
        relearn.stats.reuse_hits,
        relearn.stats.reuse_misses,
        relearn.stats.reuse_fallbacks
    );

    // Cross-checks. The scheduler itself must not change model selection:
    // cold fleet vs the sequential loop is the same work, so champions and
    // RMSEs must be identical per job. The champion-seeded relearn pass is
    // a different (pruned, warm-started) search, so it is held to the
    // repository contract instead: same-or-better held-out RMSE.
    let mut rows = Vec::new();
    let mut mismatches = 0usize;
    for (i, job) in jobs.iter().enumerate() {
        let seq = sequential[i].champion.clone();
        let cold_outcome = cold.jobs[i].outcome.as_ref().expect("cold job failed");
        let relearn_outcome = relearn.jobs[i]
            .outcome
            .as_ref()
            .expect("relearn job failed");
        if cold_outcome.champion != seq {
            eprintln!(
                "FAIL {}: cold fleet champion {} != sequential {}",
                job.key, cold_outcome.champion, seq
            );
            mismatches += 1;
        }
        if (cold_outcome.accuracy.rmse - sequential[i].accuracy.rmse).abs()
            > 1e-9 * sequential[i].accuracy.rmse.abs().max(1.0)
        {
            eprintln!(
                "FAIL {}: cold fleet RMSE {} != sequential {}",
                job.key, cold_outcome.accuracy.rmse, sequential[i].accuracy.rmse
            );
            mismatches += 1;
        }
        if relearn_outcome.accuracy.rmse > cold_outcome.accuracy.rmse * (1.0 + 1e-9) + 1e-12 {
            eprintln!(
                "FAIL {}: relearned RMSE {} worse than cold {}",
                job.key, relearn_outcome.accuracy.rmse, cold_outcome.accuracy.rmse
            );
            mismatches += 1;
        }
        rows.push(JobRow {
            key: job.key.clone(),
            granularity: if job.key.ends_with("daily") {
                "daily"
            } else {
                "hourly"
            }
            .to_string(),
            champion: cold_outcome.champion.clone(),
            champion_relearn: relearn_outcome.champion.clone(),
            rmse_sequential: sequential[i].accuracy.rmse,
            rmse_relearn: relearn_outcome.accuracy.rmse,
            reused: relearn.jobs[i].reused,
            fell_back: relearn.jobs[i].fell_back,
        });
    }

    let snapshot = FleetSnapshot {
        batch: if quick {
            "oltp_quick".into()
        } else {
            "oltp_2x3x2".into()
        },
        n_jobs: jobs.len(),
        threads: THREADS,
        sequential_wall_ms: sequential_ms,
        fleet_cold_wall_ms: cold_ms,
        fleet_relearn_wall_ms: relearn_ms,
        speedup_cold_vs_sequential: sequential_ms / cold_ms,
        speedup_relearn_vs_sequential: sequential_ms / relearn_ms,
        jobs_per_second: relearn.jobs_per_second(),
        reuse_hits: relearn.stats.reuse_hits,
        reuse_misses: relearn.stats.reuse_misses,
        reuse_fallbacks: relearn.stats.reuse_fallbacks,
        reuse_hit_rate: relearn.stats.reuse_rate().unwrap_or(0.0),
        sequential_objective_evals: sequential_evals,
        relearn_objective_evals: relearn.stats.objective_evals,
        jobs: rows,
    };
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_fleet.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&snapshot).expect("serializable"),
    )?;
    println!(
        "\nspeedup vs sequential: cold {:.2}x, relearn {:.2}x (reuse hit rate {:.0}%)",
        snapshot.speedup_cold_vs_sequential,
        snapshot.speedup_relearn_vs_sequential,
        snapshot.reuse_hit_rate * 100.0
    );
    println!("wrote {}", path.display());

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} champion/RMSE contract violations");
        std::process::exit(1);
    }
    Ok(())
}
