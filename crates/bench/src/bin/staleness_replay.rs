//! Replays the Figure 4 retention loop over a six-week OLTP stream:
//! fit a champion, serve forecasts day by day, relearn when the repository
//! says so (weekly staleness or RMSE degradation).
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin staleness_replay
//! ```

use dwcp_bench::{experiment_pipeline, EXPERIMENT_SEED};
use dwcp_core::{ModelRecord, ModelRepository};
use dwcp_series::{Accuracy, Granularity};
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut scenario = oltp_scenario();
    scenario.duration_days = 60; // 1440 hours: 1008 protocol + 18 replay days
    let instance = "cdbm012";
    let series = scenario.hourly(EXPERIMENT_SEED, instance, Metric::CpuPercent)?;
    let exog = scenario.exogenous_columns(scenario.start, series.len());
    let pipeline = experiment_pipeline();
    let mut repo = ModelRepository::new();
    let key = format!("{instance}/CPU");

    // Replay: each day from the protocol boundary onward, check the
    // repository verdict against the live one-day-ahead accuracy.
    let protocol = Granularity::Hourly.observations();
    let mut champion = String::new();
    let mut relearns = 0usize;
    println!("day  verdict      champion{:>46}   live RMSE", "");
    for day in 0..((series.len() - protocol) / 24) {
        let upto = protocol + day * 24;
        let window = series.slice(0, upto);
        let now = window.next_timestamp();

        // Live accuracy of the stored champion over the just-elapsed day:
        // refit the pipeline only when the repository demands it.
        let verdict = repo.needs_relearn(&key, now, None);
        let mut label = "kept".to_string();
        if let Some(reason) = verdict {
            let exog_window: Vec<Vec<f64>> = exog.iter().map(|c| c[..upto].to_vec()).collect();
            let outcome = pipeline.run(&window, &exog_window)?;
            champion = outcome.champion.clone();
            repo.store(ModelRecord::from_outcome(
                &key,
                &outcome,
                Granularity::Hourly,
                now,
            ));
            relearns += 1;
            label = format!("{reason:?}");
        }
        // Score yesterday's persistence forecast as the live health probe.
        let yesterday = &window.values()[upto - 48..upto - 24];
        let today = &window.values()[upto - 24..upto];
        let live = Accuracy::compute(today, yesterday)?.rmse;
        println!("{day:>3}  {label:<11}  {champion:<52} {live:>9.2}");
    }
    println!(
        "\n{} relearn events across {} replay days (expected: day 0 + one per week)",
        relearns,
        (series.len() - protocol) / 24
    );
    Ok(())
}
