//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. drift (mean on the differenced scale) on/off — our deviation from
//!    the statsmodels default, needed for the growing OLTP workload,
//! 2. Hannan-Rissanen starting values vs a zero start,
//! 3. the Cochrane-Orcutt GLS refinement pass in SARIMAX regression,
//! 4. correlogram pruning aggressiveness (candidate cap sweep),
//! 5. Yule-Walker closed form vs CSS/Nelder-Mead on pure AR models.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin ablations
//! ```

use dwcp_bench::EXPERIMENT_SEED;
use dwcp_core::{evaluate_candidates, CandidateSet, DataProfile, EvaluationOptions};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::fourier::FourierSpec;
use dwcp_models::{ArimaSpec, FittedArima, FittedSarimax, SarimaxConfig};
use dwcp_series::accuracy::rmse;
use dwcp_series::interpolate::interpolate_series;
use dwcp_series::{Granularity, TrainTestSplit};
use dwcp_workload::{oltp_scenario, Metric};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = oltp_scenario();
    let mut series = scenario.hourly(EXPERIMENT_SEED, "cdbm012", Metric::MemoryMb)?;
    interpolate_series(&mut series)?;
    let split = TrainTestSplit::from_series(&series, Granularity::Hourly)?;
    let train = split.train.values();
    let test = split.test.values();
    println!(
        "ablations on {} — cdbm012/Memory (trending OLTP)",
        scenario.kind.label()
    );

    ablation_drift(train, test)?;
    ablation_hannan_rissanen(train)?;
    ablation_gls(&scenario, train, test)?;
    ablation_pruning(train, test)?;
    ablation_yule_walker(train)?;
    Ok(())
}

fn opts(include_mean: bool, hr: bool, gls: bool) -> ArimaOptions {
    ArimaOptions {
        max_evals: 500,
        restarts: 1,
        interval_level: 0.95,
        include_mean,
        hannan_rissanen_init: hr,
        gls_refinement: gls,
        ..Default::default()
    }
}

/// 1. Drift on the differenced scale: with the +50 users/day trend, the
///    no-drift model cannot keep up with growth.
fn ablation_drift(train: &[f64], test: &[f64]) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n[1] drift term with d = 1 (our default: on)");
    let spec = ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24);
    for (label, include_mean) in [("with drift", true), ("without drift", false)] {
        let fit = FittedArima::fit(train, spec, &opts(include_mean, true, true))?;
        let f = fit.forecast(test.len());
        let err = rmse(test, &f.mean)?;
        println!(
            "  {label:<14} RMSE {err:>10.2}   (estimated drift {:+.3}/h)",
            fit.mean
        );
    }
    Ok(())
}

/// 2. Hannan-Rissanen warm start: same optimum quality in fewer
///    evaluations, or a better optimum on a fixed budget.
fn ablation_hannan_rissanen(train: &[f64]) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n[2] Hannan-Rissanen starting values (fixed 200-eval budget)");
    let spec = ArimaSpec::arima(4, 1, 2);
    for (label, hr) in [("HR init", true), ("zero start", false)] {
        let mut o = opts(true, hr, true);
        o.max_evals = 200;
        o.restarts = 0;
        let t0 = Instant::now();
        let fit = FittedArima::fit(train, spec, &o)?;
        println!(
            "  {label:<12} CSS {:>12.2}  AIC {:>12.1}  in {:?}",
            fit.css,
            fit.aic,
            t0.elapsed()
        );
    }
    Ok(())
}

/// 3. Cochrane-Orcutt GLS refinement of the regression coefficients.
fn ablation_gls(
    scenario: &dwcp_workload::Scenario,
    train: &[f64],
    test: &[f64],
) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n[3] Cochrane-Orcutt GLS refinement in SARIMAX+Exogenous+Fourier");
    let full_len = scenario.hours();
    let exog_full = scenario.exogenous_columns(scenario.start, full_len);
    let offset = full_len - Granularity::Hourly.observations();
    let train_len = train.len();
    let exog_train: Vec<Vec<f64>> = exog_full
        .iter()
        .map(|c| c[offset..offset + train_len].to_vec())
        .collect();
    let exog_test: Vec<Vec<f64>> = exog_full
        .iter()
        .map(|c| c[offset + train_len..offset + train_len + test.len()].to_vec())
        .collect();
    let config = SarimaxConfig {
        spec: ArimaSpec::arima(1, 1, 1),
        fourier: FourierSpec::single(24.0, 2),
        n_exog: exog_train.len(),
    };
    for (label, gls) in [("with GLS pass", true), ("plain two-step", false)] {
        let fit = FittedSarimax::fit(train, &config, &exog_train, offset, &opts(true, true, gls))?;
        let f = fit.forecast(test.len(), &exog_test)?;
        let err = rmse(test, &f.mean)?;
        println!(
            "  {label:<16} RMSE {err:>10.2}   beta[backup#1] {:+.1}",
            fit.beta[1]
        );
    }
    Ok(())
}

/// 4. Pruning aggressiveness: champion quality and wall-clock versus the
///    candidate cap.
fn ablation_pruning(train: &[f64], test: &[f64]) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n[4] correlogram pruning: candidate cap sweep");
    println!(
        "  {:>5} {:>10} {:>12} {:>10}",
        "cap", "fitted", "best RMSE", "time"
    );
    for cap in [4usize, 8, 16, 32] {
        let profile = DataProfile::analyze(train)?;
        let set = CandidateSet::sarimax(profile, 24, 0, cap);
        let t0 = Instant::now();
        let report = evaluate_candidates(
            train,
            test,
            &[],
            &[],
            &set.models,
            &EvaluationOptions::default(),
        )?;
        println!(
            "  {cap:>5} {:>10} {:>12.2} {:>9.1?}",
            report.scores.len(),
            report
                .champion()
                .map(|c| c.accuracy.rmse)
                .unwrap_or(f64::NAN),
            t0.elapsed()
        );
    }
    Ok(())
}

/// 5. Yule-Walker closed form vs the CSS optimiser on a pure AR model.
fn ablation_yule_walker(train: &[f64]) -> Result<(), Box<dyn std::error::Error>> {
    println!("\n[5] Yule-Walker vs CSS on AR(3) of the differenced series");
    let diffed = dwcp_series::diff::difference(train, 1);
    let t0 = Instant::now();
    let (phi_yw, sigma2_yw) = dwcp_math::levinson::yule_walker(&diffed, 3)?;
    let t_yw = t0.elapsed();
    let t1 = Instant::now();
    let fit = FittedArima::fit(&diffed, ArimaSpec::arima(3, 0, 0), &opts(true, true, true))?;
    let t_css = t1.elapsed();
    println!(
        "  Yule-Walker  phi = [{:+.3} {:+.3} {:+.3}]  sigma2 {:>10.2}  in {t_yw:?}",
        phi_yw[0], phi_yw[1], phi_yw[2], sigma2_yw
    );
    println!(
        "  CSS          phi = [{:+.3} {:+.3} {:+.3}]  sigma2 {:>10.2}  in {t_css:?}",
        fit.phi[0], fit.phi[1], fit.phi[2], fit.sigma2
    );
    Ok(())
}
