//! Regenerates Figure 7: "Experiment 2: Prediction Charts Using SARIMAX
//! with Exogenous and Fourier Terms" — the 24-hour prediction for CPU,
//! Memory and Logical IOPS of one OLTP instance, as aligned series.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure7
//! ```

use dwcp_bench::{experiment_pipeline, sparkline, EXPERIMENT_SEED};
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = oltp_scenario();
    let instance = "cdbm011";
    let pipeline = experiment_pipeline();
    eprintln!(
        "Figure 7: {} on {instance} — SARIMAX with Exogenous and Fourier terms",
        scenario.kind.label()
    );

    for metric in Metric::ALL {
        let series = scenario.hourly(EXPERIMENT_SEED, instance, metric)?;
        let exog = scenario.exogenous_columns(scenario.start, series.len());
        let outcome = pipeline.run(&series, &exog)?;
        eprintln!(
            "\n--- {metric}: champion {} (RMSE {:.2}, MAPE {:.2}%)",
            outcome.champion, outcome.accuracy.rmse, outcome.accuracy.mape
        );
        println!("# {metric} ({})", metric.unit());
        println!("hour,actual,forecast,lower,upper");
        for h in 0..outcome.test.len() {
            println!(
                "{h},{:.3},{:.3},{:.3},{:.3}",
                outcome.test.values()[h],
                outcome.test_forecast.mean[h],
                outcome.test_forecast.lower[h],
                outcome.test_forecast.upper[h]
            );
        }
        eprintln!("actual  : {}", sparkline(outcome.test.values(), 24));
        eprintln!("forecast: {}", sparkline(&outcome.test_forecast.mean, 24));
    }
    Ok(())
}
