//! Regenerates Figure 1: "Visualising Time Series Data" — (a) the ACF/PACF
//! correlogram with its significance band, (b) the seasonal decomposition,
//! (c) the effect of differencing.
//!
//! ```sh
//! cargo run -p dwcp-bench --release --bin figure1
//! ```

use dwcp_bench::{sparkline, EXPERIMENT_SEED};
use dwcp_series::diff::difference;
use dwcp_series::interpolate::interpolate_series;
use dwcp_series::{decompose, Correlogram, DecompositionModel};
use dwcp_workload::{oltp_scenario, Metric};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = oltp_scenario();
    let mut series = scenario.hourly(EXPERIMENT_SEED, "cdbm011", Metric::CpuPercent)?;
    interpolate_series(&mut series)?;
    let values = series.values();

    // (a) Correlogram over 30 lags.
    println!("Figure 1(a): ACF / PACF correlogram (30 lags), band = ±1.96/√n");
    let corr = Correlogram::compute(values, 30)?;
    println!("significance band: ±{:.4}\n", corr.significance);
    println!("lag    ACF                            PACF");
    for lag in 0..=30 {
        let bar = |v: f64| {
            let width = 12i32;
            let pos = (v * width as f64).round() as i32;
            let mut s = String::new();
            for i in -width..=width {
                s.push(if i == 0 {
                    '|'
                } else if (i > 0 && i <= pos) || (i < 0 && i >= pos) {
                    '#'
                } else {
                    ' '
                });
            }
            s
        };
        let a = corr.acf[lag];
        let p = corr.pacf[lag];
        let sig_a = if lag > 0 && a.abs() > corr.significance {
            "*"
        } else {
            " "
        };
        let sig_p = if lag > 0 && p.abs() > corr.significance {
            "*"
        } else {
            " "
        };
        println!(
            "{lag:>3} {sig_a} {} {:+.2}  {sig_p} {} {:+.2}",
            bar(a),
            a,
            bar(p),
            p
        );
    }
    println!("\nsignificant ACF lags:  {:?}", corr.significant_acf_lags());
    println!("significant PACF lags: {:?}", corr.significant_pacf_lags());

    // (b) Seasonal decomposition at the daily period.
    println!("\nFigure 1(b): classical decomposition at period 24");
    let d = decompose(values, 24, DecompositionModel::Additive)?;
    let finite_trend: Vec<f64> = d.trend.iter().copied().filter(|v| v.is_finite()).collect();
    println!("observed : {}", sparkline(values, 72));
    println!("trend    : {}", sparkline(&d.trend, 72));
    println!("seasonal : {}", sparkline(&d.seasonal[..96], 72));
    println!("residual : {}", sparkline(&d.residual, 72));
    println!(
        "seasonal strength = {:.3}; trend span {:.1} → {:.1}",
        d.seasonal_strength(),
        finite_trend.first().copied().unwrap_or(f64::NAN),
        finite_trend.last().copied().unwrap_or(f64::NAN),
    );

    // (c) Differencing stabilises the trend.
    println!("\nFigure 1(c): differencing");
    let diff1 = difference(values, 1);
    println!("original   : {}", sparkline(values, 72));
    println!("1st diff   : {}", sparkline(&diff1, 72));
    let adf_orig = dwcp_series::stationarity::adf_test(
        values,
        None,
        dwcp_series::stationarity::AdfRegression::Constant,
    )?;
    let adf_diff = dwcp_series::stationarity::adf_test(
        &diff1,
        None,
        dwcp_series::stationarity::AdfRegression::Constant,
    )?;
    println!(
        "ADF statistic: original {:.2} (stationary: {}) → differenced {:.2} (stationary: {})",
        adf_orig.statistic, adf_orig.stationary, adf_diff.statistic, adf_diff.stationary
    );
    Ok(())
}
