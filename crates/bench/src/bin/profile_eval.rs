//! Throwaway per-eval cost breakdown: how much of one CSS objective
//! evaluation is transform/expand (`stage`), how much is the CSS kernel,
//! and how much is the Nelder-Mead driver itself.

use dwcp_models::arima::{ArimaFitSession, ArimaOptions, ArimaSpec, FittedArima};
use std::hint::black_box;
use std::time::Instant;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            60.0 + 0.03 * tf
                + 12.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 89) as f64) / 25.0
        })
        .collect()
}

fn main() {
    // Pure driver overhead: trivial objective at grid-like dimensions.
    for dim in [4usize, 10, 16] {
        let opts = dwcp_math::optimize::NelderMeadOptions {
            max_evals: 20_000,
            ..Default::default()
        };
        let x0 = vec![0.1; dim];
        let started = Instant::now();
        let mut driver = dwcp_math::optimize::NelderMeadDriver::new(&x0, opts.clone());
        let mut evals = 0usize;
        while let Some(x) = driver.pending_point() {
            let fx = x.iter().map(|v| (v - 0.3) * (v - 0.3)).sum();
            driver.tell(fx);
            evals += 1;
        }
        let result = driver.into_result();
        let elapsed = started.elapsed();
        println!(
            "driver dim {dim:>2}: {evals} evals, {:>5.0}ns/eval (f* {:.2e})",
            elapsed.as_secs_f64() * 1e9 / evals.max(1) as f64,
            result.fx,
        );
    }

    // Lockstep batch of 8 sessions, driven like run_chain_group.
    {
        let y = series(480);
        let spec0 = ArimaSpec::arima(1, 1, 0);
        let differencer = FittedArima::differencer_for(&spec0);
        let diffed = differencer.apply(&y).expect("differencing");
        let opts = ArimaOptions::default();
        let specs: Vec<ArimaSpec> = (0..8)
            .map(|i| ArimaSpec::arima(3 + i, 1, (i % 3).min(2)))
            .collect();
        // Solo baseline.
        let started = Instant::now();
        let mut solo_evals = 0usize;
        for &spec in &specs {
            let mut s = ArimaFitSession::new(&y, spec, &opts, &diffed).expect("session");
            while s.step_solo() {
                solo_evals += 1;
            }
            s.finish().expect("fit");
        }
        let solo = started.elapsed();
        // Lockstep.
        let started = Instant::now();
        let mut sessions: Vec<ArimaFitSession> = specs
            .iter()
            .map(|&spec| ArimaFitSession::new(&y, spec, &opts, &diffed).expect("session"))
            .collect();
        let mut batch_evals = 0usize;
        let mut scratch = dwcp_math::kernels::CssBatchScratch::default();
        let mut css_out: Vec<f64> = Vec::new();
        let mut staged: Vec<usize> = Vec::new();
        loop {
            staged.clear();
            for (i, s) in sessions.iter_mut().enumerate() {
                if s.stage_pending() {
                    staged.push(i);
                }
            }
            if staged.is_empty() {
                break;
            }
            {
                let mut coeffs: Vec<(&[f64], &[f64], &[f64])> = Vec::with_capacity(staged.len());
                for &i in staged.iter() {
                    let s = &sessions[i];
                    coeffs.push((s.staged_phi(), s.staged_theta(), s.w()));
                }
                dwcp_math::kernels::css_batch(&coeffs, &mut scratch, &mut css_out);
            }
            for (j, &i) in staged.iter().enumerate() {
                sessions[i].tell_css(css_out[j]);
                batch_evals += 1;
            }
        }
        for s in sessions {
            s.finish().expect("fit");
        }
        let batch = started.elapsed();
        println!(
            "lockstep x8: solo {:>7.1}ms / {solo_evals} evals = {:>5.0}ns/eval | batch {:>7.1}ms / {batch_evals} evals = {:>5.0}ns/eval",
            solo.as_secs_f64() * 1e3,
            solo.as_secs_f64() * 1e9 / solo_evals.max(1) as f64,
            batch.as_secs_f64() * 1e3,
            batch.as_secs_f64() * 1e9 / batch_evals.max(1) as f64,
        );
    }

    let y = series(480);
    for (p, d, q) in [(13usize, 1usize, 2usize), (7, 1, 2), (3, 0, 1)] {
        let spec = ArimaSpec::arima(p, d, q);
        let differencer = FittedArima::differencer_for(&spec);
        let diffed = differencer.apply(&y).expect("differencing");
        let opts = ArimaOptions::default();

        // Full solo fit: wall time and eval count.
        let started = Instant::now();
        let mut session = ArimaFitSession::new(&y, spec, &opts, &diffed).expect("session");
        let mut evals = 0usize;
        while session.step_solo() {
            evals += 1;
        }
        let fit = session.finish().expect("fit");
        let full = started.elapsed();

        // Stage-only loop: transform + expand at a fixed point.
        let mut probe = ArimaFitSession::new(&y, spec, &opts, &diffed).expect("session");
        probe.stage_pending();
        let reps = 100_000usize;
        let started = Instant::now();
        for _ in 0..reps {
            black_box(probe.stage_pending());
        }
        let stage = started.elapsed();

        // Direct CSS via kernels on the staged coefficients:
        let w: Vec<f64> = probe.w().to_vec();
        let phi: Vec<f64> = probe.staged_phi().to_vec();
        let theta: Vec<f64> = probe.staged_theta().to_vec();
        let mut a: Vec<f64> = Vec::new();
        let started = Instant::now();
        for _ in 0..reps {
            black_box(dwcp_math::kernels::css(
                black_box(&phi),
                black_box(&theta),
                black_box(&w),
                &mut a,
            ));
        }
        let css = started.elapsed();

        println!(
            "ARIMA({p},{d},{q}): fit {:>8.1}ms / {evals} evals = {:>6.0}ns/eval | stage {:>6.0}ns | css {:>6.0}ns | other {:>6.0}ns  (nm_evals {})",
            full.as_secs_f64() * 1e3,
            full.as_secs_f64() * 1e9 / evals.max(1) as f64,
            stage.as_secs_f64() * 1e9 / reps as f64,
            css.as_secs_f64() * 1e9 / reps as f64,
            full.as_secs_f64() * 1e9 / evals.max(1) as f64
                - stage.as_secs_f64() * 1e9 / reps as f64
                - css.as_secs_f64() * 1e9 / reps as f64,
            fit.nm_evals,
        );
    }
}
