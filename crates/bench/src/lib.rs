//! Shared harness code for the experiment binaries that regenerate every
//! table and figure of the paper (see DESIGN.md §4 for the index).
//!
//! Each binary prints the paper-shaped output to stdout and, where the
//! artefact feeds EXPERIMENTS.md, writes a JSON record under `results/`.
#![forbid(unsafe_code)]

use dwcp_core::{EvaluationOptions, MethodChoice, Pipeline, PipelineConfig, SeriesJob};
use dwcp_series::Granularity;
use dwcp_workload::{oltp_scenario, Metric, Scenario};
use serde::Serialize;
use std::path::PathBuf;

/// Seed used by every experiment binary, so reruns are identical.
pub const EXPERIMENT_SEED: u64 = 20200614; // SIGMOD'20 opening day

/// Current peak resident set size (`VmHWM`) of this process in bytes, or
/// `None` off Linux / when `/proc` is unavailable. Process-monotonic: it
/// never decreases, so benches that compare scenarios must measure each
/// scenario in a fresh child process.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// The SARIMAX pipeline configuration shared by the fleet benches
/// (`bench_fleet`, `bench_estate` parity scenario).
pub fn fleet_job_config(granularity: Granularity, quick: bool, threads: usize) -> PipelineConfig {
    PipelineConfig {
        method: MethodChoice::Sarimax,
        grid: Default::default(),
        granularity,
        max_candidates: if quick { 4 } else { 16 },
        fourier_stage: false,
        auto_detect_shocks: false,
        eval: EvaluationOptions {
            threads,
            fit: dwcp_models::arima::ArimaOptions {
                max_evals: 0, // convergence-driven: warm and cold fits agree
                restarts: 0,
                interval_level: 0.95,
                ..Default::default()
            },
            ..Default::default()
        },
    }
}

/// The 12-job OLTP fleet batch (2 instances × 3 metrics × hourly+daily;
/// quick mode: 1 instance × 2 metrics, hourly only) used by `bench_fleet`
/// and reused by `bench_estate`'s bit-identity parity scenario.
pub fn oltp_fleet_batch(
    quick: bool,
    threads: usize,
) -> Result<Vec<SeriesJob>, Box<dyn std::error::Error>> {
    let mut scenario = oltp_scenario();
    scenario.duration_days = 98; // daily protocol needs >= 90 observations
    let repo = scenario.run(EXPERIMENT_SEED)?;
    let hours = scenario.hours();
    let exog_full = scenario.exogenous_columns(scenario.start, hours);

    let instances = if quick {
        vec!["cdbm011".to_string()]
    } else {
        scenario.instance_names()
    };
    let metrics: &[Metric] = if quick {
        &[Metric::CpuPercent, Metric::LogicalIops]
    } else {
        &Metric::ALL
    };

    let mut jobs = Vec::new();
    for instance in &instances {
        for &metric in metrics {
            let hourly = repo.hourly_series(instance, metric, scenario.start, hours)?;
            let h0 = hours - Granularity::Hourly.observations();
            let window = hourly.slice(h0, hours);
            let exog: Vec<Vec<f64>> = exog_full.iter().map(|c| c[h0..hours].to_vec()).collect();
            jobs.push(
                SeriesJob::new(
                    format!("{instance}/{}/hourly", metric.label()),
                    window,
                    fleet_job_config(Granularity::Hourly, quick, threads),
                )
                .with_exog(exog),
            );
            if quick {
                continue; // quick mode: hourly jobs only
            }
            let daily = repo.daily_series(instance, metric, scenario.start, 98)?;
            jobs.push(SeriesJob::new(
                format!("{instance}/{}/daily", metric.label()),
                daily,
                fleet_job_config(Granularity::Daily, quick, threads),
            ));
        }
    }
    Ok(jobs)
}

/// One row of a regenerated Table 2.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Model descriptor, e.g. `SARIMAX FFT Exogenous (4,1,2)(1,1,1,24)`.
    pub model: String,
    /// Family label (`ARIMA` / `SARIMAX` / `SARIMAX FFT Exogenous`).
    pub family: String,
    /// Metric label (`CPU` / `Memory` / `Logical IOPS`).
    pub metric: String,
    /// Instance name.
    pub instance: String,
    /// Held-out RMSE.
    pub rmse: f64,
    /// Held-out MAPE, percent.
    pub mape: f64,
    /// Held-out MAPA, percent.
    pub mapa: f64,
}

/// A regenerated experiment table plus bookkeeping for EXPERIMENTS.md.
#[derive(Debug, Clone, Serialize)]
pub struct ExperimentArtifact {
    /// `table2a`, `table2b`, `figure6`, …
    pub id: String,
    /// Scenario label.
    pub scenario: String,
    /// The rows.
    pub rows: Vec<Table2Row>,
    /// Total models scored across the table.
    pub models_scored: usize,
    /// Total infeasible fits.
    pub failures: usize,
}

impl ExperimentArtifact {
    /// Write to `results/<id>.json` (relative to the workspace root).
    pub fn save(&self) -> std::io::Result<PathBuf> {
        let dir = results_dir();
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(
            &path,
            serde_json::to_string_pretty(self).expect("serializable"),
        )?;
        Ok(path)
    }
}

/// `results/` next to the workspace root (walks up from the executable's
/// cwd, falling back to `./results`).
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.toml").exists() && dir.join("DESIGN.md").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from("results")
}

/// The standard pipeline configuration used by the experiment binaries.
/// `DWCP_QUICK=1` shrinks the candidate budget for smoke runs.
pub fn experiment_pipeline() -> Pipeline {
    let quick = std::env::var("DWCP_QUICK").is_ok();
    Pipeline::new(PipelineConfig {
        method: MethodChoice::Sarimax,
        grid: Default::default(),
        granularity: Granularity::Hourly,
        max_candidates: if quick { 4 } else { 16 },
        fourier_stage: true,
        auto_detect_shocks: false,
        eval: EvaluationOptions {
            threads: 0,
            fit: dwcp_models::arima::ArimaOptions {
                max_evals: if quick { 150 } else { 500 },
                restarts: if quick { 0 } else { 1 },
                interval_level: 0.95,
                ..Default::default()
            },
            start_index: 0,
            ..Default::default()
        },
    })
}

/// Per-family cap used when regenerating Table 2 (full mode scores
/// hundreds of models per cell; quick mode a handful).
pub fn per_family_cap() -> usize {
    if std::env::var("DWCP_QUICK").is_ok() {
        3
    } else {
        8
    }
}

/// Regenerate one Table 2 panel for `scenario`: the best model of each of
/// the three families for every metric × instance cell.
pub fn regenerate_table2(id: &str, scenario: &Scenario) -> ExperimentArtifact {
    use dwcp_core::ModelFamily;
    let pipeline = experiment_pipeline();
    let mut rows = Vec::new();
    let mut models_scored = 0usize;
    let mut failures = 0usize;
    for metric in Metric::ALL {
        for instance in scenario.instance_names() {
            let series = scenario
                .hourly(EXPERIMENT_SEED, &instance, metric)
                .expect("scenario run");
            let exog = scenario.exogenous_columns(scenario.start, series.len());
            let report = match pipeline.family_comparison(&series, &exog, per_family_cap()) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("{instance}/{metric}: {e}");
                    continue;
                }
            };
            models_scored += report.scores.len();
            failures += report.failures;
            for family in [
                ModelFamily::Arima,
                ModelFamily::Sarimax,
                ModelFamily::SarimaxFftExogenous,
            ] {
                if let Some(best) = report.best_of_family(family) {
                    rows.push(Table2Row {
                        model: best.candidate.config.describe(),
                        family: family.label().to_string(),
                        metric: metric.label().to_string(),
                        instance: instance.clone(),
                        rmse: best.accuracy.rmse,
                        mape: best.accuracy.mape,
                        mapa: best.accuracy.mapa,
                    });
                }
            }
        }
    }
    ExperimentArtifact {
        id: id.to_string(),
        scenario: scenario.kind.label().to_string(),
        rows,
        models_scored,
        failures,
    }
}

/// Print a Table 2 panel in the paper's layout.
pub fn print_table2(artifact: &ExperimentArtifact) {
    println!("\n{} — {}", artifact.id, artifact.scenario);
    println!(
        "{:<46} {:<13} {:>14} {:>9} {:>9}  Instance",
        "Forecast & Model", "Metric", "RMSE", "MAPE %", "MAPA %"
    );
    println!("{}", "-".repeat(108));
    // Order: metric, then instance, then family (ARIMA, SARIMAX, FFT) —
    // matching the paper's table layout.
    let mut rows = artifact.rows.clone();
    let family_rank = |f: &str| match f {
        "ARIMA" => 0,
        "SARIMAX" => 1,
        _ => 2,
    };
    let metric_rank = |m: &str| match m {
        "CPU" => 0,
        "Memory" => 1,
        _ => 2,
    };
    rows.sort_by_key(|r| {
        (
            metric_rank(&r.metric),
            r.instance.clone(),
            family_rank(&r.family),
        )
    });
    for row in &rows {
        println!(
            "{:<46} {:<13} {:>14.2} {:>9.2} {:>9.2}  {}",
            row.model, row.metric, row.rmse, row.mape, row.mapa, row.instance
        );
    }
    println!(
        "\n[{} models scored, {} infeasible]",
        artifact.models_scored, artifact.failures
    );
}

/// Render a compact ASCII sparkline of a series (for the figure binaries).
pub fn sparkline(values: &[f64], width: usize) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return "·".repeat(width.min(values.len()));
    }
    let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    let stride = (values.len() as f64 / width as f64).max(1.0);
    let mut out = String::with_capacity(width);
    let mut pos = 0.0;
    while (pos as usize) < values.len() && out.chars().count() < width {
        let v = values[pos as usize];
        if v.is_finite() {
            let level = (((v - min) / span) * 7.0).round() as usize;
            out.push(GLYPHS[level.min(7)]);
        } else {
            out.push('·');
        }
        pos += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_spans_the_range() {
        let s = sparkline(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], 8);
        assert_eq!(s.chars().count(), 8);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_marks_gaps() {
        let s = sparkline(&[1.0, f64::NAN, 2.0], 3);
        assert!(s.contains('·'));
    }

    #[test]
    fn sparkline_constant_series_is_flat() {
        let s = sparkline(&[5.0; 10], 5);
        assert!(s.chars().all(|c| c == s.chars().next().unwrap()));
    }

    #[test]
    fn results_dir_is_under_workspace() {
        let dir = results_dir();
        assert!(dir.ends_with("results"));
    }

    #[test]
    fn quick_mode_shrinks_budgets() {
        // Can't set env safely in parallel tests; just check the default.
        if std::env::var("DWCP_QUICK").is_err() {
            assert_eq!(per_family_cap(), 8);
        }
    }
}
