//! Criterion benchmarks: fit throughput per model family — the cost the
//! §6.3 grid search pays per candidate, and the §9 claim that correlogram
//! pruning plus parallelism is what makes thousands of models tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::fourier::FourierSpec;
use dwcp_models::{
    ArimaSpec, EtsConfig, FittedArima, FittedEts, FittedSarimax, FittedTbats, SarimaxConfig,
    TbatsConfig,
};
use std::hint::black_box;

/// A 984-point hourly-shaped training series (the Table 1 train size) with
/// trend, daily seasonality and noise.
fn train_series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            80.0 + 0.05 * tf
                + 20.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 97) as f64) / 20.0
        })
        .collect()
}

fn fit_options() -> ArimaOptions {
    ArimaOptions {
        max_evals: 300,
        restarts: 0,
        interval_level: 0.95,
        ..Default::default()
    }
}

fn bench_arima_family(c: &mut Criterion) {
    let y = train_series(984);
    let mut group = c.benchmark_group("fit/arima_family");
    group.sample_size(10);
    for (label, spec) in [
        ("arima(1,1,1)", ArimaSpec::arima(1, 1, 1)),
        ("arima(13,1,2)", ArimaSpec::arima(13, 1, 2)),
        (
            "sarima(1,1,1)(0,1,1,24)",
            ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24),
        ),
        (
            "sarima(4,1,2)(1,1,1,24)",
            ArimaSpec::sarima(4, 1, 2, 1, 1, 1, 24),
        ),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| FittedArima::fit(black_box(&y), spec, &fit_options()).unwrap())
        });
    }
    group.finish();
}

/// Four distinct six-hourly backup-slot indicators (identical columns
/// would make the regression design singular).
fn backup_slots(n: usize) -> Vec<Vec<f64>> {
    (0..4)
        .map(|slot| {
            (0..n)
                .map(|t| if t % 24 == slot * 6 { 1.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

fn bench_sarimax_regression(c: &mut Criterion) {
    let y = train_series(984);
    let mut group = c.benchmark_group("fit/sarimax_regression");
    group.sample_size(10);
    group.bench_function("exog4", |b| {
        let exog = backup_slots(984);
        let config = SarimaxConfig {
            spec: ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24),
            fourier: FourierSpec::none(),
            n_exog: 4,
        };
        b.iter(|| FittedSarimax::fit(black_box(&y), &config, &exog, 0, &fit_options()).unwrap())
    });
    group.bench_function("exog4_fourier2x2", |b| {
        let exog = backup_slots(984);
        let config = SarimaxConfig {
            spec: ArimaSpec::sarima(1, 1, 1, 0, 1, 1, 24),
            fourier: FourierSpec::multi(&[24.0, 168.0], 2),
            n_exog: 4,
        };
        b.iter(|| FittedSarimax::fit(black_box(&y), &config, &exog, 0, &fit_options()).unwrap())
    });
    group.finish();
}

fn bench_ets_and_tbats(c: &mut Criterion) {
    let y = train_series(984);
    let mut group = c.benchmark_group("fit/smoothing");
    group.sample_size(10);
    group.bench_function("ses", |b| {
        b.iter(|| FittedEts::fit(black_box(&y), EtsConfig::ses()).unwrap())
    });
    group.bench_function("holt_winters_24", |b| {
        b.iter(|| FittedEts::fit(black_box(&y), EtsConfig::holt_winters(24)).unwrap())
    });
    group.bench_function("tbats_24x3", |b| {
        b.iter(|| FittedTbats::fit(black_box(&y), TbatsConfig::seasonal(24.0, 3)).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arima_family,
    bench_sarimax_regression,
    bench_ets_and_tbats
);
criterion_main!(benches);
