//! Criterion benchmarks: the substrates — simulator throughput, repository
//! aggregation, series diagnostics and forecasting latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwcp_models::arima::ArimaOptions;
use dwcp_models::{ArimaSpec, FittedArima};
use dwcp_series::{acf, detect_seasonality, pacf};
use dwcp_workload::{olap_scenario, Metric};
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/simulate");
    group.sample_size(10);
    for days in [7u32, 30] {
        group.bench_function(BenchmarkId::new("olap_days", days), |b| {
            let mut scenario = olap_scenario();
            scenario.duration_days = days;
            b.iter(|| black_box(scenario.run(1).unwrap()))
        });
    }
    group.finish();
}

fn bench_repository_aggregation(c: &mut Criterion) {
    let scenario = olap_scenario();
    let repo = scenario.run(2).unwrap();
    c.bench_function("workload/hourly_aggregation_43d", |b| {
        b.iter(|| {
            black_box(
                repo.hourly_series("cdbm011", Metric::LogicalIops, 0, scenario.hours())
                    .unwrap(),
            )
        })
    });
}

fn bench_diagnostics(c: &mut Criterion) {
    let y: Vec<f64> = (0..984)
        .map(|t| {
            let tf = t as f64;
            50.0 + 10.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 7919 % 101) as f64) / 30.0
        })
        .collect();
    let mut group = c.benchmark_group("series/diagnostics_984");
    group.bench_function("acf_30", |b| b.iter(|| black_box(acf(&y, 30).unwrap())));
    group.bench_function("pacf_30", |b| b.iter(|| black_box(pacf(&y, 30).unwrap())));
    group.bench_function("detect_seasonality", |b| {
        b.iter(|| black_box(detect_seasonality(&y, 200).unwrap()))
    });
    group.finish();
}

fn bench_forecast_latency(c: &mut Criterion) {
    let y: Vec<f64> = (0..984)
        .map(|t| {
            let tf = t as f64;
            50.0 + 10.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 7919 % 101) as f64) / 30.0
        })
        .collect();
    let fit = FittedArima::fit(
        &y,
        ArimaSpec::sarima(2, 1, 1, 0, 1, 1, 24),
        &ArimaOptions {
            max_evals: 300,
            restarts: 0,
            interval_level: 0.95,
            ..Default::default()
        },
    )
    .unwrap();
    let mut group = c.benchmark_group("forecast/horizon");
    for h in [24usize, 168] {
        group.bench_function(BenchmarkId::from_parameter(h), |b| {
            b.iter(|| black_box(fit.forecast(h)))
        });
    }
    group.finish();
}

fn bench_shock_detection(c: &mut Criterion) {
    // 30 days of hourly data with 6-hourly spikes.
    let y: Vec<f64> = (0..720usize)
        .map(|t| {
            let tf = t as f64;
            let mut v = 50.0
                + 10.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t.wrapping_mul(2654435761) % 97) as f64) / 40.0;
            if t % 6 == 0 {
                v += 30.0;
            }
            v
        })
        .collect();
    c.bench_function("planner/shock_detection_720h", |b| {
        b.iter(|| {
            let mut det = dwcp_core::ShockDetector::new(24);
            black_box(det.detect(&y).unwrap())
        })
    });
}

fn bench_tbats_selection(c: &mut Criterion) {
    let y: Vec<f64> = (0..240)
        .map(|t| {
            60.0 + 12.0 * (2.0 * std::f64::consts::PI * t as f64 / 24.0).sin()
                + ((t * 7919 % 89) as f64) / 30.0
        })
        .collect();
    let mut group = c.benchmark_group("fit/tbats");
    group.sample_size(10);
    group.bench_function("single_config_240", |b| {
        b.iter(|| {
            black_box(
                dwcp_models::FittedTbats::fit(&y, dwcp_models::TbatsConfig::seasonal(24.0, 2))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_repository_aggregation,
    bench_diagnostics,
    bench_forecast_latency,
    bench_shock_detection,
    bench_tbats_selection
);
criterion_main!(benches);
