//! Criterion benchmarks: grid-search scaling and the parallel speedup the
//! paper relies on ("gains are also achieved by parallel processing the
//! models"), plus the §6.3 correlogram pruning payoff.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dwcp_core::{evaluate_candidates, CandidateSet, DataProfile, EvaluationOptions, ModelGrid};
use dwcp_models::arima::ArimaOptions;
use std::hint::black_box;

fn series(n: usize) -> Vec<f64> {
    (0..n)
        .map(|t| {
            let tf = t as f64;
            60.0 + 0.03 * tf
                + 12.0 * (2.0 * std::f64::consts::PI * tf / 24.0).sin()
                + ((t * 2654435761 % 89) as f64) / 25.0
        })
        .collect()
}

fn quick_eval(threads: usize) -> EvaluationOptions {
    EvaluationOptions {
        threads,
        fit: ArimaOptions {
            max_evals: 80,
            restarts: 0,
            interval_level: 0.95,
            ..Default::default()
        },
        start_index: 0,
        ..Default::default()
    }
}

/// Baseline switches the acceleration layer off (per-candidate
/// differencing, cold starts); accelerated is the default configuration.
/// Unlike [`quick_eval`] this uses the convergence-driven evaluation
/// budget (`max_evals: 0`) — warm-start refinement saves evaluations, so
/// an artificially capped budget would hide the layer's payoff.
fn accel_eval(threads: usize, accelerated: bool) -> EvaluationOptions {
    EvaluationOptions {
        cache_transforms: accelerated,
        warm_start: accelerated,
        fit: ArimaOptions {
            max_evals: 0,
            restarts: 0,
            interval_level: 0.95,
            ..Default::default()
        },
        ..quick_eval(threads)
    }
}

/// The headline number: the full 180-model ARIMA grid, baseline vs the
/// acceleration layer, at 4 worker threads.
fn bench_arima_grid_180(c: &mut Criterion) {
    let y = series(504);
    let (train, test) = y.split_at(480);
    let grid = ModelGrid::arima();
    let mut group = c.benchmark_group("grid/arima_180");
    group.sample_size(10);
    for (label, accelerated) in [
        ("baseline_4_threads", false),
        ("accelerated_4_threads", true),
    ] {
        group.bench_function(label, |b| {
            let opts = accel_eval(4, accelerated);
            b.iter(|| {
                evaluate_candidates(
                    black_box(train),
                    black_box(test),
                    &[],
                    &[],
                    &grid.candidates,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    let y = series(504);
    let (train, test) = y.split_at(480);
    let profile = DataProfile::analyze(train).unwrap();
    let set = CandidateSet::sarimax(profile, 24, 0, 16);
    let mut group = c.benchmark_group("grid/parallel_speedup_16_models");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            let opts = quick_eval(threads);
            b.iter(|| {
                evaluate_candidates(
                    black_box(train),
                    black_box(test),
                    &[],
                    &[],
                    &set.models,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pruning_payoff(c: &mut Criterion) {
    let y = series(504);
    let (train, test) = y.split_at(480);
    let profile = DataProfile::analyze(train).unwrap();
    let full = ModelGrid::arima();
    let pruned = full.prune(&profile.correlogram, 12);
    let mut group = c.benchmark_group("grid/pruning_payoff");
    group.sample_size(10);
    group.bench_function(format!("pruned_{}_models", pruned.len()), |b| {
        let opts = quick_eval(0);
        b.iter(|| {
            evaluate_candidates(
                black_box(train),
                black_box(test),
                &[],
                &[],
                &pruned.candidates,
                &opts,
            )
            .unwrap()
        })
    });
    group.bench_function("first_40_of_full_grid", |b| {
        let opts = quick_eval(0);
        let subset = &full.candidates[..40];
        b.iter(|| {
            evaluate_candidates(black_box(train), black_box(test), &[], &[], subset, &opts).unwrap()
        })
    });
    group.finish();
}

fn bench_grid_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid/generation");
    group.bench_function("arima_180", |b| b.iter(|| black_box(ModelGrid::arima())));
    group.bench_function("sarimax_660", |b| {
        b.iter(|| black_box(ModelGrid::sarimax(24)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arima_grid_180,
    bench_parallel_speedup,
    bench_pruning_payoff,
    bench_grid_generation
);
criterion_main!(benches);
