//! Property-based tests of the workload substrate's invariants.

use dwcp_workload::cluster::{Cluster, ResourceModel};
use dwcp_workload::shock::{BackupSchedule, Shock};
use dwcp_workload::users::{Surge, UserPopulation};
use proptest::prelude::*;

fn arbitrary_population() -> impl Strategy<Value = UserPopulation> {
    (
        1.0f64..5000.0, // base users
        0.0f64..100.0,  // growth/day
        0.0f64..1.0,    // daily depth
        0u32..24,       // peak hour
        0.0f64..0.9,    // weekly depth
        prop::collection::vec(
            (0u32..24, 1u32..6, 1.0f64..2000.0).prop_map(|(h, d, u)| Surge {
                start_hour: h,
                duration_hours: d,
                extra_users: u,
            }),
            0..3,
        ),
    )
        .prop_map(
            |(base, growth, daily, peak, weekly, surges)| UserPopulation {
                base_users: base,
                growth_per_day: growth,
                daily_cycle_depth: daily,
                peak_hour: peak,
                weekly_cycle_depth: weekly,
                surges,
            },
        )
}

fn model() -> ResourceModel {
    ResourceModel {
        cpu_per_session: 0.1,
        cpu_baseline: 2.0,
        memory_per_session_mb: 4.0,
        memory_baseline_mb: 800.0,
        iops_per_session: 50.0,
        iops_baseline: 100.0,
        noise_cv: 0.0,
        io_cost_growth_per_day: 0.001,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sessions_are_never_negative(pop in arbitrary_population(), t in 0u64..90*86_400) {
        prop_assert!(pop.active_sessions(t) >= 0.0);
    }

    #[test]
    fn load_balancer_conserves_sessions(pop in arbitrary_population(), t in 0u64..30*86_400) {
        let cluster = Cluster::two_node(model());
        let split = cluster.balanced_sessions(&pop, t);
        let total: f64 = split.iter().sum();
        prop_assert!((total - pop.active_sessions(t)).abs() < 1e-6 * (1.0 + total));
    }

    #[test]
    fn failover_still_conserves_sessions(
        pop in arbitrary_population(),
        t in 0u64..30*86_400,
        offset in 0u32..24,
    ) {
        let cluster = Cluster::two_node(model()).with_shock(Shock::failover(
            "cdbm011",
            BackupSchedule { interval_hours: 24, offset_hours: offset, duration_minutes: 90 },
        ));
        let split = cluster.balanced_sessions(&pop, t);
        let total: f64 = split.iter().sum();
        prop_assert!((total - pop.active_sessions(t)).abs() < 1e-6 * (1.0 + total));
        // The failed node never serves load inside its window.
        if cluster.is_down("cdbm011", t) {
            prop_assert_eq!(split[0], 0.0);
        }
    }

    #[test]
    fn cpu_metric_is_always_in_range(
        pop in arbitrary_population(),
        t in 0u64..30*86_400,
    ) {
        use dwcp_workload::Metric;
        let cluster = Cluster::two_node(model());
        let v = cluster.true_value("cdbm011", Metric::CpuPercent, &pop, t).unwrap();
        prop_assert!((0.0..=100.0).contains(&v), "cpu = {}", v);
    }

    #[test]
    fn metrics_are_monotone_in_sessions(extra in 1.0f64..2000.0, t in 0u64..86_400) {
        use dwcp_workload::Metric;
        let cluster = Cluster::two_node(model());
        let small = UserPopulation::steady(10.0, 12, 0.0);
        let large = UserPopulation::steady(10.0 + extra, 12, 0.0);
        for metric in Metric::ALL {
            let a = cluster.true_value("cdbm011", metric, &small, t).unwrap();
            let b = cluster.true_value("cdbm011", metric, &large, t).unwrap();
            prop_assert!(b >= a - 1e-9, "{metric}: {b} < {a}");
        }
    }

    #[test]
    fn backup_schedule_fires_expected_count_per_day(
        interval in prop::sample::select(vec![1u32, 2, 3, 4, 6, 8, 12, 24]),
        duration in 1u32..59,
    ) {
        let s = BackupSchedule { interval_hours: interval, offset_hours: 0, duration_minutes: duration };
        // Count rising edges over one day; t = 0 is an edge when active
        // (saturating_sub would otherwise compare t = 0 with itself).
        let fires = (0..24 * 60)
            .map(|m| m as u64 * 60)
            .filter(|&t| s.active_at(t) && (t == 0 || !s.active_at(t - 60)))
            .count() as u32;
        prop_assert_eq!(fires, s.per_day());
    }

    #[test]
    fn surge_users_appear_exactly_in_window(
        start in 0u32..20,
        duration in 1u32..4,
        users in 1.0f64..1000.0,
    ) {
        let surge = Surge { start_hour: start, duration_hours: duration, extra_users: users };
        let pop = UserPopulation {
            surges: vec![surge],
            ..UserPopulation::steady(100.0, 12, 0.0)
        };
        for hour in 0..24u64 {
            let v = pop.active_sessions(hour * 3600);
            let in_window = hour >= start as u64 && hour < (start + duration) as u64;
            if in_window {
                prop_assert!((v - 100.0 - users).abs() < 1e-9);
            } else {
                prop_assert!((v - 100.0).abs() < 1e-9);
            }
        }
    }
}
