//! Scheduled shocks: backups, batch jobs and failovers.
//!
//! §4.2: "Computationally, examples could be a batch job, backup or
//! fail-over that would seriously influence the computational resource
//! consumption." Both experiments use an RMAN-style backup as the shock:
//! Experiment One runs it "from Node 1 at midnight every night"; Experiment
//! Two runs "backups that run every 6 hours (4 exogenous variables)".
//!
//! A [`Shock`] knows when it is active and how strongly it multiplies each
//! metric; it can also render itself as 0/1 indicator columns — exactly the
//! exogenous variables SARIMAX consumes.

use crate::metrics::Metric;
use serde::{Deserialize, Serialize};

/// What kind of shock this is (affects the default resource signature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShockKind {
    /// An RMAN-style backup: heavy IO, moderate CPU, slight memory.
    Backup,
    /// A batch aggregation job: heavy CPU and IO.
    BatchJob,
    /// A failover: the affected instance drops out; peers absorb its load.
    Failover,
}

/// A recurring schedule: every `interval_hours`, starting at
/// `offset_hours` past midnight, lasting `duration_minutes`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupSchedule {
    /// Hours between occurrences (24 = nightly, 6 = the OLTP experiment).
    pub interval_hours: u32,
    /// Offset of the first occurrence past midnight, hours.
    pub offset_hours: u32,
    /// How long each occurrence lasts, minutes.
    pub duration_minutes: u32,
}

impl BackupSchedule {
    /// Nightly at midnight (Experiment One).
    pub fn nightly_midnight(duration_minutes: u32) -> BackupSchedule {
        BackupSchedule {
            interval_hours: 24,
            offset_hours: 0,
            duration_minutes,
        }
    }

    /// Every six hours (Experiment Two).
    pub fn six_hourly(duration_minutes: u32) -> BackupSchedule {
        BackupSchedule {
            interval_hours: 6,
            offset_hours: 0,
            duration_minutes,
        }
    }

    /// Whether the schedule is active at epoch-second `t`.
    pub fn active_at(&self, t: u64) -> bool {
        let interval = self.interval_hours as u64 * 3600;
        let offset = self.offset_hours as u64 * 3600;
        let pos = (t + interval - offset % interval.max(1)) % interval;
        pos < self.duration_minutes as u64 * 60
    }

    /// Occurrences per day.
    pub fn per_day(&self) -> u32 {
        24 / self.interval_hours.max(1)
    }
}

/// A shock bound to an instance with a resource signature.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Shock {
    /// Kind of shock.
    pub kind: ShockKind,
    /// Name of the instance it runs on (backups run on one node).
    pub instance: String,
    /// Recurrence schedule.
    pub schedule: BackupSchedule,
    /// Additive CPU load while active, percentage points.
    pub cpu_add: f64,
    /// Additive memory while active, MB.
    pub memory_add_mb: f64,
    /// Additive logical IOPS while active.
    pub iops_add: f64,
}

impl Shock {
    /// A backup shock with the conventional heavy-IO signature.
    pub fn backup(instance: &str, schedule: BackupSchedule) -> Shock {
        Shock {
            kind: ShockKind::Backup,
            instance: instance.to_string(),
            schedule,
            cpu_add: 12.0,
            memory_add_mb: 150.0,
            iops_add: 0.0, // scenario builders scale this to the workload
        }
    }

    /// A failover shock: the instance drops out entirely for the window;
    /// the cluster's load balancer reroutes its sessions to the peers.
    pub fn failover(instance: &str, schedule: BackupSchedule) -> Shock {
        Shock {
            kind: ShockKind::Failover,
            instance: instance.to_string(),
            schedule,
            cpu_add: 0.0,
            memory_add_mb: 0.0,
            iops_add: 0.0,
        }
    }

    /// Additional load on `(instance, metric)` at time `t`. Failover
    /// shocks add no load of their own — their effect is the rerouting the
    /// cluster's load balancer applies.
    pub fn load_at(&self, instance: &str, metric: Metric, t: u64) -> f64 {
        if self.kind == ShockKind::Failover
            || instance != self.instance
            || !self.schedule.active_at(t)
        {
            return 0.0;
        }
        match metric {
            Metric::CpuPercent => self.cpu_add,
            Metric::MemoryMb => self.memory_add_mb,
            Metric::LogicalIops => self.iops_add,
        }
    }

    /// Render the shock as a 0/1 indicator over `len` observations starting
    /// at `start` with `step` seconds per observation — the exogenous
    /// column handed to SARIMAX. An observation is flagged when the shock
    /// is active anywhere inside its window (hourly aggregation smears a
    /// 30-minute backup across its hour).
    pub fn indicator(&self, start: u64, step: u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| {
                let w0 = start + i as u64 * step;
                // Sample the window at minute resolution.
                let mut active = false;
                let mut t = w0;
                while t < w0 + step {
                    if self.schedule.active_at(t) {
                        active = true;
                        break;
                    }
                    t += 60;
                }
                if active {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// The paper models each daily occurrence slot of a recurring shock as
    /// its own exogenous variable ("backups that run every 6 hours (4
    /// exogenous variables)"): slot `k` fires only for the occurrence at
    /// `k · interval` past midnight. Returns `per_day()` indicator columns.
    pub fn slot_indicators(&self, start: u64, step: u64, len: usize) -> Vec<Vec<f64>> {
        let slots = self.schedule.per_day() as usize;
        let mut columns = vec![vec![0.0; len]; slots];
        let base = self.indicator(start, step, len);
        for (i, &flag) in base.iter().enumerate() {
            if flag > 0.0 {
                let t = start + i as u64 * step;
                let sod = t % 86_400;
                let slot = (sod / (self.schedule.interval_hours as u64 * 3600)) as usize;
                // lint: allow(indexing) — slot is clamped to slots-1 and i enumerates base, which sized every column
                columns[slot.min(slots - 1)][i] = 1.0;
            }
        }
        columns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3600;

    #[test]
    fn nightly_schedule_fires_at_midnight_only() {
        let s = BackupSchedule::nightly_midnight(30);
        assert!(s.active_at(0));
        assert!(s.active_at(29 * 60));
        assert!(!s.active_at(30 * 60));
        assert!(!s.active_at(12 * HOUR));
        assert!(s.active_at(86_400)); // next midnight
    }

    #[test]
    fn six_hourly_fires_four_times_a_day() {
        let s = BackupSchedule::six_hourly(30);
        assert_eq!(s.per_day(), 4);
        let fires: Vec<u64> = (0..24).filter(|h| s.active_at(h * HOUR)).collect();
        assert_eq!(fires, vec![0, 6, 12, 18]);
    }

    #[test]
    fn shock_only_loads_its_instance() {
        let shock = Shock::backup("cdbm011", BackupSchedule::nightly_midnight(30));
        assert!(shock.load_at("cdbm011", Metric::CpuPercent, 0) > 0.0);
        assert_eq!(shock.load_at("cdbm012", Metric::CpuPercent, 0), 0.0);
        assert_eq!(shock.load_at("cdbm011", Metric::CpuPercent, 12 * HOUR), 0.0);
    }

    #[test]
    fn indicator_marks_active_hours() {
        let shock = Shock::backup("cdbm011", BackupSchedule::six_hourly(30));
        let ind = shock.indicator(0, HOUR, 24);
        let active: Vec<usize> = ind
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0.0)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(active, vec![0, 6, 12, 18]);
    }

    #[test]
    fn slot_indicators_partition_the_base_indicator() {
        let shock = Shock::backup("cdbm011", BackupSchedule::six_hourly(45));
        let len = 48;
        let slots = shock.slot_indicators(0, HOUR, len);
        assert_eq!(slots.len(), 4); // the paper's "4 exogenous variables"
        let base = shock.indicator(0, HOUR, len);
        for i in 0..len {
            let sum: f64 = slots.iter().map(|c| c[i]).sum();
            assert_eq!(sum, base[i], "hour {i}");
        }
        // Slot 1 fires only at 06:00 hours.
        for (i, &v) in slots[1].iter().enumerate() {
            if v > 0.0 {
                assert_eq!(i % 24, 6);
            }
        }
    }

    #[test]
    fn offset_shifts_the_schedule() {
        let s = BackupSchedule {
            interval_hours: 24,
            offset_hours: 2,
            duration_minutes: 60,
        };
        assert!(!s.active_at(0));
        assert!(s.active_at(2 * HOUR));
        assert!(!s.active_at(3 * HOUR));
    }

    #[test]
    fn sub_hour_shock_is_caught_by_hourly_indicator() {
        // A 15-minute backup starting at minute 0 must still flag its hour.
        let shock = Shock::backup("a", BackupSchedule::nightly_midnight(15));
        let ind = shock.indicator(0, HOUR, 24);
        assert_eq!(ind[0], 1.0);
        assert_eq!(ind.iter().sum::<f64>(), 1.0);
    }
}
