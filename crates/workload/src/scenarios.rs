//! The paper's two controlled experiments, fully assembled.
//!
//! * [`olap_scenario`] — Experiment One (§7.1): 40 OLAP users, TPC-H-like,
//!   daily seasonality (C1), slight dataset growth, a nightly midnight
//!   backup shock on node 1 (C4). Logical IOPS peak near the quoted
//!   2.3 million.
//! * [`oltp_scenario`] — Experiment Two (§7.2): a TPC-E-like population
//!   growing by 50 users/day (C2), login surges at 07:00 (+1000 for 4 h)
//!   and 09:00 (+1000 for 1 h) plus a weekly cycle (C3), and a six-hourly
//!   backup shock (C4).
//!
//! A scenario runs for enough days to satisfy the Table 1 hourly protocol
//! (1008 hourly observations = 42 days) with one spare day.

use crate::agent::{Agent, FaultPlan};
use crate::cluster::{Cluster, ResourceModel};
use crate::metrics::Metric;
use crate::repository::Repository;
use crate::rng::Noise;
use crate::shock::{BackupSchedule, Shock};
use crate::users::{Surge, UserPopulation};
use crate::Result;
use dwcp_series::TimeSeries;

/// Which experiment a scenario reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Experiment One: simple OLAP workload.
    Olap,
    /// Experiment Two: complicated OLTP workload.
    Oltp,
}

impl ScenarioKind {
    /// Paper-facing label.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::Olap => "Experiment One (OLAP)",
            ScenarioKind::Oltp => "Experiment Two (OLTP)",
        }
    }
}

/// A fully configured experiment: cluster, population, agent and duration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which experiment this is.
    pub kind: ScenarioKind,
    /// The cluster under load (includes the shocks).
    pub cluster: Cluster,
    /// The user population driving it.
    pub population: UserPopulation,
    /// The monitoring agent.
    pub agent: Agent,
    /// Simulated duration in days.
    pub duration_days: u32,
    /// Epoch-seconds origin of the simulation (a Monday midnight).
    pub start: u64,
}

impl Scenario {
    /// Total simulated hours.
    pub fn hours(&self) -> usize {
        self.duration_days as usize * 24
    }

    /// Run the simulation: agent polls → repository.
    pub fn run(&self, seed: u64) -> Result<Repository> {
        let mut noise = Noise::seeded(seed);
        let samples = self.agent.collect(
            &self.cluster,
            &self.population,
            self.start,
            self.duration_days as u64 * 86_400,
            &mut noise,
        )?;
        let mut repo = Repository::new();
        repo.ingest(samples);
        Ok(repo)
    }

    /// Run and extract the hourly series for `(instance, metric)`.
    pub fn hourly(&self, seed: u64, instance: &str, metric: Metric) -> Result<TimeSeries> {
        let repo = self.run(seed)?;
        repo.hourly_series(instance, metric, self.start, self.hours())
    }

    /// The exogenous indicator columns for the scenario's shocks over
    /// `len` hourly observations starting at `start` — one column per
    /// daily occurrence slot, the paper's "4 exogenous variables" for the
    /// six-hourly backup.
    pub fn exogenous_columns(&self, start: u64, len: usize) -> Vec<Vec<f64>> {
        let mut cols = Vec::new();
        for shock in &self.cluster.shocks {
            cols.extend(shock.slot_indicators(start, 3600, len));
        }
        cols
    }

    /// Names of the instances, sorted — `["cdbm011", "cdbm012"]`.
    pub fn instance_names(&self) -> Vec<String> {
        self.cluster
            .instances
            .iter()
            .map(|i| i.name.clone())
            .collect()
    }
}

/// Experiment One: simple OLAP workload (challenges C1 and C4).
///
/// ```
/// use dwcp_workload::{olap_scenario, Metric};
///
/// let mut scenario = olap_scenario();
/// scenario.duration_days = 3; // shrink for the doctest
/// let cpu = scenario.hourly(42, "cdbm011", Metric::CpuPercent).unwrap();
/// assert_eq!(cpu.len(), 72);
/// assert!(cpu.max() <= 100.0);
/// ```
pub fn olap_scenario() -> Scenario {
    let resource_model = ResourceModel {
        // 20 users per node at peak; long scan-heavy queries.
        cpu_per_session: 2.5,
        cpu_baseline: 3.0,
        memory_per_session_mb: 90.0,
        memory_baseline_mb: 2_000.0,
        // 20 users/node × 105k ≈ 2.1M IOPS, growing toward the paper's
        // 2.3M peak as the dataset grows.
        iops_per_session: 105_000.0,
        iops_baseline: 5_000.0,
        noise_cv: 0.04,
        // "The dataset grew by several GB per hour" — scans lengthen.
        io_cost_growth_per_day: 0.004,
    };
    let cluster = Cluster::two_node(resource_model).with_shock(Shock {
        cpu_add: 15.0,
        memory_add_mb: 250.0,
        iops_add: 600_000.0,
        ..Shock::backup("cdbm011", BackupSchedule::nightly_midnight(45))
    });
    let population = UserPopulation::steady(40.0, 14, 0.7);
    Scenario {
        kind: ScenarioKind::Olap,
        cluster,
        population,
        agent: Agent::with_faults(FaultPlan {
            drop_probability: 0.005,
            maintenance: vec![],
        }),
        duration_days: 43,
        start: 0,
    }
}

/// Experiment Two: complicated OLTP workload (challenges C1–C4).
pub fn oltp_scenario() -> Scenario {
    let resource_model = ResourceModel {
        // Thousands of short transactions; CPU saturates softly as the
        // user base grows.
        cpu_per_session: 0.045,
        cpu_baseline: 4.0,
        memory_per_session_mb: 2.2,
        memory_baseline_mb: 1_200.0,
        iops_per_session: 38.0,
        iops_baseline: 1_500.0,
        noise_cv: 0.03,
        io_cost_growth_per_day: 0.0,
    };
    let cluster = Cluster::two_node(resource_model).with_shock(Shock {
        cpu_add: 10.0,
        memory_add_mb: 150.0,
        iops_add: 55_000.0,
        ..Shock::backup("cdbm011", BackupSchedule::six_hourly(30))
    });
    let population = UserPopulation {
        base_users: 500.0,
        growth_per_day: 50.0,
        daily_cycle_depth: 0.5,
        peak_hour: 14,
        weekly_cycle_depth: 0.2,
        surges: vec![
            Surge {
                start_hour: 7,
                duration_hours: 4,
                extra_users: 1000.0,
            },
            Surge {
                start_hour: 9,
                duration_hours: 1,
                extra_users: 1000.0,
            },
        ],
    };
    Scenario {
        kind: ScenarioKind::Oltp,
        cluster,
        population,
        agent: Agent::with_faults(FaultPlan {
            drop_probability: 0.005,
            maintenance: vec![],
        }),
        duration_days: 43,
        start: 0,
    }
}

/// A mixed estate (§9's failover discussion): OLTP-like traffic with
/// moderate growth, a nightly backup on node 1 **and** a weekly disaster-
/// recovery drill that takes node 2 down for an hour every Sunday 02:00 —
/// the "system fails over to a new site to test disaster recovery" case.
/// Node 2's metrics dip to baseline during the drill while node 1 absorbs
/// the whole population.
pub fn mixed_scenario() -> Scenario {
    let mut scenario = oltp_scenario();
    scenario.population.growth_per_day = 10.0;
    // Weekly drill: interval 168 h, offset 26 h (day 1 is Tuesday 02:00 at
    // origin Monday midnight… offset measured from midnight, so Sunday
    // 02:00 of week 1 is hour 6·24 + 2 = 146).
    scenario.cluster = scenario.cluster.with_shock(Shock::failover(
        "cdbm012",
        BackupSchedule {
            interval_hours: 168,
            offset_hours: 146,
            duration_minutes: 60,
        },
    ));
    scenario
}

#[cfg(test)]
mod tests {
    use super::*;
    use dwcp_series::interpolate::interpolate_series;
    use dwcp_series::{detect_seasonality, suggest_differencing};

    #[test]
    fn olap_trace_has_daily_seasonality() {
        let scenario = olap_scenario();
        let mut cpu = scenario.hourly(1, "cdbm012", Metric::CpuPercent).unwrap();
        interpolate_series(&mut cpu).unwrap();
        let report = detect_seasonality(cpu.values(), 200).unwrap();
        assert_eq!(report.primary(), Some(24), "{:?}", report.seasons);
    }

    #[test]
    fn olap_iops_peak_is_near_the_papers_quote() {
        let scenario = olap_scenario();
        let mut iops = scenario.hourly(1, "cdbm012", Metric::LogicalIops).unwrap();
        interpolate_series(&mut iops).unwrap();
        let peak = iops.max();
        assert!(
            (1.8e6..3.0e6).contains(&peak),
            "peak IOPS = {peak:.0}, expected ≈ 2.3M"
        );
    }

    #[test]
    fn olap_backup_spikes_node1_only() {
        let scenario = olap_scenario();
        let repo = scenario.run(2).unwrap();
        let mut n1 = repo
            .hourly_series("cdbm011", Metric::LogicalIops, 0, 48)
            .unwrap();
        let mut n2 = repo
            .hourly_series("cdbm012", Metric::LogicalIops, 0, 48)
            .unwrap();
        interpolate_series(&mut n1).unwrap();
        interpolate_series(&mut n2).unwrap();
        // Midnight hours (0 and 24) on node 1 carry the backup.
        assert!(n1.values()[0] - n2.values()[0] > 2e5);
        assert!(n1.values()[24] - n2.values()[24] > 2e5);
        // Midday hours match between nodes.
        assert!((n1.values()[12] - n2.values()[12]).abs() < 2e5);
    }

    #[test]
    fn oltp_trace_has_trend() {
        let scenario = oltp_scenario();
        let mut mem = scenario.hourly(3, "cdbm012", Metric::MemoryMb).unwrap();
        interpolate_series(&mut mem).unwrap();
        // Growth of 50 users/day × 2.2 MB / 2 nodes ≈ 55 MB/day upward.
        let d = suggest_differencing(mem.values(), 2).unwrap();
        assert!(d >= 1, "expected trending memory series, d = {d}");
        let first_week: f64 = mem.values()[..168].iter().sum::<f64>() / 168.0;
        let last_week: f64 = mem.values()[mem.len() - 168..].iter().sum::<f64>() / 168.0;
        assert!(last_week > first_week * 1.5);
    }

    #[test]
    fn oltp_surges_shape_the_morning() {
        let scenario = oltp_scenario();
        let mut cpu = scenario.hourly(4, "cdbm012", Metric::CpuPercent).unwrap();
        interpolate_series(&mut cpu).unwrap();
        // Compare 08:00 (inside the big surge) with 03:00 on the same day.
        let day = 10;
        let at_8 = cpu.values()[day * 24 + 8];
        let at_3 = cpu.values()[day * 24 + 3];
        assert!(at_8 > at_3 + 10.0, "surge missing: {at_8} vs {at_3}");
        // 09:00-10:00 (both surges) tops 08:00 (one surge).
        let at_9 = cpu.values()[day * 24 + 9];
        assert!(at_9 >= at_8 - 3.0, "double surge: {at_9} vs {at_8}");
    }

    #[test]
    fn oltp_exogenous_columns_match_paper_count() {
        let scenario = oltp_scenario();
        let cols = scenario.exogenous_columns(0, 48);
        // Six-hourly backup → 4 exogenous variables, as in §6.3.
        assert_eq!(cols.len(), 4);
        for col in &cols {
            let fires: f64 = col.iter().sum();
            assert_eq!(fires, 2.0); // once per day over two days
        }
    }

    #[test]
    fn scenario_covers_table1_hourly_protocol() {
        let scenario = olap_scenario();
        assert!(scenario.hours() >= 1008 + 24);
    }

    #[test]
    fn mixed_scenario_failover_shifts_load_weekly() {
        let scenario = mixed_scenario();
        let repo = scenario.run(13).unwrap();
        let mut n1 = repo
            .hourly_series("cdbm011", Metric::CpuPercent, 0, scenario.hours())
            .unwrap();
        let mut n2 = repo
            .hourly_series("cdbm012", Metric::CpuPercent, 0, scenario.hours())
            .unwrap();
        interpolate_series(&mut n1).unwrap();
        interpolate_series(&mut n2).unwrap();
        // Drill hour of week 2: hour 146 + 168 = 314.
        let drill = 314usize;
        // Node 2 collapses toward baseline; node 1 spikes above its
        // neighbouring hours.
        assert!(
            n2.values()[drill] < n2.values()[drill - 3] * 0.5,
            "node2 during drill {} vs before {}",
            n2.values()[drill],
            n2.values()[drill - 3]
        );
        assert!(
            n1.values()[drill] > n1.values()[drill - 3] + 3.0,
            "node1 during drill {} vs before {}",
            n1.values()[drill],
            n1.values()[drill - 3]
        );
    }

    #[test]
    fn same_seed_reproduces_identical_traces() {
        let scenario = oltp_scenario();
        let a = scenario.hourly(7, "cdbm011", Metric::CpuPercent).unwrap();
        let b = scenario.hourly(7, "cdbm011", Metric::CpuPercent).unwrap();
        // NaN != NaN, so compare finite values and gap positions.
        assert_eq!(a.len(), b.len());
        for (x, y) in a.values().iter().zip(b.values()) {
            assert!(x == y || (x.is_nan() && y.is_nan()));
        }
    }

    #[test]
    fn agent_faults_leave_few_gaps_after_hourly_aggregation() {
        // 0.5 % poll drops almost never kill all four polls of an hour.
        let scenario = olap_scenario();
        let cpu = scenario.hourly(9, "cdbm011", Metric::CpuPercent).unwrap();
        assert!(cpu.gap_count() < cpu.len() / 50);
    }
}
