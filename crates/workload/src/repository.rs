//! The central repository: stores raw samples, serves hourly aggregates.
//!
//! §5.1: "The values from the metrics are then stored, centrally, in a
//! repository where they are aggregated into hourly values." Hours in which
//! every poll was lost become NaN gaps, which the pipeline later closes by
//! linear interpolation (§5.1 again) — the repository deliberately does
//! *not* interpolate, preserving the paper's division of labour.

use crate::metrics::{Metric, MetricSample};
use crate::{Result, WorkloadError};
use dwcp_series::{Frequency, TimeSeries};
use std::collections::BTreeMap;

/// The central metric repository.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    /// Raw samples keyed by (instance, metric), each an ordered map from
    /// timestamp to value.
    store: BTreeMap<(String, Metric), BTreeMap<u64, f64>>,
}

impl Repository {
    /// An empty repository.
    pub fn new() -> Repository {
        Repository::default()
    }

    /// Ingest a batch of agent samples.
    pub fn ingest(&mut self, samples: Vec<MetricSample>) {
        for s in samples {
            self.store
                .entry((s.instance, s.metric))
                .or_default()
                .insert(s.timestamp, s.value);
        }
    }

    /// Instance names present, sorted.
    pub fn instances(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .store
            .keys()
            .map(|(i, _)| i.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        names.sort();
        names
    }

    /// Number of raw samples stored for a key.
    pub fn sample_count(&self, instance: &str, metric: Metric) -> usize {
        self.store
            .get(&(instance.to_string(), metric))
            .map_or(0, |m| m.len())
    }

    /// The hourly aggregated series for `(instance, metric)` covering
    /// `[start, start + hours)`. Hours without any sample are NaN gaps.
    pub fn hourly_series(
        &self,
        instance: &str,
        metric: Metric,
        start: u64,
        hours: usize,
    ) -> Result<TimeSeries> {
        let samples = self
            .store
            .get(&(instance.to_string(), metric))
            .ok_or_else(|| WorkloadError::NotFound {
                context: format!("no samples for {instance}/{metric}"),
            })?;
        let mut values = Vec::with_capacity(hours);
        for h in 0..hours {
            let w0 = start + h as u64 * 3600;
            let w1 = w0 + 3600;
            let mut sum = 0.0;
            let mut count = 0usize;
            for (_, &v) in samples.range(w0..w1) {
                sum += v;
                count += 1;
            }
            values.push(if count == 0 {
                f64::NAN
            } else {
                sum / count as f64
            });
        }
        Ok(TimeSeries::new(values, Frequency::Hourly, start))
    }

    /// Daily aggregated series: the hourly series further averaged over
    /// 24-hour buckets (the Table 1 daily protocol's input). Days with a
    /// few missing hours still aggregate; fully missing days stay gaps.
    pub fn daily_series(
        &self,
        instance: &str,
        metric: Metric,
        start: u64,
        days: usize,
    ) -> Result<TimeSeries> {
        let hourly = self.hourly_series(instance, metric, start, days * 24)?;
        Ok(hourly.aggregate_mean(24, Frequency::Daily))
    }

    /// Weekly aggregated series (the Table 1 weekly protocol's input).
    pub fn weekly_series(
        &self,
        instance: &str,
        metric: Metric,
        start: u64,
        weeks: usize,
    ) -> Result<TimeSeries> {
        let hourly = self.hourly_series(instance, metric, start, weeks * 168)?;
        Ok(hourly.aggregate_mean(168, Frequency::Weekly))
    }

    /// Hourly series for every metric of one instance.
    pub fn hourly_all_metrics(
        &self,
        instance: &str,
        start: u64,
        hours: usize,
    ) -> Result<Vec<(Metric, TimeSeries)>> {
        Metric::ALL
            .iter()
            .map(|&m| Ok((m, self.hourly_series(instance, m, start, hours)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instance: &str, metric: Metric, t: u64, v: f64) -> MetricSample {
        MetricSample {
            instance: instance.to_string(),
            metric,
            timestamp: t,
            value: v,
        }
    }

    #[test]
    fn hourly_aggregation_means_the_polls() {
        let mut repo = Repository::new();
        repo.ingest(vec![
            sample("a", Metric::CpuPercent, 0, 10.0),
            sample("a", Metric::CpuPercent, 900, 20.0),
            sample("a", Metric::CpuPercent, 1800, 30.0),
            sample("a", Metric::CpuPercent, 2700, 40.0),
            sample("a", Metric::CpuPercent, 3600, 100.0),
        ]);
        let s = repo.hourly_series("a", Metric::CpuPercent, 0, 2).unwrap();
        assert_eq!(s.values()[0], 25.0);
        assert_eq!(s.values()[1], 100.0);
    }

    #[test]
    fn missing_hours_are_nan_gaps() {
        let mut repo = Repository::new();
        repo.ingest(vec![
            sample("a", Metric::MemoryMb, 0, 1.0),
            sample("a", Metric::MemoryMb, 2 * 3600, 3.0),
        ]);
        let s = repo.hourly_series("a", Metric::MemoryMb, 0, 3).unwrap();
        assert_eq!(s.values()[0], 1.0);
        assert!(s.values()[1].is_nan());
        assert_eq!(s.values()[2], 3.0);
    }

    #[test]
    fn unknown_key_is_an_error() {
        let repo = Repository::new();
        assert!(repo.hourly_series("a", Metric::CpuPercent, 0, 1).is_err());
    }

    #[test]
    fn instances_are_sorted_and_deduped() {
        let mut repo = Repository::new();
        repo.ingest(vec![
            sample("b", Metric::CpuPercent, 0, 1.0),
            sample("a", Metric::CpuPercent, 0, 1.0),
            sample("a", Metric::MemoryMb, 0, 1.0),
        ]);
        assert_eq!(repo.instances(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn duplicate_timestamps_keep_latest() {
        let mut repo = Repository::new();
        repo.ingest(vec![
            sample("a", Metric::CpuPercent, 0, 10.0),
            sample("a", Metric::CpuPercent, 0, 50.0),
        ]);
        assert_eq!(repo.sample_count("a", Metric::CpuPercent), 1);
        let s = repo.hourly_series("a", Metric::CpuPercent, 0, 1).unwrap();
        assert_eq!(s.values()[0], 50.0);
    }

    #[test]
    fn daily_series_averages_24_hours() {
        let mut repo = Repository::new();
        // Two days of hourly single samples: day 0 all 10s, day 1 all 30s.
        for h in 0..48u64 {
            let v = if h < 24 { 10.0 } else { 30.0 };
            repo.ingest(vec![sample("a", Metric::CpuPercent, h * 3600, v)]);
        }
        let daily = repo.daily_series("a", Metric::CpuPercent, 0, 2).unwrap();
        assert_eq!(daily.len(), 2);
        assert_eq!(daily.values(), &[10.0, 30.0]);
        assert_eq!(daily.frequency(), Frequency::Daily);
    }

    #[test]
    fn weekly_series_averages_168_hours() {
        let mut repo = Repository::new();
        for h in 0..336u64 {
            let v = if h < 168 { 5.0 } else { 15.0 };
            repo.ingest(vec![sample("a", Metric::MemoryMb, h * 3600, v)]);
        }
        let weekly = repo.weekly_series("a", Metric::MemoryMb, 0, 2).unwrap();
        assert_eq!(weekly.values(), &[5.0, 15.0]);
        assert_eq!(weekly.frequency(), Frequency::Weekly);
    }

    #[test]
    fn partially_missing_day_still_aggregates() {
        let mut repo = Repository::new();
        // Only hours 0..12 of one day have data.
        for h in 0..12u64 {
            repo.ingest(vec![sample("a", Metric::CpuPercent, h * 3600, 20.0)]);
        }
        let daily = repo.daily_series("a", Metric::CpuPercent, 0, 1).unwrap();
        assert_eq!(daily.values(), &[20.0]);
    }

    #[test]
    fn series_metadata_is_hourly_from_start() {
        let mut repo = Repository::new();
        repo.ingest(vec![sample("a", Metric::CpuPercent, 7200, 5.0)]);
        let s = repo
            .hourly_series("a", Metric::CpuPercent, 7200, 1)
            .unwrap();
        assert_eq!(s.frequency(), Frequency::Hourly);
        assert_eq!(s.origin(), 7200);
    }
}
