//! Deterministic randomness for the simulator.
//!
//! Every stochastic component of the testbed takes an explicit seed so
//! experiment binaries are exactly reproducible run-to-run. Gaussian noise
//! is produced by Box-Muller over the `rand` uniform generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded noise source.
#[derive(Debug, Clone)]
pub struct Noise {
    rng: StdRng,
    cached: Option<f64>,
}

impl Noise {
    /// Create from a seed.
    pub fn seeded(seed: u64) -> Noise {
        Noise {
            rng: StdRng::seed_from_u64(seed),
            cached: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Standard normal sample (Box-Muller; pairs cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(v) = self.cached.take() {
            return v;
        }
        let u1: f64 = self.rng.gen::<f64>().max(1e-300);
        let u2: f64 = self.rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Noise::seeded(7);
        let mut b = Noise::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Noise::seeded(1);
        let mut b = Noise::seeded(2);
        let same = (0..50).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 5);
    }

    #[test]
    fn standard_normal_moments() {
        let mut n = Noise::seeded(42);
        let samples: Vec<f64> = (0..50_000).map(|_| n.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn chance_respects_probability() {
        let mut n = Noise::seeded(9);
        let hits = (0..10_000).filter(|_| n.chance(0.25)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate = {rate}");
    }
}
