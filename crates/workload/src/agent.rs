//! The monitoring agent: polls every instance every 15 minutes.
//!
//! §5.1: "The Agent specifically executes commands on the hosts that
//! retrieve the metric values from the database and polls these metrics at
//! regular intervals. … It is possible that the agent may have been at
//! fault and may not have executed or polled the value from the database
//! target; this can happen in live environments due to maintenance cycles
//! or faults." [`FaultPlan`] reproduces both failure modes: random drops
//! and scheduled maintenance windows.

use crate::cluster::Cluster;
use crate::metrics::{Metric, MetricSample};
use crate::rng::Noise;
use crate::users::UserPopulation;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The agent's polling cadence: every 15 minutes, as in the paper.
pub const POLL_INTERVAL_SECONDS: u64 = 15 * 60;

/// A maintenance window during which no polls happen.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceWindow {
    /// Window start, epoch seconds.
    pub start: u64,
    /// Window end (exclusive), epoch seconds.
    pub end: u64,
}

/// Fault injection for the agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that any individual poll is silently dropped.
    pub drop_probability: f64,
    /// Scheduled windows with no polling at all.
    pub maintenance: Vec<MaintenanceWindow>,
}

impl FaultPlan {
    /// A perfectly healthy agent.
    pub fn none() -> FaultPlan {
        FaultPlan {
            drop_probability: 0.0,
            maintenance: vec![],
        }
    }

    /// Whether time `t` falls inside a maintenance window.
    pub fn in_maintenance(&self, t: u64) -> bool {
        self.maintenance.iter().any(|w| t >= w.start && t < w.end)
    }
}

/// The polling agent.
#[derive(Debug, Clone)]
pub struct Agent {
    /// Fault injection plan.
    pub faults: FaultPlan,
}

impl Agent {
    /// A healthy agent.
    pub fn healthy() -> Agent {
        Agent {
            faults: FaultPlan::none(),
        }
    }

    /// An agent with the given fault plan.
    pub fn with_faults(faults: FaultPlan) -> Agent {
        Agent { faults }
    }

    /// Poll every `(instance, metric)` pair of `cluster` from `start` for
    /// `duration_seconds`, at the 15-minute cadence. Dropped polls are
    /// simply absent from the output (the repository turns missing polls
    /// into gaps).
    pub fn collect(
        &self,
        cluster: &Cluster,
        population: &UserPopulation,
        start: u64,
        duration_seconds: u64,
        noise: &mut Noise,
    ) -> Result<Vec<MetricSample>> {
        let polls = duration_seconds / POLL_INTERVAL_SECONDS;
        let mut out =
            Vec::with_capacity(polls as usize * cluster.instances.len() * Metric::ALL.len());
        for k in 0..polls {
            let t = start + k * POLL_INTERVAL_SECONDS;
            if self.faults.in_maintenance(t) {
                continue;
            }
            for instance in &cluster.instances {
                for &metric in &Metric::ALL {
                    if self.faults.drop_probability > 0.0
                        && noise.chance(self.faults.drop_probability)
                    {
                        continue;
                    }
                    let value = cluster.observe(&instance.name, metric, population, t, noise)?;
                    out.push(MetricSample {
                        instance: instance.name.clone(),
                        metric,
                        timestamp: t,
                        value,
                    });
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ResourceModel;

    fn setup() -> (Cluster, UserPopulation) {
        let model = ResourceModel {
            cpu_per_session: 1.0,
            cpu_baseline: 2.0,
            memory_per_session_mb: 8.0,
            memory_baseline_mb: 500.0,
            iops_per_session: 1000.0,
            iops_baseline: 200.0,
            noise_cv: 0.01,
            io_cost_growth_per_day: 0.0,
        };
        (
            Cluster::two_node(model),
            UserPopulation::steady(40.0, 12, 0.5),
        )
    }

    #[test]
    fn healthy_agent_polls_everything() {
        let (cluster, pop) = setup();
        let agent = Agent::healthy();
        let mut noise = Noise::seeded(1);
        let samples = agent
            .collect(&cluster, &pop, 0, 3600 * 2, &mut noise)
            .unwrap();
        // 2 hours = 8 polls × 2 instances × 3 metrics.
        assert_eq!(samples.len(), 8 * 2 * 3);
    }

    #[test]
    fn poll_timestamps_are_quarter_hourly() {
        let (cluster, pop) = setup();
        let agent = Agent::healthy();
        let mut noise = Noise::seeded(2);
        let samples = agent.collect(&cluster, &pop, 0, 3600, &mut noise).unwrap();
        for s in &samples {
            assert_eq!(s.timestamp % POLL_INTERVAL_SECONDS, 0);
        }
    }

    #[test]
    fn drop_probability_loses_samples() {
        let (cluster, pop) = setup();
        let agent = Agent::with_faults(FaultPlan {
            drop_probability: 0.3,
            maintenance: vec![],
        });
        let mut noise = Noise::seeded(3);
        let samples = agent
            .collect(&cluster, &pop, 0, 86_400, &mut noise)
            .unwrap();
        let full = 96 * 2 * 3;
        assert!(samples.len() < full);
        assert!(samples.len() > full / 2);
    }

    #[test]
    fn maintenance_window_blanks_polls() {
        let (cluster, pop) = setup();
        let agent = Agent::with_faults(FaultPlan {
            drop_probability: 0.0,
            maintenance: vec![MaintenanceWindow {
                start: 3600,
                end: 7200,
            }],
        });
        let mut noise = Noise::seeded(4);
        let samples = agent
            .collect(&cluster, &pop, 0, 3 * 3600, &mut noise)
            .unwrap();
        assert!(samples
            .iter()
            .all(|s| s.timestamp < 3600 || s.timestamp >= 7200));
        // One of three hours lost.
        assert_eq!(samples.len(), 8 * 2 * 3);
    }
}
