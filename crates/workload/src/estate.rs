//! Million-job simulated estate generator.
//!
//! The paper's deployment target is every (instance, metric, granularity)
//! triple in a database estate — §5.1's agent polls *all* of them. This
//! module generates that estate lazily: [`EstateSpec`] maps a job index to
//! a stable workload key and any key to a deterministic daily series, so a
//! scheduler can stream a million jobs through bounded-memory waves
//! without the generator ever materialising more than one series at a
//! time.
//!
//! Every series is seeded by `fnv64(key) ^ seed`: the same key always
//! yields the same observations (checkpoint resume refits identical data),
//! and neighbouring keys are statistically independent.

use crate::rng::Noise;
use dwcp_series::{Frequency, TimeSeries};

/// The three paper metrics every estate instance reports (§5.1).
pub const ESTATE_METRICS: [&str; 3] = ["CPU", "Memory", "IOPS"];

/// A lazily generated estate of daily capacity series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstateSpec {
    /// Total jobs: `⌈n_jobs / 3⌉` instances × 3 metrics (the tail instance
    /// may carry fewer metrics).
    pub n_jobs: usize,
    /// Observations per series (daily cadence).
    pub observations: usize,
    /// Estate-level seed XOR-ed into every per-key series seed.
    pub seed: u64,
}

impl EstateSpec {
    /// An estate of `n_jobs` series of `observations` daily points.
    pub fn new(n_jobs: usize, observations: usize, seed: u64) -> EstateSpec {
        EstateSpec {
            n_jobs,
            observations,
            seed,
        }
    }

    /// The workload key of job `idx`: `est{instance:06}/{metric}/daily`,
    /// metrics cycling per instance.
    pub fn key(&self, idx: usize) -> String {
        // lint: allow(indexing) — the modulo keeps the metric index in range
        let metric = ESTATE_METRICS[idx % ESTATE_METRICS.len()];
        format!("est{:06}/{}/daily", idx / ESTATE_METRICS.len(), metric)
    }

    /// Every workload key, in index order. This is the only whole-estate
    /// allocation the generator ever makes (keys only, ~25 bytes each —
    /// the series stay lazy).
    pub fn keys(&self) -> Vec<String> {
        (0..self.n_jobs).map(|i| self.key(i)).collect()
    }

    /// Generate the series for a key: a level + slight trend + weekly
    /// cycle + Gaussian noise, fully determined by `fnv64(key) ^ seed`.
    pub fn series(&self, key: &str) -> TimeSeries {
        let mut noise = Noise::seeded(fnv64(key) ^ self.seed);
        let level = 35.0 + 40.0 * noise.uniform();
        let trend = 0.08 * (noise.uniform() - 0.35);
        let amplitude = 4.0 + 10.0 * noise.uniform();
        let phase = noise.uniform() * std::f64::consts::TAU;
        let values: Vec<f64> = (0..self.observations)
            .map(|t| {
                let tf = t as f64;
                let seasonal = amplitude * (std::f64::consts::TAU * tf / 7.0 + phase).sin();
                (level + trend * tf + seasonal + noise.normal(0.0, 1.5)).max(0.0)
            })
            .collect();
        TimeSeries::new(values, Frequency::Daily, 0)
    }
}

/// Stable FNV-1a 64 hash — the key → seed map must never change across
/// builds, or checkpointed estates would resume onto different data.
fn fnv64(key: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1_0000_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in key.as_bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_cycle_metrics() {
        let estate = EstateSpec::new(7, 30, 1);
        assert_eq!(estate.key(0), "est000000/CPU/daily");
        assert_eq!(estate.key(1), "est000000/Memory/daily");
        assert_eq!(estate.key(2), "est000000/IOPS/daily");
        assert_eq!(estate.key(3), "est000001/CPU/daily");
        assert_eq!(estate.keys().len(), 7);
    }

    #[test]
    fn series_are_deterministic_per_key_and_distinct_across_keys() {
        let estate = EstateSpec::new(6, 97, 42);
        let a1 = estate.series("est000000/CPU/daily");
        let a2 = estate.series("est000000/CPU/daily");
        let b = estate.series("est000000/Memory/daily");
        assert_eq!(a1.values(), a2.values(), "same key, same data");
        assert_ne!(a1.values(), b.values(), "different keys diverge");
        assert_eq!(a1.len(), 97);
        assert!(a1.values().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn seed_shifts_the_whole_estate() {
        let a = EstateSpec::new(3, 50, 1).series("est000000/CPU/daily");
        let b = EstateSpec::new(3, 50, 2).series("est000000/CPU/daily");
        assert_ne!(a.values(), b.values());
    }
}
