//! Application-tier and storage-tier signals (§8).
//!
//! The paper's practice section applies the same forecasting machinery
//! well beyond the database instance: "Groups of *clicks* that make up a
//! transaction in a web application", WebLogic-style application
//! containers, and "network layers of storage, such as Network Attached
//! Storage and SAN Volume Controllers". The claim being exercised: "the
//! technique should be architecture independent such that it should work
//! for time series data regardless of architecture or metric."
//!
//! This module models those layers on top of the same user population:
//! click-group throughput, transaction response time (which *rises* with
//! load — a qualitatively different, latency-shaped series), app-container
//! heap usage with periodic GC sawtooth, and SAN throughput that mirrors
//! database IO plus backup traffic.

use crate::metrics::MetricSample;
use crate::rng::Noise;
use crate::shock::Shock;
use crate::users::UserPopulation;
use serde::{Deserialize, Serialize};

/// A metric emitted by the non-database tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppMetric {
    /// Completed click-group transactions per second on the web tier.
    ClickGroupsPerSecond,
    /// Mean transaction response time, milliseconds (OATS-style probe).
    ResponseTimeMs,
    /// Application-container heap in use, MB (GC sawtooth).
    ContainerHeapMb,
    /// SAN volume-controller throughput, MB/s.
    SanThroughputMbps,
}

impl AppMetric {
    /// All app-tier metrics.
    pub const ALL: [AppMetric; 4] = [
        AppMetric::ClickGroupsPerSecond,
        AppMetric::ResponseTimeMs,
        AppMetric::ContainerHeapMb,
        AppMetric::SanThroughputMbps,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            AppMetric::ClickGroupsPerSecond => "Click groups/s",
            AppMetric::ResponseTimeMs => "Response time (ms)",
            AppMetric::ContainerHeapMb => "Container heap (MB)",
            AppMetric::SanThroughputMbps => "SAN throughput (MB/s)",
        }
    }
}

impl std::fmt::Display for AppMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The application tier: web/app servers in front of the database,
/// plus the storage network beneath it.
#[derive(Debug, Clone)]
pub struct ApplicationTier {
    /// Click-group transactions per active session per second.
    pub clicks_per_session: f64,
    /// Base response time with an idle backend, ms.
    pub base_response_ms: f64,
    /// Sessions at which response time has doubled (soft saturation knee).
    pub saturation_sessions: f64,
    /// Container heap floor, MB.
    pub heap_floor_mb: f64,
    /// Heap growth per active session, MB.
    pub heap_per_session_mb: f64,
    /// Heap ceiling that triggers the GC sawtooth, MB.
    pub heap_gc_ceiling_mb: f64,
    /// SAN MB/s per active session.
    pub san_mbps_per_session: f64,
    /// Additional SAN MB/s while any backup shock is active.
    pub san_backup_mbps: f64,
    /// Observation noise (coefficient of variation).
    pub noise_cv: f64,
    /// Backups and other shocks visible from the storage network.
    pub shocks: Vec<Shock>,
}

impl ApplicationTier {
    /// A tier sized for the paper's scenarios.
    pub fn standard() -> ApplicationTier {
        ApplicationTier {
            clicks_per_session: 0.4,
            base_response_ms: 120.0,
            saturation_sessions: 4_000.0,
            heap_floor_mb: 512.0,
            heap_per_session_mb: 0.35,
            heap_gc_ceiling_mb: 3_072.0,
            san_mbps_per_session: 0.08,
            san_backup_mbps: 450.0,
            noise_cv: 0.03,
            shocks: vec![],
        }
    }

    /// Attach a shock whose IO is visible on the SAN.
    pub fn with_shock(mut self, shock: Shock) -> ApplicationTier {
        self.shocks.push(shock);
        self
    }

    /// Whether any attached shock is active anywhere in the estate at `t`.
    fn backup_active(&self, t: u64) -> bool {
        self.shocks.iter().any(|s| s.schedule.active_at(t))
    }

    /// Noise-free expected value of `metric` at time `t` under `population`.
    pub fn true_value(&self, metric: AppMetric, population: &UserPopulation, t: u64) -> f64 {
        let sessions = population.active_sessions(t);
        match metric {
            AppMetric::ClickGroupsPerSecond => self.clicks_per_session * sessions,
            AppMetric::ResponseTimeMs => {
                // Latency rises hyperbolically toward saturation — the
                // shape the OATS-style slowdown probe watches. Clamped at
                // 50× base so a saturated tier reports a finite (terrible)
                // number rather than infinity.
                let utilisation = (sessions / self.saturation_sessions).min(0.98);
                let factor = 1.0 / (1.0 - utilisation);
                self.base_response_ms * factor.min(50.0)
            }
            AppMetric::ContainerHeapMb => {
                // Linear occupancy folded through the GC ceiling: a
                // sawtooth in heap space, the classic container signature.
                let demand = self.heap_floor_mb + self.heap_per_session_mb * sessions;
                let span = (self.heap_gc_ceiling_mb - self.heap_floor_mb).max(1.0);
                self.heap_floor_mb + (demand - self.heap_floor_mb) % span
            }
            AppMetric::SanThroughputMbps => {
                let mut v = self.san_mbps_per_session * sessions;
                if self.backup_active(t) {
                    v += self.san_backup_mbps;
                }
                v
            }
        }
    }

    /// A noisy observation.
    pub fn observe(
        &self,
        metric: AppMetric,
        population: &UserPopulation,
        t: u64,
        noise: &mut Noise,
    ) -> f64 {
        let v = self.true_value(metric, population, t);
        noise.normal(v, v.abs() * self.noise_cv).max(0.0)
    }

    /// Poll every app-tier metric at the agent cadence over a window,
    /// mirroring [`crate::agent::Agent::collect`]. Samples are tagged with
    /// the pseudo-instance name `apptier`.
    pub fn collect(
        &self,
        population: &UserPopulation,
        start: u64,
        duration_seconds: u64,
        noise: &mut Noise,
    ) -> Vec<MetricSample> {
        let step = crate::agent::POLL_INTERVAL_SECONDS;
        let polls = duration_seconds / step;
        let mut out = Vec::with_capacity(polls as usize * AppMetric::ALL.len());
        for k in 0..polls {
            let t = start + k * step;
            for &metric in &AppMetric::ALL {
                out.push(MetricSample {
                    instance: format!("apptier/{}", metric.label()),
                    metric: crate::metrics::Metric::CpuPercent, // carrier slot
                    timestamp: t,
                    value: self.observe(metric, population, t, noise),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shock::BackupSchedule;

    fn pop(users: f64) -> UserPopulation {
        UserPopulation::steady(users, 12, 0.0)
    }

    #[test]
    fn click_rate_scales_linearly_with_sessions() {
        let tier = ApplicationTier::standard();
        let a = tier.true_value(AppMetric::ClickGroupsPerSecond, &pop(100.0), 0);
        let b = tier.true_value(AppMetric::ClickGroupsPerSecond, &pop(200.0), 0);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }

    #[test]
    fn response_time_rises_nonlinearly_toward_saturation() {
        let tier = ApplicationTier::standard();
        let low = tier.true_value(AppMetric::ResponseTimeMs, &pop(400.0), 0);
        let mid = tier.true_value(AppMetric::ResponseTimeMs, &pop(2_000.0), 0);
        let high = tier.true_value(AppMetric::ResponseTimeMs, &pop(3_800.0), 0);
        assert!(mid > low);
        assert!(high > mid);
        // Non-linear: the second 1800-session step costs much more latency.
        assert!(high - mid > (mid - low) * 2.0);
        // And stays finite even past saturation.
        let insane = tier.true_value(AppMetric::ResponseTimeMs, &pop(1e9), 0);
        assert!(insane.is_finite());
    }

    #[test]
    fn heap_sawtooth_wraps_at_the_gc_ceiling() {
        let tier = ApplicationTier::standard();
        let just_below = tier.true_value(AppMetric::ContainerHeapMb, &pop(7_000.0), 0);
        let wrapped = tier.true_value(AppMetric::ContainerHeapMb, &pop(7_500.0), 0);
        assert!(just_below <= tier.heap_gc_ceiling_mb);
        assert!(wrapped >= tier.heap_floor_mb);
        assert!(wrapped < just_below, "{wrapped} vs {just_below}");
    }

    #[test]
    fn san_sees_the_backup() {
        let tier = ApplicationTier::standard().with_shock(Shock::backup(
            "cdbm011",
            BackupSchedule::nightly_midnight(30),
        ));
        let during = tier.true_value(AppMetric::SanThroughputMbps, &pop(500.0), 0);
        let outside = tier.true_value(AppMetric::SanThroughputMbps, &pop(500.0), 12 * 3600);
        assert!((during - outside - 450.0).abs() < 1e-9);
    }

    #[test]
    fn collect_polls_all_metrics_at_cadence() {
        let tier = ApplicationTier::standard();
        let mut noise = Noise::seeded(3);
        let samples = tier.collect(&pop(100.0), 0, 2 * 3600, &mut noise);
        assert_eq!(samples.len(), 8 * 4); // 8 polls × 4 metrics
        assert!(samples.iter().all(|s| s.value >= 0.0));
    }

    #[test]
    fn app_series_is_forecastable_by_the_same_pipeline_inputs() {
        // The architecture-independence claim in miniature: a response-time
        // series from the app tier exhibits the same structures (daily
        // cycle) the planner consumes.
        let tier = ApplicationTier::standard();
        let population = UserPopulation::steady(2_500.0, 14, 0.6);
        let mut noise = Noise::seeded(7);
        let values: Vec<f64> = (0..24 * 30)
            .map(|h| tier.observe(AppMetric::ResponseTimeMs, &population, h * 3600, &mut noise))
            .collect();
        let report = dwcp_series::detect_seasonality(&values, 200).unwrap();
        assert_eq!(report.primary(), Some(24), "{:?}", report.seasons);
    }
}
