//! User populations: how many sessions hit the cluster at any moment.
//!
//! Experiment One: "a modest number of 40 OLAP users … users connect to a
//! clustered database and perform OLAP activities". Experiment Two: "we
//! allow the user base to grow per day … increasing the user base by 50
//! users per day … Surges in users are introduced twice daily at 07:00am of
//! 1000 users for a period of 4 hours and again at 9am for another 1000
//! users for a period of 1 hour."

use serde::{Deserialize, Serialize};

/// A recurring daily login surge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Surge {
    /// Start hour of day (0–23).
    pub start_hour: u32,
    /// Duration in hours.
    pub duration_hours: u32,
    /// Extra users active during the surge.
    pub extra_users: f64,
}

impl Surge {
    /// Whether the surge is active at second-of-day `sod`.
    pub fn active_at(&self, sod: u64) -> bool {
        let start = self.start_hour as u64 * 3600;
        let end = start + self.duration_hours as u64 * 3600;
        sod >= start && sod < end
    }
}

/// A user population model producing expected concurrent active sessions as
/// a function of absolute time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserPopulation {
    /// Users connected at `t = 0` (before growth).
    pub base_users: f64,
    /// Additional users per elapsed day (Experiment Two's +50/day trend).
    pub growth_per_day: f64,
    /// Depth of the daily activity cycle, 0..1: at the daily trough only
    /// `1 − depth` of users are active (overnight idling).
    pub daily_cycle_depth: f64,
    /// Hour of day (0–23) of peak activity.
    pub peak_hour: u32,
    /// Weekly modulation depth, 0..1 (weekend dips); 0 disables it.
    pub weekly_cycle_depth: f64,
    /// Recurring login surges.
    pub surges: Vec<Surge>,
}

impl UserPopulation {
    /// A flat population with a daily cycle and no growth (Experiment One).
    pub fn steady(base_users: f64, peak_hour: u32, daily_cycle_depth: f64) -> UserPopulation {
        UserPopulation {
            base_users,
            growth_per_day: 0.0,
            daily_cycle_depth,
            peak_hour,
            weekly_cycle_depth: 0.0,
            surges: vec![],
        }
    }

    /// Expected active sessions at epoch-second `t` (noise-free; the
    /// resource model adds stochasticity downstream).
    pub fn active_sessions(&self, t: u64) -> f64 {
        let days = t as f64 / 86_400.0;
        let mut users = self.base_users + self.growth_per_day * days;

        // Daily activity cycle: cosine peaking at `peak_hour`.
        let sod = t % 86_400;
        let phase =
            2.0 * std::f64::consts::PI * (sod as f64 / 86_400.0 - self.peak_hour as f64 / 24.0);
        let daily_factor = 1.0 - self.daily_cycle_depth * 0.5 * (1.0 - phase.cos());
        users *= daily_factor;

        // Weekly cycle: cosine over the week, trough mid-weekend.
        if self.weekly_cycle_depth > 0.0 {
            let sow = t % (7 * 86_400);
            // Day 0 of the simulation is a Monday; weekend ≈ days 5–6.
            let wphase = 2.0 * std::f64::consts::PI * (sow as f64 / (7.0 * 86_400.0) - 5.5 / 7.0);
            let weekly_factor = 1.0 - self.weekly_cycle_depth * 0.5 * (1.0 + wphase.cos());
            users *= weekly_factor;
        }

        // Surges add users on top, unaffected by the cycles (a login storm
        // is a login storm).
        for surge in &self.surges {
            if surge.active_at(sod) {
                users += surge.extra_users;
            }
        }
        users.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: u64 = 3600;

    #[test]
    fn steady_population_peaks_at_peak_hour() {
        let p = UserPopulation::steady(40.0, 14, 0.6);
        let at_peak = p.active_sessions(14 * HOUR);
        let at_trough = p.active_sessions(2 * HOUR);
        assert!(at_peak > at_trough);
        assert!((at_peak - 40.0).abs() < 1e-9, "peak should be full base");
    }

    #[test]
    fn cycle_depth_bounds_the_trough() {
        let p = UserPopulation::steady(100.0, 12, 0.8);
        let trough = p.active_sessions(0); // midnight, 12h from peak
        assert!((trough - 20.0).abs() < 1e-9, "trough = {trough}");
    }

    #[test]
    fn growth_adds_users_per_day() {
        let p = UserPopulation {
            growth_per_day: 50.0,
            ..UserPopulation::steady(100.0, 12, 0.0)
        };
        let day0 = p.active_sessions(12 * HOUR);
        let day10 = p.active_sessions(10 * 86_400 + 12 * HOUR);
        assert!((day10 - day0 - 500.0).abs() < 50.0 * 0.51); // half-day tolerance
    }

    #[test]
    fn surge_is_active_only_in_window() {
        let surge = Surge {
            start_hour: 7,
            duration_hours: 4,
            extra_users: 1000.0,
        };
        assert!(!surge.active_at(6 * HOUR + 3599));
        assert!(surge.active_at(7 * HOUR));
        assert!(surge.active_at(10 * HOUR + 3599));
        assert!(!surge.active_at(11 * HOUR));
    }

    #[test]
    fn oltp_double_surge_shape() {
        // The Experiment Two configuration: 07:00 (+1000, 4 h) and
        // 09:00 (+1000, 1 h) overlap between 09:00 and 10:00.
        let p = UserPopulation {
            surges: vec![
                Surge {
                    start_hour: 7,
                    duration_hours: 4,
                    extra_users: 1000.0,
                },
                Surge {
                    start_hour: 9,
                    duration_hours: 1,
                    extra_users: 1000.0,
                },
            ],
            ..UserPopulation::steady(500.0, 12, 0.0)
        };
        let at_8 = p.active_sessions(8 * HOUR);
        let at_930 = p.active_sessions(9 * HOUR + 1800);
        let at_12 = p.active_sessions(12 * HOUR);
        assert!((at_8 - 1500.0).abs() < 1e-9);
        assert!((at_930 - 2500.0).abs() < 1e-9);
        assert!((at_12 - 500.0).abs() < 1e-9);
    }

    #[test]
    fn weekly_cycle_dips_on_weekend() {
        let p = UserPopulation {
            weekly_cycle_depth: 0.5,
            ..UserPopulation::steady(100.0, 12, 0.0)
        };
        let midweek = p.active_sessions(86_400 + 12 * HOUR); // Tuesday noon
        let weekend = p.active_sessions(5 * 86_400 + 12 * HOUR + 43_200); // Sat night
        assert!(weekend < midweek, "{weekend} vs {midweek}");
    }

    #[test]
    fn sessions_never_negative() {
        let p = UserPopulation {
            growth_per_day: -100.0,
            ..UserPopulation::steady(50.0, 12, 0.9)
        };
        for d in 0..30 {
            assert!(p.active_sessions(d * 86_400) >= 0.0);
        }
    }
}
