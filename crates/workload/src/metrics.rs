//! The metric taxonomy and raw agent samples.
//!
//! §5.1: "Our approach was to … capture key metrics (CPU, IOPS and Memory)
//! that are applicable to monitoring and capacity planning via an agent."

use serde::{Deserialize, Serialize};

/// A monitored database metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Metric {
    /// Host CPU consumed by the database instance, percent (0–100).
    CpuPercent,
    /// Memory consumed by the instance (SGA/PGA), megabytes.
    MemoryMb,
    /// Logical I/O operations per second.
    LogicalIops,
}

impl Metric {
    /// All metrics, in the order the paper's tables list them.
    pub const ALL: [Metric; 3] = [Metric::CpuPercent, Metric::MemoryMb, Metric::LogicalIops];

    /// Human-readable label matching the paper's table rows.
    pub fn label(self) -> &'static str {
        match self {
            Metric::CpuPercent => "CPU",
            Metric::MemoryMb => "Memory",
            Metric::LogicalIops => "Logical IOPS",
        }
    }

    /// The unit the metric is reported in.
    pub fn unit(self) -> &'static str {
        match self {
            Metric::CpuPercent => "%",
            Metric::MemoryMb => "MB",
            Metric::LogicalIops => "ops/s",
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One raw sample polled by the agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Instance the value was read from (e.g. `cdbm011`).
    pub instance: String,
    /// Which metric.
    pub metric: Metric,
    /// Epoch-seconds timestamp of the poll.
    pub timestamp: u64,
    /// The observed value.
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_tables() {
        assert_eq!(Metric::CpuPercent.label(), "CPU");
        assert_eq!(Metric::MemoryMb.label(), "Memory");
        assert_eq!(Metric::LogicalIops.label(), "Logical IOPS");
    }

    #[test]
    fn all_covers_every_variant() {
        assert_eq!(Metric::ALL.len(), 3);
    }

    #[test]
    fn sample_serde_roundtrip() {
        let s = MetricSample {
            instance: "cdbm011".to_string(),
            metric: Metric::LogicalIops,
            timestamp: 1_700_000_000,
            value: 2_300_000.0,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
