//! The clustered database and its resource model.
//!
//! Figure 5: "workloads are executed on an Oracle clustered database … The
//! load is shared between the nodes of the clustered database to keep an
//! even balance of activity." The two experiment instances are `cdbm011`
//! and `cdbm012`.
//!
//! The [`ResourceModel`] translates active sessions into metric values per
//! instance: CPU saturates toward a capacity ceiling, memory follows
//! connections plus a cache component, logical IOPS scale with transaction
//! throughput. The numbers are tuned so OLAP traces peak near the paper's
//! quoted "2.3 million logical IOPS per hour throughput at the workload's
//! peak".

use crate::metrics::Metric;
use crate::rng::Noise;
use crate::shock::Shock;
use crate::users::UserPopulation;
use crate::{Result, WorkloadError};
use serde::{Deserialize, Serialize};

/// One database instance of the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Instance name, e.g. `cdbm011`.
    pub name: String,
}

/// Converts per-instance session counts into resource metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceModel {
    /// CPU percentage points consumed per active session (pre-saturation).
    pub cpu_per_session: f64,
    /// Baseline CPU of an idle instance (background processes), percent.
    pub cpu_baseline: f64,
    /// Memory per connected session, MB.
    pub memory_per_session_mb: f64,
    /// Baseline memory (SGA), MB.
    pub memory_baseline_mb: f64,
    /// Logical IOPS per active session.
    pub iops_per_session: f64,
    /// Baseline IOPS (background housekeeping).
    pub iops_baseline: f64,
    /// Multiplicative observation noise (coefficient of variation).
    pub noise_cv: f64,
    /// Growth of per-session IO cost per elapsed day, fraction (the OLAP
    /// dataset "grew by several GB per hour", lengthening scans).
    pub io_cost_growth_per_day: f64,
}

impl ResourceModel {
    /// Noise-free expected value of `metric` given `sessions` active
    /// sessions on one instance at day offset `days`.
    pub fn expected(&self, metric: Metric, sessions: f64, days: f64) -> f64 {
        match metric {
            Metric::CpuPercent => {
                // Soft saturation toward 100 %: utilisation follows an
                // exponential approach, the standard M/M/1-flavoured shape.
                let demand = self.cpu_baseline + self.cpu_per_session * sessions;
                100.0 * (1.0 - (-demand / 100.0).exp()).min(1.0)
            }
            Metric::MemoryMb => self.memory_baseline_mb + self.memory_per_session_mb * sessions,
            Metric::LogicalIops => {
                let growth = 1.0 + self.io_cost_growth_per_day * days;
                self.iops_baseline + self.iops_per_session * sessions * growth
            }
        }
    }
}

/// The clustered database: instances, an even-split load balancer, a
/// resource model and the shocks scheduled against it.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// The member instances.
    pub instances: Vec<Instance>,
    /// The shared resource model.
    pub resource_model: ResourceModel,
    /// Scheduled shocks (backups etc.).
    pub shocks: Vec<Shock>,
}

impl Cluster {
    /// Build a cluster with the given instance names.
    pub fn new(names: &[&str], resource_model: ResourceModel) -> Cluster {
        Cluster {
            instances: names
                .iter()
                .map(|n| Instance {
                    name: n.to_string(),
                })
                .collect(),
            resource_model,
            shocks: vec![],
        }
    }

    /// The paper's two-node cluster.
    pub fn two_node(resource_model: ResourceModel) -> Cluster {
        Cluster::new(&["cdbm011", "cdbm012"], resource_model)
    }

    /// Attach a shock.
    pub fn with_shock(mut self, shock: Shock) -> Cluster {
        self.shocks.push(shock);
        self
    }

    /// Index of an instance by name.
    pub fn instance_index(&self, name: &str) -> Result<usize> {
        self.instances
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| WorkloadError::NotFound {
                context: format!("instance {name}"),
            })
    }

    /// Whether `instance` is down at time `t` (an active failover shock).
    pub fn is_down(&self, instance: &str, t: u64) -> bool {
        self.shocks.iter().any(|s| {
            s.kind == crate::shock::ShockKind::Failover
                && s.instance == instance
                && s.schedule.active_at(t)
        })
    }

    /// Sessions routed to each instance at time `t`: even balancing across
    /// the *surviving* instances — during a failover the peers absorb the
    /// failed node's share (§4.2's "periodically fails over" behaviour).
    pub fn balanced_sessions(&self, population: &UserPopulation, t: u64) -> Vec<f64> {
        let total = population.active_sessions(t);
        let up: Vec<bool> = self
            .instances
            .iter()
            .map(|i| !self.is_down(&i.name, t))
            .collect();
        let n_up = up.iter().filter(|&&u| u).count();
        if n_up == 0 {
            // Whole-cluster outage: nobody serves anything.
            return vec![0.0; self.instances.len()];
        }
        let share = total / n_up as f64;
        up.iter().map(|&u| if u { share } else { 0.0 }).collect()
    }

    /// The true (noise-free) value of `metric` on `instance` at time `t`.
    pub fn true_value(
        &self,
        instance: &str,
        metric: Metric,
        population: &UserPopulation,
        t: u64,
    ) -> Result<f64> {
        let idx = self.instance_index(instance)?;
        // lint: allow(indexing) — instance_index < instances.len(), and balanced_sessions returns one entry per instance
        let sessions = self.balanced_sessions(population, t)[idx];
        let days = t as f64 / 86_400.0;
        let mut v = self.resource_model.expected(metric, sessions, days);
        for shock in &self.shocks {
            v += shock.load_at(instance, metric, t);
        }
        if metric == Metric::CpuPercent {
            v = v.min(100.0);
        }
        Ok(v)
    }

    /// A noisy observation of `metric` on `instance` at time `t`.
    pub fn observe(
        &self,
        instance: &str,
        metric: Metric,
        population: &UserPopulation,
        t: u64,
        noise: &mut Noise,
    ) -> Result<f64> {
        let v = self.true_value(instance, metric, population, t)?;
        let sd = v.abs() * self.resource_model.noise_cv;
        let observed = noise.normal(v, sd);
        Ok(match metric {
            Metric::CpuPercent => observed.clamp(0.0, 100.0),
            _ => observed.max(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shock::BackupSchedule;

    fn model() -> ResourceModel {
        ResourceModel {
            cpu_per_session: 1.0,
            cpu_baseline: 2.0,
            memory_per_session_mb: 8.0,
            memory_baseline_mb: 500.0,
            iops_per_session: 1000.0,
            iops_baseline: 200.0,
            noise_cv: 0.02,
            io_cost_growth_per_day: 0.0,
        }
    }

    #[test]
    fn cpu_saturates_below_100() {
        let m = model();
        let low = m.expected(Metric::CpuPercent, 10.0, 0.0);
        let high = m.expected(Metric::CpuPercent, 1000.0, 0.0);
        assert!(low < high);
        assert!(high <= 100.0);
        assert!(m.expected(Metric::CpuPercent, 1e9, 0.0) <= 100.0);
    }

    #[test]
    fn memory_is_linear_in_sessions() {
        let m = model();
        let a = m.expected(Metric::MemoryMb, 10.0, 0.0);
        let b = m.expected(Metric::MemoryMb, 20.0, 0.0);
        assert!((b - a - 80.0).abs() < 1e-9);
    }

    #[test]
    fn io_growth_raises_iops_over_days() {
        let m = ResourceModel {
            io_cost_growth_per_day: 0.05,
            ..model()
        };
        let day0 = m.expected(Metric::LogicalIops, 40.0, 0.0);
        let day30 = m.expected(Metric::LogicalIops, 40.0, 30.0);
        assert!(day30 > day0 * 1.5);
    }

    #[test]
    fn load_balancer_splits_evenly() {
        let cluster = Cluster::two_node(model());
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        let split = cluster.balanced_sessions(&pop, 12 * 3600);
        assert_eq!(split.len(), 2);
        assert!((split[0] - 20.0).abs() < 1e-9);
        assert_eq!(split[0], split[1]);
    }

    #[test]
    fn conservation_instances_sum_to_cluster_load() {
        let cluster = Cluster::two_node(model());
        let pop = UserPopulation::steady(100.0, 12, 0.4);
        for h in 0..24 {
            let t = h * 3600;
            let split = cluster.balanced_sessions(&pop, t);
            let sum: f64 = split.iter().sum();
            assert!((sum - pop.active_sessions(t)).abs() < 1e-9);
        }
    }

    #[test]
    fn shock_raises_only_its_node() {
        let cluster = Cluster::two_node(model()).with_shock(Shock {
            iops_add: 50_000.0,
            ..Shock::backup("cdbm011", BackupSchedule::nightly_midnight(30))
        });
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        let node1 = cluster
            .true_value("cdbm011", Metric::LogicalIops, &pop, 0)
            .unwrap();
        let node2 = cluster
            .true_value("cdbm012", Metric::LogicalIops, &pop, 0)
            .unwrap();
        assert!(node1 - node2 > 40_000.0);
        // Outside the backup window the nodes match.
        let n1 = cluster
            .true_value("cdbm011", Metric::LogicalIops, &pop, 12 * 3600)
            .unwrap();
        let n2 = cluster
            .true_value("cdbm012", Metric::LogicalIops, &pop, 12 * 3600)
            .unwrap();
        assert!((n1 - n2).abs() < 1e-9);
    }

    #[test]
    fn failover_reroutes_load_to_the_survivor() {
        use crate::shock::{Shock, ShockKind};
        let cluster = Cluster::two_node(model()).with_shock(Shock::failover(
            "cdbm011",
            BackupSchedule {
                interval_hours: 24,
                offset_hours: 3,
                duration_minutes: 60,
            },
        ));
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        // During the failover window node 1 serves nothing, node 2 all.
        let t_down = 3 * 3600 + 600;
        assert!(cluster.is_down("cdbm011", t_down));
        let split = cluster.balanced_sessions(&pop, t_down);
        assert_eq!(split[0], 0.0);
        assert!((split[1] - 40.0).abs() < 1e-9);
        // Conservation still holds.
        assert!((split.iter().sum::<f64>() - 40.0).abs() < 1e-9);
        // Metrics: node 1 at baseline, node 2 elevated vs normal operation.
        let n1 = cluster
            .true_value("cdbm011", Metric::LogicalIops, &pop, t_down)
            .unwrap();
        let n2 = cluster
            .true_value("cdbm012", Metric::LogicalIops, &pop, t_down)
            .unwrap();
        assert!((n1 - 200.0).abs() < 1e-9); // iops_baseline only
        assert!(n2 > 39_000.0);
        // Outside the window: even split again.
        let split_ok = cluster.balanced_sessions(&pop, 12 * 3600);
        assert_eq!(split_ok[0], split_ok[1]);
        // Failover adds no load of its own.
        let s = Shock::failover("cdbm011", BackupSchedule::nightly_midnight(60));
        assert_eq!(s.kind, ShockKind::Failover);
        assert_eq!(s.load_at("cdbm011", Metric::CpuPercent, 0), 0.0);
    }

    #[test]
    fn whole_cluster_outage_serves_nothing() {
        use crate::shock::Shock;
        let schedule = BackupSchedule::nightly_midnight(60);
        let cluster = Cluster::two_node(model())
            .with_shock(Shock::failover("cdbm011", schedule))
            .with_shock(Shock::failover("cdbm012", schedule));
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        let split = cluster.balanced_sessions(&pop, 100);
        assert_eq!(split, vec![0.0, 0.0]);
    }

    #[test]
    fn unknown_instance_is_an_error() {
        let cluster = Cluster::two_node(model());
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        assert!(cluster
            .true_value("nope", Metric::CpuPercent, &pop, 0)
            .is_err());
    }

    #[test]
    fn observation_noise_is_proportional_and_clamped() {
        let cluster = Cluster::two_node(model());
        let pop = UserPopulation::steady(40.0, 12, 0.0);
        let mut noise = Noise::seeded(5);
        let mut values = Vec::new();
        for _ in 0..200 {
            values.push(
                cluster
                    .observe("cdbm011", Metric::CpuPercent, &pop, 12 * 3600, &mut noise)
                    .unwrap(),
            );
        }
        let truth = cluster
            .true_value("cdbm011", Metric::CpuPercent, &pop, 12 * 3600)
            .unwrap();
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - truth).abs() / truth < 0.02);
        assert!(values.iter().all(|&v| (0.0..=100.0).contains(&v)));
    }
}
