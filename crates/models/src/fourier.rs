//! Fourier-term external regressors (§4.4, equation 15).
//!
//! "Such seasonal patterns are modeled through the introduction of Fourier
//! terms, which are used as external regressors. … for each of the periods
//! `Pᵢ`, the number of Fourier terms `kᵢ` are chosen to find the best
//! SARIMAX parameters."
//!
//! A [`FourierSpec`] maps an absolute time index `t` to the column vector
//! `[sin(2πkt/Pᵢ), cos(2πkt/Pᵢ)]` for every period `i` and harmonic
//! `k ≤ kᵢ`. Using absolute indices keeps the phases of the training design
//! matrix and the forecast extension consistent.

use serde::{Deserialize, Serialize};

/// One seasonal period with a harmonic count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FourierTerm {
    /// Period length in observations (e.g. 24 for daily cycles in hourly
    /// data, 168 for weekly).
    pub period: f64,
    /// Number of sine/cosine harmonic pairs.
    pub harmonics: usize,
}

/// A full Fourier regressor specification: one or more periods.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FourierSpec {
    /// The periods and their harmonic counts.
    pub terms: Vec<FourierTerm>,
}

impl FourierSpec {
    /// An empty spec (no Fourier columns).
    pub fn none() -> FourierSpec {
        FourierSpec { terms: vec![] }
    }

    /// Single-period spec.
    pub fn single(period: f64, harmonics: usize) -> FourierSpec {
        FourierSpec {
            terms: vec![FourierTerm { period, harmonics }],
        }
    }

    /// Spec covering several periods with the same harmonic count — the
    /// paper's "P1 running over a 24 hours period and P2 running over a
    /// weekly period".
    pub fn multi(periods: &[f64], harmonics: usize) -> FourierSpec {
        FourierSpec {
            terms: periods
                .iter()
                .map(|&period| FourierTerm { period, harmonics })
                .collect(),
        }
    }

    /// Number of regressor columns generated (2 per harmonic per period).
    pub fn n_columns(&self) -> usize {
        self.terms.iter().map(|t| 2 * t.harmonics).sum()
    }

    /// Whether the spec generates no columns.
    pub fn is_empty(&self) -> bool {
        self.n_columns() == 0
    }

    /// The regressor row for absolute time index `t`.
    pub fn row(&self, t: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n_columns());
        let tf = t as f64;
        for term in &self.terms {
            for k in 1..=term.harmonics {
                let angle = 2.0 * std::f64::consts::PI * k as f64 * tf / term.period;
                out.push(angle.sin());
                out.push(angle.cos());
            }
        }
        out
    }

    /// Regressor rows for indices `start .. start + len` as column vectors
    /// (one `Vec` per column, ready for a design matrix). Writes each
    /// basis value straight into its column — no per-row temporary — and
    /// evaluates the angles exactly as [`row`](FourierSpec::row) does, so
    /// the design matrix is bit-identical to stacking `row(t)` calls.
    pub fn columns(&self, start: usize, len: usize) -> Vec<Vec<f64>> {
        let ncols = self.n_columns();
        let mut cols = vec![Vec::with_capacity(len); ncols];
        for t in start..start + len {
            let tf = t as f64;
            let mut c = 0;
            for term in &self.terms {
                for k in 1..=term.harmonics {
                    let angle = 2.0 * std::f64::consts::PI * k as f64 * tf / term.period;
                    // Directive on the sin line also covers the cos line below it.
                    cols[c].push(angle.sin()); // lint: allow(indexing) — c+1 < ncols: two columns per harmonic is exactly the n_columns() arithmetic
                    cols[c + 1].push(angle.cos());
                    c += 2;
                }
            }
        }
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_count_is_two_per_harmonic() {
        let spec = FourierSpec::multi(&[24.0, 168.0], 2);
        assert_eq!(spec.n_columns(), 8);
        assert_eq!(spec.row(0).len(), 8);
    }

    #[test]
    fn row_at_zero_is_sin0_cos0_pattern() {
        let spec = FourierSpec::single(24.0, 2);
        let r = spec.row(0);
        assert_eq!(r, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn first_harmonic_has_the_declared_period() {
        let spec = FourierSpec::single(24.0, 1);
        let a = spec.row(3);
        let b = spec.row(3 + 24);
        assert!((a[0] - b[0]).abs() < 1e-9);
        assert!((a[1] - b[1]).abs() < 1e-9);
    }

    #[test]
    fn quarter_period_hits_sin_peak() {
        let spec = FourierSpec::single(24.0, 1);
        let r = spec.row(6); // quarter of 24
        assert!((r[0] - 1.0).abs() < 1e-9);
        assert!(r[1].abs() < 1e-9);
    }

    #[test]
    fn columns_match_rows() {
        let spec = FourierSpec::multi(&[24.0, 168.0], 3);
        let cols = spec.columns(10, 5);
        assert_eq!(cols.len(), spec.n_columns());
        for (t_off, t) in (10..15).enumerate() {
            let row = spec.row(t);
            for (c, col) in cols.iter().enumerate() {
                assert_eq!(col[t_off], row[c]);
            }
        }
    }

    #[test]
    fn empty_spec_produces_nothing() {
        let spec = FourierSpec::none();
        assert!(spec.is_empty());
        assert!(spec.row(5).is_empty());
        assert!(spec.columns(0, 10).is_empty());
    }

    #[test]
    fn non_integer_period_is_supported() {
        // TBATS-style non-integer seasonality, e.g. 365.25/7 weeks.
        let spec = FourierSpec::single(52.18, 1);
        let r0 = spec.row(0);
        let r1 = spec.row(52); // close to but not exactly one period
        assert!((r0[1] - 1.0).abs() < 1e-12);
        assert!((r1[1] - 1.0).abs() > 1e-6);
    }
}
