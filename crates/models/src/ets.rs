//! Exponential smoothing models (§4.3): simple exponential smoothing,
//! Holt's linear trend (optionally damped) and the Holt-Winters seasonal
//! method — the model the paper's pipeline calls **HES** ("Holt-Winters
//! Exponential Smoothing").
//!
//! "In exponential smoothing, recent observations are given more weight
//! than older observations … The weights decay exponentially as the
//! observations get older."
//!
//! Smoothing parameters are found by minimising the one-step-ahead SSE with
//! Nelder-Mead over logistic-transformed variables, the same device every
//! ETS implementation uses.

// lint: allow-file(indexing) — smoothing-state numerics; every index is
// bounded by construction: seasonal phases are `t % m` / `(n + h) % m`
// into length-`m` buffers, optimiser-vector reads follow the layout
// `n_params()` sized them to, and the length validation at the fit
// boundary (`needed` check) guarantees the initial-state windows exist.

use crate::{Forecast, ModelError, Result};
use dwcp_math::kernels::holt_winters;
use dwcp_math::optimize::{NelderMeadDriver, NelderMeadOptions};
use serde::{Deserialize, Serialize};

/// Trend component choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrendKind {
    /// No trend (simple exponential smoothing when seasonality is off).
    None,
    /// Holt's additive linear trend.
    Additive,
    /// Additive trend with damping coefficient φ.
    Damped,
}

/// Seasonal component choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeasonalKind {
    /// No seasonality.
    None,
    /// Additive seasonality with the given period.
    Additive(usize),
    /// Multiplicative seasonality with the given period (positive data).
    Multiplicative(usize),
}

impl SeasonalKind {
    /// The seasonal period, or 0 when seasonality is off.
    pub fn period(self) -> usize {
        match self {
            SeasonalKind::None => 0,
            SeasonalKind::Additive(m) | SeasonalKind::Multiplicative(m) => m,
        }
    }
}

/// An ETS model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EtsConfig {
    /// Trend component.
    pub trend: TrendKind,
    /// Seasonal component.
    pub seasonal: SeasonalKind,
    /// Two-sided confidence level for forecast intervals.
    pub interval_level: f64,
}

impl EtsConfig {
    /// Simple exponential smoothing.
    pub fn ses() -> EtsConfig {
        EtsConfig {
            trend: TrendKind::None,
            seasonal: SeasonalKind::None,
            interval_level: 0.95,
        }
    }

    /// Holt's linear trend.
    pub fn holt() -> EtsConfig {
        EtsConfig {
            trend: TrendKind::Additive,
            seasonal: SeasonalKind::None,
            interval_level: 0.95,
        }
    }

    /// Holt-Winters additive seasonal — the paper's HES default.
    pub fn holt_winters(period: usize) -> EtsConfig {
        EtsConfig {
            trend: TrendKind::Additive,
            seasonal: SeasonalKind::Additive(period),
            interval_level: 0.95,
        }
    }

    /// Holt-Winters multiplicative seasonal.
    pub fn holt_winters_multiplicative(period: usize) -> EtsConfig {
        EtsConfig {
            trend: TrendKind::Additive,
            seasonal: SeasonalKind::Multiplicative(period),
            interval_level: 0.95,
        }
    }

    /// Number of smoothing parameters being optimised.
    pub fn n_params(&self) -> usize {
        let mut k = 1; // alpha
        if self.trend != TrendKind::None {
            k += 1; // beta
        }
        if self.trend == TrendKind::Damped {
            k += 1; // phi
        }
        if self.seasonal.period() > 0 {
            k += 1; // gamma
        }
        k
    }

    /// Short display name.
    pub fn name(&self) -> String {
        let base = match (self.trend, self.seasonal) {
            (TrendKind::None, SeasonalKind::None) => "SES".to_string(),
            (TrendKind::Additive, SeasonalKind::None) => "Holt".to_string(),
            (TrendKind::Damped, SeasonalKind::None) => "Holt (damped)".to_string(),
            (_, SeasonalKind::Additive(m)) => format!("Holt-Winters additive (m={m})"),
            (_, SeasonalKind::Multiplicative(m)) => {
                format!("Holt-Winters multiplicative (m={m})")
            }
        };
        base
    }
}

/// Convenience enum mirroring the paper's user-facing model menu.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsModel {
    /// Simple exponential smoothing.
    Ses,
    /// Holt's linear trend.
    Holt,
    /// Damped Holt.
    HoltDamped,
    /// Holt-Winters additive (HES).
    HoltWintersAdditive,
    /// Holt-Winters multiplicative.
    HoltWintersMultiplicative,
}

impl EtsModel {
    /// Materialise a config; `period` is used by the seasonal variants.
    pub fn config(self, period: usize) -> EtsConfig {
        match self {
            EtsModel::Ses => EtsConfig::ses(),
            EtsModel::Holt => EtsConfig::holt(),
            EtsModel::HoltDamped => EtsConfig {
                trend: TrendKind::Damped,
                ..EtsConfig::holt()
            },
            EtsModel::HoltWintersAdditive => EtsConfig::holt_winters(period),
            EtsModel::HoltWintersMultiplicative => EtsConfig::holt_winters_multiplicative(period),
        }
    }
}

/// Options controlling the ETS optimiser: warm-start seeding and the
/// frozen re-score used by champion-seeded relearning.
#[derive(Debug, Clone, Default)]
pub struct EtsFitOptions {
    /// Unconstrained Nelder-Mead parameters from a previous fit (same
    /// layout as [`FittedEts::params_unconstrained`]) used to seed the
    /// simplex instead of the generic midpoint start.
    pub warm_start: Option<Vec<f64>>,
    /// Evaluate the recursion at `warm_start` verbatim without optimising —
    /// reproduces a stored champion's fit bit-exactly in one evaluation.
    pub freeze_warm_start: bool,
}

/// Map a previous fit's unconstrained parameters onto another ETS config's
/// layout: shared components (α always; β when both have trend; φ when both
/// damp; γ when both are seasonal) carry over, new components start at the
/// logistic midpoint (0.0).
pub fn adapt_ets_unconstrained(
    prev: &[f64],
    prev_config: &EtsConfig,
    next_config: &EtsConfig,
) -> Vec<f64> {
    let slot = |config: &EtsConfig, want: usize| -> Option<usize> {
        // Component ids: 0 = alpha, 1 = beta, 2 = phi, 3 = gamma.
        let mut i = 0;
        let mut pos = [None; 4];
        pos[0] = Some(i);
        i += 1;
        if config.trend != TrendKind::None {
            pos[1] = Some(i);
            i += 1;
        }
        if config.trend == TrendKind::Damped {
            pos[2] = Some(i);
            i += 1;
        }
        if config.seasonal.period() > 0 {
            pos[3] = Some(i);
        }
        pos[want]
    };
    let mut out = vec![0.0; next_config.n_params()];
    for component in 0..4 {
        if let (Some(dst), Some(src)) = (slot(next_config, component), slot(prev_config, component))
        {
            if src < prev.len() {
                out[dst] = prev[src];
            }
        }
    }
    out
}

/// A fitted exponential-smoothing model.
#[derive(Debug, Clone)]
pub struct FittedEts {
    /// Configuration fitted.
    pub config: EtsConfig,
    /// Level smoothing parameter α ∈ (0, 1).
    pub alpha: f64,
    /// Trend smoothing parameter β (0 when trend is off).
    pub beta: f64,
    /// Seasonal smoothing parameter γ (0 when seasonality is off).
    pub gamma: f64,
    /// Trend damping coefficient φ (1 when undamped).
    pub phi: f64,
    /// Final level state.
    pub level: f64,
    /// Final trend state.
    pub trend: f64,
    /// Final seasonal states (most recent period; index `i` is the factor
    /// for phase `(n + i) mod m` going forward).
    pub seasonal: Vec<f64>,
    /// One-step in-sample SSE at the optimum.
    pub sse: f64,
    /// Residual variance estimate.
    pub sigma2: f64,
    /// Training length.
    pub n_obs: usize,
    /// AIC (SSE approximation).
    pub aic: f64,
    /// Converged unconstrained optimiser parameters (warm-start seed for a
    /// subsequent fit; layout `[α, β?, φ?, γ?]` before the logistic map).
    pub params_unconstrained: Vec<f64>,
    /// Objective evaluations spent by the optimiser (1 for a frozen fit).
    pub nm_evals: usize,
}

/// Internal: run the smoothing recursion, returning (sse, final states,
/// one-step errors).
struct Recursion {
    sse: f64,
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
}

fn run_recursion(
    y: &[f64],
    config: &EtsConfig,
    alpha: f64,
    beta: f64,
    gamma: f64,
    phi: f64,
) -> Option<Recursion> {
    // State initialisation (classical heuristics).
    let (level, trend, mut seasonal) = initial_states(y, config)?;
    let state = run_states(
        y,
        config,
        alpha,
        beta,
        gamma,
        phi,
        level,
        trend,
        &mut seasonal,
    );
    let sse = state.sse?;
    Some(Recursion {
        sse,
        level: state.level,
        trend: state.trend,
        seasonal,
    })
}

/// Run the smoothing recursion from explicit initial states. The
/// per-observation update loops are monomorphic kernels in
/// `dwcp_math::kernels::holt_winters` — one fused loop per seasonal
/// variant instead of a per-step `match`, transcribed
/// statement-for-statement so fits stay bit-identical. Factoring the
/// states out lets [`EtsFitSession`] hoist the (parameter-independent)
/// initialisation out of the optimiser loop.
#[allow(clippy::too_many_arguments)]
fn run_states(
    y: &[f64],
    config: &EtsConfig,
    alpha: f64,
    beta: f64,
    gamma: f64,
    phi: f64,
    level: f64,
    trend: f64,
    seasonal: &mut [f64],
) -> holt_winters::HwState {
    let has_trend = config.trend != TrendKind::None;
    match config.seasonal {
        SeasonalKind::None => holt_winters::run_none(y, alpha, beta, phi, level, trend, has_trend),
        SeasonalKind::Additive(_) => holt_winters::run_additive(
            y, alpha, beta, gamma, phi, level, trend, has_trend, seasonal,
        ),
        SeasonalKind::Multiplicative(_) => holt_winters::run_multiplicative(
            y, alpha, beta, gamma, phi, level, trend, has_trend, seasonal,
        ),
    }
}

/// Unpack an unconstrained optimiser point into `(α, β, γ, φ)` under
/// `config`'s layout — α, β, γ bounded in (0.0001, 0.9999) and φ in
/// (0.8, 0.98) through the logistic map.
fn unpack_params(u: &[f64], config: &EtsConfig) -> (f64, f64, f64, f64) {
    let logistic = |u: f64| 1.0 / (1.0 + (-u).exp());
    let mut i = 0;
    let alpha = 0.0001 + 0.9998 * logistic(u[i]);
    i += 1;
    let beta = if config.trend != TrendKind::None {
        let b = 0.0001 + 0.9998 * logistic(u[i]);
        i += 1;
        b
    } else {
        0.0
    };
    let phi = if config.trend == TrendKind::Damped {
        let p = 0.8 + 0.18 * logistic(u[i]);
        i += 1;
        p
    } else {
        1.0
    };
    let gamma = if config.seasonal.period() > 0 {
        0.0001 + 0.9998 * logistic(u[i])
    } else {
        0.0
    };
    (alpha, beta, gamma, phi)
}

/// Classical state initialisation: first-period mean level, cross-period
/// slope, detrended seasonal indices.
fn initial_states(y: &[f64], config: &EtsConfig) -> Option<(f64, f64, Vec<f64>)> {
    let m = config.seasonal.period();
    if m > 0 {
        if y.len() < 2 * m {
            return None;
        }
        let first: f64 = y[..m].iter().sum::<f64>() / m as f64;
        let second: f64 = y[m..2 * m].iter().sum::<f64>() / m as f64;
        let trend = if config.trend == TrendKind::None {
            0.0
        } else {
            (second - first) / m as f64
        };
        let seasonal: Vec<f64> = match config.seasonal {
            SeasonalKind::Additive(_) => (0..m).map(|i| y[i] - first).collect(),
            SeasonalKind::Multiplicative(_) => {
                if first.abs() < 1e-12 {
                    return None;
                }
                (0..m).map(|i| y[i] / first).collect()
            }
            // `m > 0` excludes `SeasonalKind::None`; an empty buffer is the
            // harmless (and panic-free) value for the impossible arm.
            SeasonalKind::None => vec![],
        };
        Some((first, trend, seasonal))
    } else {
        if y.len() < 2 {
            return None;
        }
        let trend = if config.trend == TrendKind::None {
            0.0
        } else {
            y[1] - y[0]
        };
        Some((y[0], trend, vec![]))
    }
}

impl FittedEts {
    /// Fit by minimising the one-step SSE over the smoothing parameters.
    pub fn fit(y: &[f64], config: EtsConfig) -> Result<FittedEts> {
        Self::fit_with(y, config, &EtsFitOptions::default())
    }

    /// Fit with warm-start / freeze control (the evaluation-engine entry).
    pub fn fit_with(y: &[f64], config: EtsConfig, options: &EtsFitOptions) -> Result<FittedEts> {
        EtsFitSession::new(y, config, options)?.finish()
    }

    /// Forecast `horizon` steps with approximate normal intervals
    /// (Hyndman's class-1 variance formulas; the multiplicative-seasonal
    /// case reuses the additive formula as an approximation).
    pub fn forecast(&self, horizon: usize) -> Forecast {
        let m = self.config.seasonal.period();
        let mut mean = Vec::with_capacity(horizon);
        let mut damp_sum = 0.0;
        for h in 1..=horizon {
            damp_sum += self.phi.powi(h as i32);
            let base = self.level
                + if self.config.trend == TrendKind::None {
                    0.0
                } else {
                    damp_sum * self.trend
                };
            let v = match self.config.seasonal {
                SeasonalKind::None => base,
                SeasonalKind::Additive(_) => base + self.seasonal[(h - 1) % m],
                SeasonalKind::Multiplicative(_) => base * self.seasonal[(h - 1) % m],
            };
            mean.push(v);
        }
        // Variance accumulation: c_j = α + β·(φ + … + φʲ) + γ·1{j ≡ 0 (mod m)}.
        let mut std_error = Vec::with_capacity(horizon);
        let mut var_acc = 1.0;
        for h in 1..=horizon {
            std_error.push((self.sigma2 * var_acc).sqrt());
            // Prepare accumulation for the next step.
            let j = h;
            let mut damp = 0.0;
            for i in 1..=j {
                damp += self.phi.powi(i as i32);
            }
            let mut c = self.alpha;
            if self.config.trend != TrendKind::None {
                c += self.beta * damp;
            }
            if m > 0 && j % m == 0 {
                c += self.gamma;
            }
            var_acc += c * c;
        }
        Forecast::with_normal_intervals(mean, std_error, self.config.interval_level)
    }
}

/// The recursion leaves `seasonal[i]` holding the factor for phase
/// `i mod m`; reorder so index 0 is the phase of the first forecast step.
fn reorder_seasonal(seasonal: Vec<f64>, n: usize, m: usize) -> Vec<f64> {
    if m == 0 {
        return seasonal;
    }
    (0..m).map(|h| seasonal[(n + h) % m]).collect()
}

/// A poll-driven ETS fit: the [`FittedEts::fit_with`] optimisation split
/// into explicit steps so a batched caller can interleave the objective
/// evaluations of several candidates through one
/// [`dwcp_math::kernels::ets_batch`] kernel pass per optimiser round.
///
/// Driving a session to completion with [`finish`](EtsFitSession::finish)
/// alone reproduces the sequential [`FittedEts::fit_with`] bit-for-bit:
/// the Nelder-Mead driver emits the same point sequence as the closure
/// API, and the per-lane batch kernels are statement-for-statement
/// transcriptions of the solo recursions. The session also hoists the
/// parameter-independent `initial_states` heuristic out of the
/// optimiser loop — the sequential path recomputed it for each of the
/// several hundred objective evaluations.
pub struct EtsFitSession {
    config: EtsConfig,
    y: Vec<f64>,
    /// Hoisted `initial_states` result; `None` means every objective
    /// evaluation is `INFINITY` (the driver is pre-drained in `new`).
    init: Option<(f64, f64, Vec<f64>)>,
    /// Per-session pooled seasonal window the recursion mutates; refilled
    /// from `init` before every evaluation.
    seasonal_scratch: Vec<f64>,
    /// `(α, β, γ, φ)` unpacked by [`stage_pending`](EtsFitSession::stage_pending).
    staged: (f64, f64, f64, f64),
    driver: Option<NelderMeadDriver>,
    /// Decided without optimisation (frozen warm start): `(params, evals)`.
    outcome: Option<(Vec<f64>, usize)>,
}

impl EtsFitSession {
    /// Validate the series and open a session. Mirrors the
    /// [`FittedEts::fit_with`] preamble exactly, including the frozen
    /// warm-start short-circuit and the fall-through to a full
    /// optimisation when a freeze is requested without a usable seed.
    pub fn new(y: &[f64], config: EtsConfig, options: &EtsFitOptions) -> Result<EtsFitSession> {
        let m = config.seasonal.period();
        let needed = if m > 0 { 2 * m + 4 } else { 6 };
        if y.len() < needed {
            return Err(ModelError::TooShort {
                needed,
                got: y.len(),
            });
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(ModelError::Series(dwcp_series::SeriesError::NonFinite));
        }
        if matches!(config.seasonal, SeasonalKind::Multiplicative(_)) && y.iter().any(|&v| v <= 0.0)
        {
            return Err(ModelError::InvalidSpec {
                context: "multiplicative seasonality requires positive data".to_string(),
            });
        }

        let k = config.n_params();
        let warm = options
            .warm_start
            .as_ref()
            .filter(|w| w.len() == k)
            .cloned();
        let (driver, outcome) = match warm {
            // Champion-seeded frozen re-score: one recursion, verbatim.
            Some(w) if options.freeze_warm_start => (None, Some((w, 1))),
            warm => {
                let start = warm.unwrap_or_else(|| vec![0.0; k]); // logistic(0) = 0.5
                let driver = NelderMeadDriver::new(
                    &start,
                    NelderMeadOptions {
                        max_evals: 400 + 150 * k,
                        restarts: 2,
                        initial_step: 1.0,
                        ..Default::default()
                    },
                );
                (Some(driver), None)
            }
        };
        let init = initial_states(y, &config);
        let mut session = EtsFitSession {
            config,
            y: y.to_vec(),
            seasonal_scratch: Vec::with_capacity(m),
            init,
            staged: (0.0, 0.0, 0.0, 1.0),
            driver,
            outcome,
        };
        if session.init.is_none() {
            // Without initial states every evaluation is INFINITY; drain
            // the driver up front (same evaluation count and sequence as
            // the closure objective returning INFINITY throughout) so the
            // batched caller never stages a lane with no states.
            if let Some(driver) = session.driver.as_mut() {
                while driver.pending_point().is_some() {
                    driver.tell(f64::INFINITY);
                }
            }
        }
        Ok(session)
    }

    /// Whether the optimiser still needs an objective evaluation.
    pub fn is_pending(&self) -> bool {
        self.driver.as_ref().is_some_and(|d| !d.is_done())
    }

    /// Evaluate the pending point against the solo recursion kernels and
    /// feed it back; returns `false` when nothing was pending. Driving a
    /// session with `while session.step_solo() {}` reproduces the
    /// sequential fit exactly.
    pub fn step_solo(&mut self) -> bool {
        let Some(driver) = self.driver.as_mut() else {
            return false;
        };
        let Some(u) = driver.pending_point() else {
            return false;
        };
        let fx = match &self.init {
            Some((level, trend, seasonal)) => {
                let (alpha, beta, gamma, phi) = unpack_params(u, &self.config);
                self.seasonal_scratch.clear();
                self.seasonal_scratch.extend_from_slice(seasonal);
                let state = run_states(
                    &self.y,
                    &self.config,
                    alpha,
                    beta,
                    gamma,
                    phi,
                    *level,
                    *trend,
                    &mut self.seasonal_scratch,
                );
                state.sse.unwrap_or(f64::INFINITY)
            }
            None => f64::INFINITY,
        };
        driver.tell(fx);
        true
    }

    /// Unpack the pending point into smoothing parameters for a batched
    /// kernel pass; the caller scores the staged lane (typically several
    /// sessions' lanes in one [`dwcp_math::kernels::ets_batch`] call) and
    /// answers with [`tell_sse`](EtsFitSession::tell_sse). Returns `false`
    /// when no evaluation is pending.
    pub fn stage_pending(&mut self) -> bool {
        let Some(driver) = self.driver.as_ref() else {
            return false;
        };
        let Some(u) = driver.pending_point() else {
            return false;
        };
        self.staged = unpack_params(u, &self.config);
        true
    }

    /// Build the kernel lane for the staged point over this session's
    /// pooled state window. Always `Some` after a successful
    /// [`stage_pending`](EtsFitSession::stage_pending) — sessions without
    /// initial states are drained at construction and never stage.
    pub fn staged_lane(&mut self) -> Option<holt_winters::EtsLane<'_>> {
        let (level, trend, seasonal) = self.init.as_ref()?;
        self.seasonal_scratch.clear();
        self.seasonal_scratch.extend_from_slice(seasonal);
        let (alpha, beta, gamma, phi) = self.staged;
        Some(holt_winters::EtsLane {
            y: &self.y,
            class: match self.config.seasonal {
                SeasonalKind::None => holt_winters::SeasonalClass::None,
                SeasonalKind::Additive(_) => holt_winters::SeasonalClass::Additive,
                SeasonalKind::Multiplicative(_) => holt_winters::SeasonalClass::Multiplicative,
            },
            alpha,
            beta,
            gamma,
            phi,
            has_trend: self.config.trend != TrendKind::None,
            level: *level,
            trend: *trend,
            seasonal: &mut self.seasonal_scratch,
            sse: 0.0,
            alive: true,
        })
    }

    /// Feed back the SSE of the staged point and advance the optimiser.
    pub fn tell_sse(&mut self, sse: f64) {
        if let Some(driver) = self.driver.as_mut() {
            driver.tell(sse);
        }
    }

    /// Finalise the fit. Any evaluations still pending are driven against
    /// the solo kernels first, so `finish` is always well-defined.
    pub fn finish(mut self) -> Result<FittedEts> {
        while self.step_solo() {}
        let EtsFitSession {
            config,
            y,
            driver,
            outcome,
            ..
        } = self;
        let (params_unconstrained, nm_evals) = match outcome {
            Some(decided) => decided,
            None => {
                let nm = match driver {
                    Some(driver) => driver.into_result(),
                    None => {
                        return Err(ModelError::FitFailed {
                            context: format!(
                                "ETS fit session for {} lost its optimiser state",
                                config.name()
                            ),
                        })
                    }
                };
                (nm.x, nm.evals)
            }
        };
        let m = config.seasonal.period();
        let k = config.n_params();
        let (alpha, beta, gamma, phi) = unpack_params(&params_unconstrained, &config);
        let rec = run_recursion(&y, &config, alpha, beta, gamma, phi).ok_or_else(|| {
            ModelError::FitFailed {
                context: "ETS recursion diverged at the optimum".to_string(),
            }
        })?;
        let n = y.len() as f64;
        let sigma2 = rec.sse / (n - k as f64).max(1.0);
        let aic = n * (rec.sse / n).max(1e-300).ln() + 2.0 * (k as f64 + 1.0);
        Ok(FittedEts {
            config,
            alpha,
            beta,
            gamma,
            phi,
            level: rec.level,
            trend: rec.trend,
            seasonal: reorder_seasonal(rec.seasonal, y.len(), m),
            sse: rec.sse,
            sigma2,
            n_obs: y.len(),
            aic,
            params_unconstrained,
            nm_evals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect()
    }

    #[test]
    fn ses_forecast_is_flat() {
        let y: Vec<f64> = noise(100, 1).iter().map(|v| 50.0 + v).collect();
        let fit = FittedEts::fit(&y, EtsConfig::ses()).unwrap();
        let f = fit.forecast(5);
        for h in 1..5 {
            assert!((f.mean[h] - f.mean[0]).abs() < 1e-12);
        }
        assert!((f.mean[0] - 50.0).abs() < 2.0);
    }

    #[test]
    fn holt_tracks_linear_trend() {
        let y: Vec<f64> = (0..120)
            .map(|t| 10.0 + 1.5 * t as f64 + noise(120, 3)[t] * 0.2)
            .collect();
        let fit = FittedEts::fit(&y, EtsConfig::holt()).unwrap();
        let f = fit.forecast(10);
        for (h, &v) in f.mean.iter().enumerate() {
            let expected = 10.0 + 1.5 * (120 + h) as f64;
            assert!((v - expected).abs() < 3.0, "h = {h}: {v} vs {expected}");
        }
    }

    #[test]
    fn damped_holt_flattens_eventually() {
        let y: Vec<f64> = (0..100).map(|t| 2.0 * t as f64).collect();
        let fit = FittedEts::fit(&y, EtsModel::HoltDamped.config(0)).unwrap();
        let f = fit.forecast(200);
        let early_slope = f.mean[1] - f.mean[0];
        let late_slope = f.mean[199] - f.mean[198];
        assert!(late_slope < early_slope, "{late_slope} vs {early_slope}");
    }

    #[test]
    fn holt_winters_additive_reproduces_seasonal_pattern() {
        let pattern = [0.0, 5.0, 10.0, 5.0, 0.0, -5.0, -10.0, -5.0];
        let y: Vec<f64> = (0..160)
            .map(|t| 100.0 + pattern[t % 8] + noise(160, 5)[t] * 0.2)
            .collect();
        let fit = FittedEts::fit(&y, EtsConfig::holt_winters(8)).unwrap();
        let f = fit.forecast(8);
        for h in 0..8 {
            let expected = 100.0 + pattern[(160 + h) % 8];
            assert!(
                (f.mean[h] - expected).abs() < 2.0,
                "h = {h}: {} vs {expected}",
                f.mean[h]
            );
        }
    }

    #[test]
    fn holt_winters_with_trend_and_season() {
        let pattern = [10.0, -10.0, 5.0, -5.0];
        let y: Vec<f64> = (0..120)
            .map(|t| 50.0 + 0.5 * t as f64 + pattern[t % 4])
            .collect();
        let fit = FittedEts::fit(&y, EtsConfig::holt_winters(4)).unwrap();
        let f = fit.forecast(8);
        for h in 0..8 {
            let expected = 50.0 + 0.5 * (120 + h) as f64 + pattern[(120 + h) % 4];
            assert!(
                (f.mean[h] - expected).abs() < 2.5,
                "h = {h}: {} vs {expected}",
                f.mean[h]
            );
        }
    }

    #[test]
    fn multiplicative_seasonality_scales_with_level() {
        let factors = [1.2, 0.8, 1.1, 0.9];
        let y: Vec<f64> = (0..160)
            .map(|t| (100.0 + t as f64) * factors[t % 4])
            .collect();
        let fit = FittedEts::fit(&y, EtsConfig::holt_winters_multiplicative(4)).unwrap();
        let f = fit.forecast(4);
        for h in 0..4 {
            let expected = (100.0 + (160 + h) as f64) * factors[(160 + h) % 4];
            let rel = (f.mean[h] - expected).abs() / expected;
            assert!(rel < 0.05, "h = {h}: {} vs {expected}", f.mean[h]);
        }
    }

    #[test]
    fn multiplicative_rejects_nonpositive_data() {
        let y: Vec<f64> = (0..50).map(|t| t as f64 - 10.0).collect();
        assert!(FittedEts::fit(&y, EtsConfig::holt_winters_multiplicative(5)).is_err());
    }

    #[test]
    fn intervals_widen_with_horizon() {
        let y: Vec<f64> = noise(100, 7).iter().map(|v| 20.0 + v).collect();
        let fit = FittedEts::fit(&y, EtsConfig::ses()).unwrap();
        let f = fit.forecast(10);
        for h in 1..10 {
            assert!(f.std_error[h] >= f.std_error[h - 1]);
        }
    }

    #[test]
    fn smoothing_params_stay_in_bounds() {
        let y: Vec<f64> = (0..80)
            .map(|t| (t as f64 * 0.3).sin() * 5.0 + 50.0)
            .collect();
        let fit = FittedEts::fit(&y, EtsConfig::holt()).unwrap();
        assert!(fit.alpha > 0.0 && fit.alpha < 1.0);
        assert!(fit.beta >= 0.0 && fit.beta < 1.0);
        assert_eq!(fit.phi, 1.0);
    }

    #[test]
    fn too_short_series_rejected() {
        assert!(FittedEts::fit(&[1.0, 2.0, 3.0], EtsConfig::ses()).is_err());
        assert!(FittedEts::fit(&[1.0; 10], EtsConfig::holt_winters(8)).is_err());
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(EtsConfig::ses().name(), "SES");
        assert_eq!(EtsConfig::holt().name(), "Holt");
        assert!(EtsConfig::holt_winters(24).name().contains("m=24"));
    }

    #[test]
    fn batched_session_matches_fit_with_bitwise() {
        let pattern = [0.0, 5.0, 10.0, 5.0, 0.0, -5.0, -10.0, -5.0];
        let y: Vec<f64> = (0..160)
            .map(|t| 100.0 + pattern[t % 8] + noise(160, 5)[t] * 0.2)
            .collect();
        let configs = [
            EtsConfig::ses(),
            EtsConfig::holt(),
            EtsModel::HoltDamped.config(0),
            EtsConfig::holt_winters(8),
            EtsConfig::holt_winters_multiplicative(8),
        ];
        let opts = EtsFitOptions::default();
        // Open one session per candidate and pump them in lockstep rounds
        // through the batched kernel, the way the evaluation queue does.
        let mut sessions: Vec<EtsFitSession> = configs
            .iter()
            .map(|c| EtsFitSession::new(&y, *c, &opts).unwrap())
            .collect();
        loop {
            let staged: Vec<usize> = (0..sessions.len())
                .filter(|&i| sessions[i].stage_pending())
                .collect();
            if staged.is_empty() {
                break;
            }
            // Borrow every staged session's lane simultaneously (iter_mut
            // yields disjoint &mut elements) and score them in one batch.
            let mut lanes: Vec<holt_winters::EtsLane<'_>> = sessions
                .iter_mut()
                .enumerate()
                .filter(|(i, _)| staged.contains(i))
                .filter_map(|(_, s)| s.staged_lane())
                .collect();
            assert_eq!(lanes.len(), staged.len());
            dwcp_math::kernels::ets_batch(&mut lanes);
            let sses: Vec<f64> = lanes
                .iter()
                .map(|l| l.result().sse.unwrap_or(f64::INFINITY))
                .collect();
            drop(lanes);
            for (&i, sse) in staged.iter().zip(sses) {
                sessions[i].tell_sse(sse);
            }
        }
        for (config, session) in configs.iter().zip(sessions) {
            let batched = session.finish().unwrap();
            let solo = FittedEts::fit_with(&y, *config, &opts).unwrap();
            assert_eq!(
                batched.sse.to_bits(),
                solo.sse.to_bits(),
                "{}",
                config.name()
            );
            assert_eq!(batched.alpha.to_bits(), solo.alpha.to_bits());
            assert_eq!(batched.level.to_bits(), solo.level.to_bits());
            assert_eq!(batched.trend.to_bits(), solo.trend.to_bits());
            assert_eq!(batched.nm_evals, solo.nm_evals);
            assert_eq!(batched.seasonal.len(), solo.seasonal.len());
            for (a, b) in batched.seasonal.iter().zip(&solo.seasonal) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn param_counts() {
        assert_eq!(EtsConfig::ses().n_params(), 1);
        assert_eq!(EtsConfig::holt().n_params(), 2);
        assert_eq!(EtsModel::HoltDamped.config(0).n_params(), 3);
        assert_eq!(EtsConfig::holt_winters(24).n_params(), 3);
    }
}
